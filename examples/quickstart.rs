//! Quickstart: record a racy two-thread program, inspect the log, replay
//! it deterministically, and verify the replay bit-for-bit.
//!
//! Run with:
//! ```text
//! cargo run --release -p rr-experiments --example quickstart
//! ```

use rr_isa::{BranchCond, MemImage, Program, ProgramBuilder, Reg};
use rr_replay::CostModel;
use rr_sim::{replay_and_verify, MachineConfig, RecordSession, RecorderSpec};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Each thread increments a shared counter 200 times *without* a lock:
/// a classic data race whose outcome depends on the interleaving.
fn racy_incrementer() -> Program {
    let mut b = ProgramBuilder::new();
    let (i, limit, addr, tmp) = (r(1), r(2), r(3), r(4));
    b.load_imm(i, 0).load_imm(limit, 200).load_imm(addr, 0x1000);
    let top = b.bind_new();
    b.load(tmp, addr, 0);
    b.add_imm(tmp, tmp, 1);
    b.store(tmp, addr, 0);
    b.add_imm(i, i, 1);
    b.branch(BranchCond::Lt, i, limit, top);
    b.halt();
    b.build()
}

fn main() {
    let programs = vec![racy_incrementer(), racy_incrementer()];
    let initial = MemImage::new();

    // 1. Record: a 2-core release-consistent machine with the paper's
    //    RelaxReplay_Opt recorder (4K-instruction maximum intervals).
    let machine = MachineConfig::splash_default(2);
    let specs = vec![RecorderSpec {
        design: relaxreplay::Design::Opt,
        max_interval: Some(4096),
    }];
    let result = RecordSession::new(&programs, &initial)
        .config(&machine)
        .specs(&specs)
        .run()
        .expect("recording");

    let counter = result.recorded.final_mem.load(0x1000);
    println!("recorded execution:");
    println!("  cycles               : {}", result.cycles);
    println!("  instructions         : {}", result.total_instrs());
    println!("  final counter        : {counter} (400 would mean no lost updates — racy!)");
    println!(
        "  out-of-order accesses: {:.1}%",
        result.ooo_fraction() * 100.0
    );

    let v = &result.variants[0];
    println!("\nRelaxReplay_Opt log:");
    println!(
        "  intervals            : {}",
        v.logs.iter().map(|l| l.intervals()).sum::<usize>()
    );
    println!("  inorder blocks       : {}", v.inorder_blocks());
    println!(
        "  reordered accesses   : {} ({:.3}% of memory accesses)",
        v.reordered(),
        v.reordered_fraction() * 100.0
    );
    println!(
        "  log size             : {} bits ({:.1} bits / kilo-instruction)",
        v.log_bits(),
        v.bits_per_kilo_instr()
    );

    // A peek at the first few log entries of core 0.
    println!("\nfirst entries of P0's log:");
    for e in v.logs[0].entries.iter().take(6) {
        println!("    {e}");
    }

    // 2. Replay sequentially and verify every load value and the final
    //    memory image match the recording exactly.
    let outcome = replay_and_verify(
        &programs,
        &initial,
        &result,
        0,
        &CostModel::splash_default(),
    )
    .expect("deterministic replay");
    println!("\nreplay:");
    println!("  verified             : every load value + final memory identical");
    println!(
        "  estimated time       : {} cycles ({:.2}x the parallel recording)",
        outcome.total_cycles(),
        outcome.total_cycles() as f64 / result.cycles as f64
    );
    println!(
        "  user / OS cycles     : {} / {}",
        outcome.user_cycles, outcome.os_cycles
    );
}
