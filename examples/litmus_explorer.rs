//! Litmus explorer: runs the classic store-buffering (SB) and message-
//! passing (MP) litmus tests on the release-consistent machine, showing
//! which relaxed outcomes actually occur — and that RelaxReplay records
//! and replays whichever outcome happened (paper §2.2's motivation).
//!
//! Run with:
//! ```text
//! cargo run --release -p rr-experiments --example litmus_explorer
//! ```

use rr_isa::{FenceKind, MemImage, Program, ProgramBuilder, Reg};
use rr_replay::CostModel;
use rr_sim::{replay_and_verify, MachineConfig, RecordSession, RecorderSpec};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

const X: i64 = 0x100;
const Y: i64 = 0x200;
const OUT: i64 = 0x1000;

fn sb_thread(my: i64, other: i64, out_slot: i64, fenced: bool) -> Program {
    let mut b = ProgramBuilder::new();
    // Warm both lines so the race is a fast load hit vs. a buffered store
    // upgrade — the configuration where write buffers visibly reorder.
    b.load_imm(r(1), my);
    b.load_imm(r(3), other);
    b.load(r(6), r(1), 0);
    b.load(r(6), r(3), 0);
    b.nops(600);
    b.load_imm(r(2), 1);
    b.store(r(2), r(1), 0);
    if fenced {
        b.fence(FenceKind::Full);
    }
    b.load(r(4), r(3), 0);
    b.load_imm(r(5), OUT + out_slot);
    b.store(r(4), r(5), 0);
    b.halt();
    b.build()
}

fn mp_threads(fenced: bool) -> Vec<Program> {
    let mut producer = ProgramBuilder::new();
    producer.load_imm(r(1), X);
    producer.load_imm(r(2), 42);
    producer.store(r(2), r(1), 0); // data
    if fenced {
        producer.fence(FenceKind::Release);
    }
    producer.load_imm(r(3), Y);
    producer.load_imm(r(4), 1);
    producer.store(r(4), r(3), 0); // flag
    producer.halt();

    let mut consumer = ProgramBuilder::new();
    consumer.load_imm(r(1), Y);
    consumer.load(r(2), r(1), 0); // flag
    if fenced {
        consumer.fence(FenceKind::Acquire);
    }
    consumer.load_imm(r(3), X);
    consumer.load(r(4), r(3), 0); // data
    consumer.load_imm(r(5), OUT);
    consumer.store(r(2), r(5), 0);
    consumer.store(r(4), r(5), 8);
    consumer.halt();
    vec![producer.build(), consumer.build()]
}

fn run(programs: &[Program]) -> rr_sim::RunResult {
    let machine = MachineConfig::splash_default(programs.len());
    let specs = RecorderSpec::paper_matrix();
    let result = RecordSession::new(programs, &MemImage::new())
        .config(&machine)
        .specs(&specs)
        .run()
        .expect("recording");
    for v in 0..specs.len() {
        replay_and_verify(
            programs,
            &MemImage::new(),
            &result,
            v,
            &CostModel::splash_default(),
        )
        .expect("deterministic replay of the observed outcome");
    }
    result
}

fn main() {
    println!("=== store buffering (SB):  P0: x=1; r1=y   P1: y=1; r2=x ===");
    for fenced in [false, true] {
        let programs = vec![sb_thread(X, Y, 0, fenced), sb_thread(Y, X, 8, fenced)];
        let result = run(&programs);
        let m = &result.recorded.final_mem;
        let (r1, r2) = (m.load(OUT as u64), m.load(OUT as u64 + 8));
        let verdict = match (r1, r2) {
            (0, 0) => "SC-FORBIDDEN outcome observed (write buffers reordered!)",
            _ => "an SC-consistent outcome",
        };
        println!(
            "  {}  r1={r1} r2={r2}  → {verdict}; recorded + replayed exactly ✓",
            if fenced { "fenced  " } else { "unfenced" }
        );
    }

    println!("\n=== message passing (MP):  P0: data=42; flag=1   P1: r1=flag; r2=data ===");
    for fenced in [false, true] {
        let result = run(&mp_threads(fenced));
        let m = &result.recorded.final_mem;
        let (flag, data) = (m.load(OUT as u64), m.load(OUT as u64 + 8));
        let verdict = if flag == 1 && data == 0 {
            "STALE data seen after the flag (relaxed outcome)"
        } else {
            "consistent view"
        };
        println!(
            "  {}  r1(flag)={flag} r2(data)={data}  → {verdict}; recorded + replayed exactly ✓",
            if fenced { "fenced  " } else { "unfenced" }
        );
    }

    println!("\nwhatever the hardware did, the log replayed it bit-for-bit —");
    println!("that is RelaxReplay's contribution for relaxed-consistency machines.");
}
