//! Log anatomy: records a tiny execution engineered to produce every log
//! entry type, dumps the raw per-processor interval logs (paper Figure
//! 6(c)), then shows what the patching step (paper §3.3.2) does to them
//! before replay.
//!
//! Run with:
//! ```text
//! cargo run --release -p rr-experiments --example log_anatomy
//! ```

use rr_isa::{BranchCond, MemImage, Program, ProgramBuilder, Reg};
use rr_replay::{patch, ReplayOp};
use rr_sim::{MachineConfig, RecordSession, RecorderSpec};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Threads ping-pong on two shared lines, guaranteeing conflicting snoops
/// (interval terminations) while accesses are still in flight — the recipe
/// for reordered entries.
fn pingpong(me: i64, other: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (i, n, mine, theirs, v) = (r(1), r(2), r(3), r(4), r(5));
    b.load_imm(i, 0).load_imm(n, 60);
    b.load_imm(mine, me).load_imm(theirs, other);
    let top = b.bind_new();
    b.load(v, theirs, 0); // read the other thread's line
    b.add_imm(v, v, 1);
    b.store(v, mine, 0); // write my line
    b.fetch_add(r(6), mine, i); // and an atomic for ReorderedRmw flavour
    b.nops(6);
    b.add_imm(i, i, 1);
    b.branch(BranchCond::Lt, i, n, top);
    b.halt();
    b.build()
}

fn main() {
    let programs = vec![pingpong(0x100, 0x200), pingpong(0x200, 0x100)];
    let machine = MachineConfig::splash_default(2);
    // Base design: every interval-crossing access is logged explicitly, so
    // the log shows every entry type.
    let specs = vec![RecorderSpec {
        design: relaxreplay::Design::Base,
        max_interval: Some(4096),
    }];
    let result = RecordSession::new(&programs, &MemImage::new())
        .config(&machine)
        .specs(&specs)
        .run()
        .expect("recording");
    let log = &result.variants[0].logs[0];

    println!(
        "=== raw interval log of P0 (first 30 of {} entries) ===",
        log.entries.len()
    );
    println!("entry types (paper Fig. 6c): IB = InorderBlock, RL = ReorderedLoad,");
    println!("RS = ReorderedStore, RRMW = reordered RMW, FRAME = IntervalFrame\n");
    for e in log.entries.iter().take(30) {
        println!("  {e}");
    }

    println!(
        "\nlog totals: {} intervals, {} InorderBlocks, {} bits ({} bytes encoded)",
        log.intervals(),
        log.inorder_blocks(),
        log.bits(),
        log.encode().len(),
    );

    let patched = patch(log).expect("patching");
    println!("\n=== the same log after the patching step (first 30 ops) ===");
    println!("every ReorderedStore moved back `offset` intervals (to where the");
    println!("store PERFORMED) and left a SkipStore dummy where it was counted:\n");
    for op in patched.ops.iter().take(30) {
        let desc = match op {
            ReplayOp::RunBlock { instrs } => format!("RunBlock({instrs})"),
            ReplayOp::InjectLoad { value } => format!("InjectLoad(value={value:#x})"),
            ReplayOp::ApplyStore { addr, value } => {
                format!("ApplyStore(addr={addr:#x}, value={value:#x})   <-- patched here")
            }
            ReplayOp::SkipStore => "SkipStore                      <-- dummy left behind".into(),
            ReplayOp::InjectRmw { loaded } => format!("InjectRmw(loaded={loaded:#x})"),
            ReplayOp::EndInterval { cisn, timestamp } => {
                format!("EndInterval(cisn={cisn}, ts={timestamp})")
            }
        };
        println!("  {desc}");
    }

    let applies = patched
        .ops
        .iter()
        .filter(|o| matches!(o, ReplayOp::ApplyStore { .. }))
        .count();
    let skips = patched
        .ops
        .iter()
        .filter(|o| matches!(o, ReplayOp::SkipStore))
        .count();
    println!(
        "\npatched ops: {} total, {applies} ApplyStores, {skips} SkipStore dummies",
        patched.ops.len()
    );
    println!("(ApplyStores ≥ SkipStores because reordered RMWs contribute a store half)");
}
