//! Cyclic-debugging use case (the paper's §1 motivation): a program with an
//! intermittent atomicity bug is recorded once; the recorded log then
//! replays the *same* buggy interleaving as many times as the debugging
//! session needs.
//!
//! Run with:
//! ```text
//! cargo run --release -p rr-experiments --example debug_race
//! ```

use rr_isa::{BranchCond, FenceKind, MemImage, Program, ProgramBuilder, Reg};
use rr_replay::{patch, replay, CostModel};
use rr_sim::{MachineConfig, RecordSession, RecorderSpec};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

const BALANCE: i64 = 0x1000;
const LOCK: i64 = 0x2000;

/// Transfers money in and out of a shared "account". The bug: the balance
/// check and the withdrawal are not atomic (the lock protects each access
/// but not the check-then-act sequence).
fn teller(deposits: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (i, n, bal, lock, tmp, zero, one) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
    b.load_imm(i, 0).load_imm(n, 40);
    b.load_imm(bal, BALANCE).load_imm(lock, LOCK);
    b.load_imm(zero, 0).load_imm(one, 1);
    let top = b.bind_new();
    // lock; read balance; unlock  (atomicity ends here — the bug)
    let acquire = b.bind_new();
    b.cas(r(8), lock, zero, one);
    b.branch(BranchCond::Ne, r(8), zero, acquire);
    b.load(tmp, bal, 0);
    b.fence(FenceKind::Release);
    b.store(zero, lock, 0);
    // "compute" the new balance outside the critical section — a long
    // interest calculation that widens the race window...
    b.nops(80);
    b.op_imm(rr_isa::AluOp::Add, tmp, tmp, deposits);
    // lock; write it back; unlock — lost updates happen in between.
    let acquire2 = b.bind_new();
    b.cas(r(8), lock, zero, one);
    b.branch(BranchCond::Ne, r(8), zero, acquire2);
    b.store(tmp, bal, 0);
    b.fence(FenceKind::Release);
    b.store(zero, lock, 0);
    b.add_imm(i, i, 1);
    b.branch(BranchCond::Lt, i, n, top);
    b.halt();
    b.build()
}

fn main() {
    let programs = vec![teller(5), teller(7), teller(11)];
    let initial = MemImage::new();
    let machine = MachineConfig::splash_default(4);
    let specs = vec![RecorderSpec {
        design: relaxreplay::Design::Opt,
        max_interval: Some(4096),
    }];

    // The bug manifests as a wrong final balance: with no lost updates it
    // would be 40*(5+7+11) = 920.
    let result = RecordSession::new(&programs, &initial)
        .config(&machine)
        .specs(&specs)
        .run()
        .expect("recording");
    let recorded_balance = result.recorded.final_mem.load(BALANCE as u64);
    println!("expected balance (no race): {}", 40 * (5 + 7 + 11));
    println!("recorded balance          : {recorded_balance}");
    if recorded_balance == 920 {
        println!("(the race did not fire this run — rerun with other parameters)");
    } else {
        println!("→ updates were lost: the atomicity bug fired during recording");
    }

    // Now the debugging session: replay the log as often as we like — the
    // broken interleaving is reproduced *identically* every time.
    let patched: Vec<_> = result.variants[0]
        .logs
        .iter()
        .map(|l| patch(l).expect("patching"))
        .collect();
    println!("\nreplaying the same execution 5 times:");
    for run in 1..=5 {
        let outcome = replay(
            &programs,
            &patched,
            initial.clone(),
            &CostModel::splash_default(),
        )
        .expect("replay");
        let balance = outcome.mem.load(BALANCE as u64);
        println!("  replay #{run}: balance = {balance}");
        assert_eq!(balance, recorded_balance, "replay must be deterministic");
    }
    println!("every replay reproduced the exact same lost-update interleaving.");
}
