//! Failure injection: shrink every RelaxReplay hardware structure to
//! pathological sizes and hammer the squash path — recording must still be
//! correct (conservative structures degrade to more log, never to wrong
//! replay).

use relaxreplay::{Design, RecorderConfig};
use rr_isa::{BranchCond, MemImage, ProgramBuilder, Reg};
use rr_replay::{patch, replay, verify, CostModel};
use rr_sim::{MachineConfig, RecordSession};
use rr_workloads::by_name;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

fn verify_all(
    programs: &[rr_isa::Program],
    initial: &MemImage,
    machine: &MachineConfig,
    configs: &[RecorderConfig],
) {
    let result = RecordSession::new(programs, initial)
        .config(machine)
        .recorder_configs(configs)
        .run()
        .expect("records");
    for (i, v) in result.variants.iter().enumerate() {
        let patched: Vec<_> = v.logs.iter().map(|l| patch(l).expect("patches")).collect();
        let outcome = replay(
            programs,
            &patched,
            initial.clone(),
            &CostModel::splash_default(),
        )
        .unwrap_or_else(|e| panic!("variant {i}: replay failed: {e}"));
        verify(&result.recorded, &outcome)
            .unwrap_or_else(|e| panic!("variant {i}: verification failed: {e}"));
    }
}

#[test]
fn tiny_traq_forces_stalls_but_stays_correct() {
    let w = by_name("radix", 4, 1).expect("workload");
    let machine = MachineConfig::splash_default(4);
    let configs = vec![RecorderConfig {
        traq_entries: 8,
        ..RecorderConfig::splash_default(Design::Opt, Some(4096))
    }];
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .config(&machine)
        .recorder_configs(&configs)
        .run()
        .expect("records");
    let stalls: u64 = result.core_stats.iter().map(|s| s.traq_stall_cycles).sum();
    assert!(stalls > 0, "an 8-entry TRAQ must stall dispatch");
    // And still replay correctly.
    verify_all(&w.programs, &w.initial_mem, &machine, &configs);
}

#[test]
fn saturated_signatures_terminate_more_but_stay_correct() {
    let w = by_name("fft", 4, 1).expect("workload");
    let machine = MachineConfig::splash_default(4);
    // 1 bank × 8 bits: astronomically high false-positive rate.
    let tiny = RecorderConfig {
        sig_banks: 1,
        sig_bits: 8,
        ..RecorderConfig::splash_default(Design::Base, None)
    };
    let normal = RecorderConfig::splash_default(Design::Base, None);
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .config(&machine)
        .recorder_configs(&[tiny.clone(), normal.clone()])
        .run()
        .expect("records");
    let intervals =
        |v: usize| -> usize { result.variants[v].logs.iter().map(|l| l.intervals()).sum() };
    assert!(
        intervals(0) > intervals(1),
        "saturated signatures must terminate more intervals ({} vs {})",
        intervals(0),
        intervals(1)
    );
    verify_all(&w.programs, &w.initial_mem, &machine, &[tiny, normal]);
}

#[test]
fn tiny_snoop_table_aliases_but_stays_correct() {
    let w = by_name("barnes", 4, 1).expect("workload");
    let machine = MachineConfig::splash_default(4);
    let tiny = RecorderConfig {
        snoop_entries: 2,
        ..RecorderConfig::splash_default(Design::Opt, None)
    };
    let normal = RecorderConfig::splash_default(Design::Opt, None);
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .config(&machine)
        .recorder_configs(&[tiny.clone(), normal.clone()])
        .run()
        .expect("records");
    assert!(
        result.variants[0].reordered() >= result.variants[1].reordered(),
        "a 2-entry snoop table cannot reorder less than the 64-entry one"
    );
    verify_all(&w.programs, &w.initial_mem, &machine, &[tiny, normal]);
}

#[test]
fn squash_storm_with_sharing_stays_correct() {
    // Alternating unpredictable branches around racy accesses: maximal
    // TRAQ-flush pressure.
    let make = |seed: i64| {
        let mut b = ProgramBuilder::new();
        let (i, lim, addr, v, tmp) = (r(1), r(2), r(3), r(4), r(5));
        b.load_imm(i, 0).load_imm(lim, 300).load_imm(addr, 0x3000);
        let top = b.bind_new();
        let odd = b.label();
        let join = b.label();
        b.op_imm(rr_isa::AluOp::And, tmp, i, 1);
        b.branch(BranchCond::Ne, tmp, Reg::ZERO, odd);
        b.load(v, addr, 0);
        b.add_imm(v, v, seed);
        b.store(v, addr, 0);
        b.jump(join);
        b.bind(odd);
        b.load(v, addr, 8);
        b.add_imm(v, v, 1);
        b.store(v, addr, 8);
        b.bind(join);
        b.add_imm(i, i, 1);
        b.branch(BranchCond::Lt, i, lim, top);
        b.halt();
        b.build()
    };
    let programs = vec![make(1), make(3), make(5), make(7)];
    let machine = MachineConfig::splash_default(4);
    let configs = vec![
        RecorderConfig::splash_default(Design::Base, Some(4096)),
        RecorderConfig::splash_default(Design::Opt, Some(4096)),
    ];
    let result = RecordSession::new(&programs, &MemImage::new())
        .config(&machine)
        .recorder_configs(&configs)
        .run()
        .expect("records");
    let squashes: u64 = result.core_stats.iter().map(|s| s.squashes).sum();
    assert!(squashes > 100, "expected a squash storm, got {squashes}");
    verify_all(&programs, &MemImage::new(), &machine, &configs);
}

#[test]
fn dirty_eviction_storm_in_directory_mode_stays_correct() {
    // A tiny L1 forces constant dirty evictions; in directory mode the
    // recorder must compensate through the Snoop Table (paper §4.3).
    let w = by_name("ocean", 4, 1).expect("workload");
    let mut machine = MachineConfig::splash_default(4).with_directory();
    machine.mem.l1_bytes = 32 * 32; // 32 lines
    let configs = vec![
        RecorderConfig::splash_default(Design::Opt, Some(4096)),
        RecorderConfig::splash_default(Design::Base, Some(4096)),
    ];
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .config(&machine)
        .recorder_configs(&configs)
        .run()
        .expect("records");
    assert!(
        result.mem_stats.dirty_evictions > 100,
        "expected an eviction storm, got {}",
        result.mem_stats.dirty_evictions
    );
    verify_all(&w.programs, &w.initial_mem, &machine, &configs);
}

#[test]
fn tiny_write_buffer_and_lsq_stay_correct() {
    let w = by_name("lu", 2, 1).expect("workload");
    let mut machine = MachineConfig::splash_default(2);
    machine.cpu.write_buffer_entries = 2;
    machine.cpu.write_buffer_inflight = 1;
    machine.cpu.lsq_entries = 8;
    let configs = vec![RecorderConfig::splash_default(Design::Opt, Some(4096))];
    verify_all(&w.programs, &w.initial_mem, &machine, &configs);
}
