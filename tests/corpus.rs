//! Tier-1 differential tests over the concurrent data-structure corpus:
//! every `.asm` shape (locks, seqlock, Treiber stack, MPMC ring,
//! work-stealing deque, RCU epochs) is swept over 64 seeded schedule
//! perturbations, recorded under both paper designs (Base-4K and
//! Opt-4K), replayed, and cross-checked against the sequential ground
//! truth and against each other — the same bar `tests/rr_check.rs` sets
//! for the litmus shapes, applied to real synchronization idioms. The
//! fuzz generator is held to the same bar end to end: generated `.asm`
//! text goes through the assembler frontend, the recorder, and the
//! replayer with zero divergence.

use rr_experiments::{figures, run_corpus_suite, ExperimentConfig};
use rr_sim::{explore_sweep, ExploreSpec, MachineConfig, PressureMode};
use rr_workloads::{corpus_names, corpus_suite, fuzz_case};

/// `rr-check explore --workload corpus --seeds 64`: every corpus shape
/// must replay deterministically under both designs on every schedule.
#[test]
fn corpus_shapes_agree_across_64_seeded_schedules() {
    for w in corpus_suite() {
        let machine = MachineConfig::splash_default(w.programs.len());
        let specs: Vec<ExploreSpec> = (0..64)
            .map(|s| ExploreSpec::for_seed(s, PressureMode::None))
            .collect();
        let report = explore_sweep(&w.programs, &w.initial_mem, &machine, &specs, 0)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for o in &report.outcomes {
            assert_eq!(
                o.divergence, None,
                "{}/{}: Base and Opt must agree with ground truth",
                w.name, o.name
            );
        }
        // Contended data structures are schedule-sensitive by nature; if
        // no seed changed the cycle count the explorer isn't exploring.
        let baseline = report.outcomes[0].cycles;
        assert!(
            report.outcomes.iter().any(|o| o.cycles != baseline),
            "{}: no seed perturbed the schedule",
            w.name
        );
    }
}

/// A slice of the corpus also holds up under recorder pressure (forced
/// interval closes and TRAQ near-overflow) — the modes that stress
/// interval-boundary bookkeeping hardest on RMW-heavy code.
#[test]
fn contended_locks_survive_recorder_pressure() {
    for name in ["spinlock", "ticket_lock"] {
        let w = rr_workloads::corpus_by_name(name).expect("catalog name");
        let machine = MachineConfig::splash_default(w.programs.len());
        for pressure in [PressureMode::ForceClose, PressureMode::Traq] {
            let specs: Vec<ExploreSpec> =
                (0..4).map(|s| ExploreSpec::for_seed(s, pressure)).collect();
            let report = explore_sweep(&w.programs, &w.initial_mem, &machine, &specs, 0)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", w.name, pressure.name()));
            for o in &report.outcomes {
                assert_eq!(o.divergence, None, "{}/{}", w.name, o.name);
            }
        }
    }
}

/// The fuzz pipeline end to end: generated `.asm` text → assembler →
/// record under both designs → replay → cross-check, over a batch of
/// seeds and two schedule perturbations each (the CI job runs the same
/// check at `rr-check fuzz --count 200` scale).
#[test]
fn fuzzed_programs_replay_deterministically_end_to_end() {
    for seed in 0..24u64 {
        let case = fuzz_case(seed);
        let w = &case.workload;
        let machine = MachineConfig::splash_default(w.programs.len());
        let specs: Vec<ExploreSpec> = (0..2)
            .map(|s| ExploreSpec::for_seed(seed * 100 + s, PressureMode::None))
            .collect();
        let report = explore_sweep(&w.programs, &w.initial_mem, &machine, &specs, 0)
            .unwrap_or_else(|e| panic!("{}: {e}", case.label));
        for o in &report.outcomes {
            assert_eq!(
                o.divergence, None,
                "{}/{}: divergence on generated program:\n{}",
                case.label, o.name, case.asm
            );
        }
    }
}

/// The experiments harness runs the corpus like any other suite: all
/// four recorder variants record, every variant replays and verifies,
/// and the per-shape rows land in the corpus editions of Figures 11
/// and 13.
#[test]
fn corpus_suite_records_replays_and_fills_the_figures() {
    let cfg = ExperimentConfig {
        workers: 4,
        ..ExperimentConfig::paper_default()
    };
    let runs = run_corpus_suite(&cfg).expect("corpus suite");
    assert_eq!(runs.len(), 7);
    for (r, name) in runs.iter().zip(corpus_names()) {
        assert_eq!(r.name, name, "suite order matches the catalog");
        assert_eq!(r.record.variants.len(), 4, "{name}: paper matrix");
        assert_eq!(r.replays.len(), 4, "{name}: every variant replays");
        for v in 0..4 {
            let bits = r.record.variants[v].bits_per_kilo_instr();
            assert!(
                bits.is_finite() && bits > 0.0,
                "{name}: variant {v} logged nothing"
            );
        }
    }
    let t11 = figures::fig11_corpus(&runs).render();
    let t13 = figures::fig13_corpus(&runs).render();
    for name in corpus_names() {
        assert!(t11.contains(name), "fig11-corpus misses {name}:\n{t11}");
        assert!(t13.contains(name), "fig13-corpus misses {name}:\n{t13}");
    }
    assert!(t11.contains("AVERAGE"), "{t11}");
    assert!(t13.contains("AVERAGE"), "{t13}");
}
