#![allow(clippy::needless_range_loop)] // variant index addresses parallel arrays
//! Workspace-level end-to-end matrix: every workload × every recorder
//! variant × several core counts must record, patch, replay and verify
//! bit-exactly. This is the system's headline correctness property
//! (deterministic replay of relaxed-consistency executions).

use rr_replay::CostModel;
use rr_sim::{replay_and_verify, MachineConfig, RecordSession, RecorderSpec};
use rr_workloads::suite;

fn check_matrix(threads: usize, size: u32) {
    let cfg = MachineConfig::splash_default(threads);
    let specs = RecorderSpec::paper_matrix();
    for w in suite(threads, size) {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{} @{threads}c: recording failed: {e}", w.name));
        for v in 0..specs.len() {
            replay_and_verify(
                &w.programs,
                &w.initial_mem,
                &result,
                v,
                &CostModel::splash_default(),
            )
            .unwrap_or_else(|e| panic!("{} @{threads}c [{}]: {e}", w.name, specs[v].label()));
        }
    }
}

#[test]
fn suite_replays_on_two_cores() {
    check_matrix(2, 1);
}

#[test]
fn suite_replays_on_four_cores() {
    check_matrix(4, 1);
}

#[test]
fn suite_replays_on_eight_cores() {
    check_matrix(8, 1);
}

#[test]
fn suite_replays_on_eight_cores_larger_runs() {
    check_matrix(8, 3);
}

#[test]
fn suite_replays_under_directory_coherence() {
    let threads = 4;
    let cfg = MachineConfig::splash_default(threads).with_directory();
    let specs = RecorderSpec::paper_matrix();
    for w in suite(threads, 1) {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{} (dir): recording failed: {e}", w.name));
        for v in 0..specs.len() {
            replay_and_verify(
                &w.programs,
                &w.initial_mem,
                &result,
                v,
                &CostModel::splash_default(),
            )
            .unwrap_or_else(|e| panic!("{} (dir) [{}]: {e}", w.name, specs[v].label()));
        }
    }
}

#[test]
fn logs_round_trip_through_the_binary_codec() {
    let threads = 2;
    let cfg = MachineConfig::splash_default(threads);
    let specs = RecorderSpec::paper_matrix();
    for w in suite(threads, 1).into_iter().take(3) {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .expect("records");
        for v in &result.variants {
            for log in &v.logs {
                let decoded =
                    relaxreplay::IntervalLog::decode(&log.encode()).expect("codec round trip");
                assert_eq!(&decoded, log, "{} [{}]", w.name, v.spec.label());
            }
        }
    }
}
