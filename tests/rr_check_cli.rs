//! CLI regression tests for `rr-check`: workload resolution (litmus,
//! corpus, and single-shape names), the exact usage-error contract
//! (exit 2, and an unknown `--workload` names every known workload so
//! typos are self-diagnosing), and the `fuzz` subcommand end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn rr_check(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rr-check"))
        .args(args)
        .output()
        .expect("rr-check spawns")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rr_check_cli_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn unknown_workload_exits_2_and_lists_every_known_name() {
    let out = rr_check(&["explore", "--workload", "spinlok"]);
    assert_eq!(out.status.code(), Some(2), "usage error is exit 2");
    let err = stderr(&out);
    assert!(err.contains("unknown workload \"spinlok\""), "{err}");
    // The listing must cover all three families plus the two keywords.
    for name in [
        "litmus",
        "corpus",
        "fft",
        "radiosity",
        "sb",
        "iriw",
        "spinlock",
        "rcu_epoch",
    ] {
        assert!(err.contains(name), "error should list {name:?}:\n{err}");
    }
}

#[test]
fn usage_errors_exit_2() {
    // (args, whether the error echoes the usage text)
    for (args, echoes_usage) in [
        (vec![], true),
        (vec!["frobnicate"], true),
        (vec!["explore", "--no-such-flag"], true),
        (vec!["explore", "--seeds"], true),
        (vec!["explore", "--pressure", "nonesuch"], true),
        (vec!["fuzz", "--no-such-flag"], true),
        (vec!["fuzz", "--count", "many"], false),
        (vec!["explore", "--seeds", "many"], false),
    ] {
        let out = rr_check(&args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
        if echoes_usage {
            assert!(stderr(&out).contains("usage:"), "{args:?}");
        }
    }
}

#[test]
fn modes_lists_every_pressure_mode() {
    let out = rr_check(&["modes"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for m in [
        "none",
        "force-close",
        "traq",
        "sig-alias",
        "cisn-wrap",
        "sink-fault",
    ] {
        assert!(text.lines().any(|l| l == m), "missing mode {m}:\n{text}");
    }
}

#[test]
fn explore_resolves_a_corpus_shape_by_name() {
    let dir = temp_out("corpus_shape");
    let out = rr_check(&[
        "explore",
        "--workload",
        "spinlock",
        "--seeds",
        "2",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("spinlock"), "{text}");
    assert!(text.contains("replay deterministically"), "{text}");
    assert!(dir.join("rr-check.csv").is_file(), "CSV artifact written");
}

#[test]
fn fuzz_smoke_runs_clean_and_reports_the_seed_range() {
    let dir = temp_out("fuzz");
    let out = rr_check(&[
        "fuzz",
        "--count",
        "3",
        "--start-seed",
        "7",
        "--schedules",
        "1",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("seeds 7..10"), "{text}");
    assert!(text.contains("replay deterministically"), "{text}");
}
