//! Tier-1 differential test: the `rr-check` explorer sweeps the four
//! litmus shapes (SB, MP, LB, IRIW) over 64 seeded schedule
//! perturbations each, recording every perturbed execution under both
//! paper designs (Base-4K and Opt-4K), replaying both logs, and
//! cross-checking them against the sequential ground truth and against
//! each other. Zero divergences is the paper's determinism claim, tested
//! adversarially; byte-stability per seed is what makes any future
//! failure reproducible from its seed alone.

use rr_sim::{explore_one, explore_sweep, ExploreSpec, MachineConfig, PressureMode};
use rr_workloads::litmus_suite;

/// `rr-check explore --seeds 64` over every litmus shape: all schedules
/// must replay deterministically under both designs.
#[test]
fn litmus_shapes_agree_across_64_seeded_schedules() {
    for w in litmus_suite() {
        let machine = MachineConfig::splash_default(w.programs.len());
        let specs: Vec<ExploreSpec> = (0..64)
            .map(|s| ExploreSpec::for_seed(s, PressureMode::None))
            .collect();
        let report = explore_sweep(&w.programs, &w.initial_mem, &machine, &specs, 0)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for o in &report.outcomes {
            assert_eq!(
                o.divergence, None,
                "{}/{}: Base and Opt must agree with ground truth",
                w.name, o.name
            );
        }
        // The explorer must actually explore: perturbed seeds change the
        // execution relative to seed 0.
        let baseline = report.outcomes[0].cycles;
        assert!(
            report.outcomes.iter().any(|o| o.cycles != baseline),
            "{}: no seed perturbed the schedule",
            w.name
        );
    }
}

/// The pressure modes that flush out this PR's bug fixes, end to end:
/// CISN wraparound (intervals counted past 2^16) and mid-record sink
/// faults (poisoned shadow, intact retained prefix) must not cost a
/// single bit of replay fidelity.
#[test]
fn bugfix_pressure_modes_stay_deterministic() {
    for w in litmus_suite() {
        let machine = MachineConfig::splash_default(w.programs.len());
        for pressure in [PressureMode::CisnWrap, PressureMode::SinkFault] {
            let specs: Vec<ExploreSpec> =
                (0..4).map(|s| ExploreSpec::for_seed(s, pressure)).collect();
            let report = explore_sweep(&w.programs, &w.initial_mem, &machine, &specs, 0)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", w.name, pressure.name()));
            for o in &report.outcomes {
                assert_eq!(o.divergence, None, "{}/{}", w.name, o.name);
                match pressure {
                    PressureMode::CisnWrap => {
                        assert_eq!(o.pressure.preadvanced, 65_500, "{}", o.name);
                    }
                    PressureMode::SinkFault => {
                        let sink = o.pressure.sink.as_ref().expect("shadow attached");
                        assert!(sink.prefix_intact, "{}/{}", w.name, o.name);
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

/// Regression: the first bug this checker flushed out. Under
/// `SeededStall` (lb, seed 31) a stalled core used to skip its whole
/// tick, so a load whose memory transaction had already completed did
/// not perform until the stall ended — and the conflicting remote
/// store's invalidation snoop slipped into that gap, before the perform,
/// where it could not conflict-close the loader's interval. Both final
/// intervals then closed with equal timestamps and the replayer's
/// (timestamp, core) tie-break ran them in the wrong order, replaying
/// the load as 1 where recording saw 0. Stalled cores now drain their
/// completions on the contracted cycle, so the snoop lands *after* the
/// perform and closes the interval with a strictly smaller timestamp.
#[test]
fn stall_schedules_preserve_the_perform_timing_contract() {
    let w = rr_workloads::litmus::lb();
    let machine = MachineConfig::splash_default(w.programs.len());
    let spec = ExploreSpec::for_seed(31, PressureMode::None);
    let outcome = explore_one(&w.programs, &w.initial_mem, &machine, &spec)
        .expect("lb/seed31 records and replays");
    assert!(
        outcome.pressure.stalled_ticks > 0,
        "seed 31 must actually stall the pipeline"
    );
    assert_eq!(outcome.divergence, None, "{}", outcome.name);
}

/// Byte-stability: the same seed must reproduce the same logs, bit for
/// bit — a divergence report that cannot be re-run from its seed is
/// useless.
#[test]
fn explored_schedules_are_byte_stable_per_seed() {
    for w in litmus_suite() {
        let machine = MachineConfig::splash_default(w.programs.len());
        let spec = ExploreSpec::for_seed(3, PressureMode::None);
        let runs: Vec<_> = (0..2)
            .map(|_| {
                explore_one(&w.programs, &w.initial_mem, &machine, &spec)
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            })
            .collect();
        assert_eq!(runs[0].cycles, runs[1].cycles, "{}", w.name);
        assert_eq!(runs[0].pressure, runs[1].pressure, "{}", w.name);
        assert_eq!(runs[0].divergence, runs[1].divergence, "{}", w.name);
    }
}
