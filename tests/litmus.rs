#![allow(clippy::needless_range_loop)] // variant index addresses parallel arrays
//! Memory-model litmus tests: the simulated machine is release-consistent,
//! so the classic relaxed outcomes must be *observable* — and whatever
//! outcome occurs, RelaxReplay must record it and replay it exactly.

use relaxreplay::LogEntry;
use rr_isa::{BranchCond, FenceKind, MemImage, Program, ProgramBuilder, Reg};
use rr_replay::CostModel;
use rr_sim::{replay_and_verify, MachineConfig, RecordSession, RecorderSpec, RunResult};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// `ReorderedLoad` entries in `core`'s log under the Base-4K variant (the
/// design that logs every out-of-order access individually).
fn reordered_loads(result: &RunResult, core: usize) -> usize {
    result.variants[0].logs[core]
        .entries
        .iter()
        .filter(|e| matches!(e, LogEntry::ReorderedLoad { .. }))
        .count()
}

/// `ReorderedStore` entries in `core`'s log under the Base-4K variant.
fn reordered_stores(result: &RunResult, core: usize) -> usize {
    result.variants[0].logs[core]
        .entries
        .iter()
        .filter(|e| matches!(e, LogEntry::ReorderedStore { .. }))
        .count()
}

const X: i64 = 0x100; // separate cache lines
const Y: i64 = 0x200;
const OUT: i64 = 0x1000;

fn run_and_verify(programs: &[Program]) -> RunResult {
    let cfg = MachineConfig::splash_default(programs.len());
    let specs = RecorderSpec::paper_matrix();
    let result = RecordSession::new(programs, &MemImage::new())
        .config(&cfg)
        .specs(&specs)
        .run()
        .expect("records");
    for v in 0..specs.len() {
        replay_and_verify(
            programs,
            &MemImage::new(),
            &result,
            v,
            &CostModel::splash_default(),
        )
        .unwrap_or_else(|e| panic!("[{}]: {e}", specs[v].label()));
    }
    result
}

/// Store buffering (SB): `P0: x=1; r1=y` / `P1: y=1; r2=x`. Under RC with
/// write buffers the loads can bypass the buffered stores, so
/// `r1 = r2 = 0` — forbidden under SC — is the expected outcome when both
/// threads run in lockstep.
#[test]
fn store_buffering_shows_relaxed_outcome_and_replays() {
    let thread = |my: i64, other: i64, out_slot: i64| {
        let mut b = ProgramBuilder::new();
        // Warm both lines into this core's cache so the SB race is between
        // a fast load *hit* and a slower buffered store *upgrade* — the
        // configuration in which write buffers visibly reorder.
        b.load_imm(r(1), my);
        b.load_imm(r(3), other);
        b.load(r(6), r(1), 0);
        b.load(r(6), r(3), 0);
        b.nops(600); // let the warming misses settle
        b.load_imm(r(2), 1);
        b.store(r(2), r(1), 0); // x = 1 (sits in the write buffer)
        b.load(r(4), r(3), 0); // r = y (bypasses the store)
        b.load_imm(r(5), OUT + out_slot);
        b.store(r(4), r(5), 0);
        b.halt();
        b.build()
    };
    let programs = vec![thread(X, Y, 0), thread(Y, X, 8)];
    let result = run_and_verify(&programs);
    let (r1, r2) = (
        result.recorded.final_mem.load((OUT) as u64),
        result.recorded.final_mem.load((OUT + 8) as u64),
    );
    // Both threads start in lockstep; both loads issue before either
    // buffered store performs: the SC-forbidden outcome appears.
    assert_eq!(
        (r1, r2),
        (0, 0),
        "expected the store-buffering relaxed outcome under RC"
    );
}

/// The same SB test with full fences between the store and the load must
/// forbid the relaxed outcome: at least one thread sees the other's store.
#[test]
fn store_buffering_with_fences_is_sequential() {
    let thread = |my: i64, other: i64, out_slot: i64| {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), my);
        b.load_imm(r(2), 1);
        b.store(r(2), r(1), 0);
        b.fence(FenceKind::Full);
        b.load_imm(r(3), other);
        b.load(r(4), r(3), 0);
        b.load_imm(r(5), OUT + out_slot);
        b.store(r(4), r(5), 0);
        b.halt();
        b.build()
    };
    let programs = vec![thread(X, Y, 0), thread(Y, X, 8)];
    let result = run_and_verify(&programs);
    let (r1, r2) = (
        result.recorded.final_mem.load(OUT as u64),
        result.recorded.final_mem.load((OUT + 8) as u64),
    );
    assert_ne!((r1, r2), (0, 0), "full fences must forbid the SB outcome");
}

/// Message passing (MP) without fences can observe `flag=1, data=0` under
/// RC... but only if the stores reorder. Our write buffer performs
/// same-line stores in order and different-line stores may overlap; with
/// fences the stale outcome must never appear. This test checks the fenced
/// variant (the guarantee), plus record/replay.
#[test]
fn message_passing_with_fences_never_sees_stale_data() {
    let mut producer = ProgramBuilder::new();
    producer.load_imm(r(1), X);
    producer.load_imm(r(2), 41);
    producer.store(r(2), r(1), 0);
    producer.fence(FenceKind::Release);
    producer.load_imm(r(3), Y);
    producer.load_imm(r(4), 1);
    producer.store(r(4), r(3), 0);
    producer.halt();

    let mut consumer = ProgramBuilder::new();
    consumer.load_imm(r(1), Y);
    consumer.load_imm(r(2), 1);
    let spin = consumer.bind_new();
    consumer.load(r(3), r(1), 0);
    consumer.branch(BranchCond::Ne, r(3), r(2), spin);
    consumer.fence(FenceKind::Acquire);
    consumer.load_imm(r(4), X);
    consumer.load(r(5), r(4), 0);
    consumer.load_imm(r(6), OUT);
    consumer.store(r(5), r(6), 0);
    consumer.halt();

    let programs = vec![producer.build(), consumer.build()];
    let result = run_and_verify(&programs);
    assert_eq!(result.recorded.final_mem.load(OUT as u64), 41);
}

/// Coherence (CO): two writers to the same location — every observer must
/// agree on the final value (write serialization), and replay must
/// reproduce the exact winner.
#[test]
fn write_serialization_is_recorded_exactly() {
    let writer = |value: i64| {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), X);
        b.load_imm(r(2), value);
        b.store(r(2), r(1), 0);
        b.halt();
        b.build()
    };
    let reader = {
        let mut b = ProgramBuilder::new();
        // Give the writers time, then read.
        b.nops(600);
        b.load_imm(r(1), X);
        b.load(r(2), r(1), 0);
        b.load_imm(r(3), OUT);
        b.store(r(2), r(3), 0);
        b.halt();
        b.build()
    };
    let programs = vec![writer(7), writer(9), reader];
    let result = run_and_verify(&programs);
    let final_x = result.recorded.final_mem.load(X as u64);
    assert!(final_x == 7 || final_x == 9);
}

/// Write atomicity / IRIW-flavoured check: two readers observing two
/// independent writers must not disagree about the order of the writes.
/// With write atomicity (single-writer coherence), the four-outcome
/// anomaly `r1=1,r2=0,r3=1,r4=0` is forbidden.
#[test]
fn iriw_anomaly_is_forbidden() {
    let writer = |addr: i64| {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), addr);
        b.load_imm(r(2), 1);
        b.store(r(2), r(1), 0);
        b.halt();
        b.build()
    };
    let reader = |first: i64, second: i64, out: i64| {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), first);
        b.load(r(2), r(1), 0);
        // Data-dependent fence-free ordering is not guaranteed; use an
        // acquire fence so the reads are ordered — the IRIW guarantee is
        // about write atomicity, not read reordering.
        b.fence(FenceKind::Acquire);
        b.load_imm(r(3), second);
        b.load(r(4), r(3), 0);
        b.load_imm(r(5), out);
        b.store(r(2), r(5), 0);
        b.store(r(4), r(5), 8);
        b.halt();
        b.build()
    };
    let programs = vec![
        writer(X),
        writer(Y),
        reader(X, Y, OUT),
        reader(Y, X, OUT + 0x40),
    ];
    let result = run_and_verify(&programs);
    let m = &result.recorded.final_mem;
    let (r1, r2) = (m.load(OUT as u64), m.load(OUT as u64 + 8));
    let (r3, r4) = (m.load(OUT as u64 + 0x40), m.load(OUT as u64 + 0x48));
    let anomaly = r1 == 1 && r2 == 0 && r3 == 1 && r4 == 0;
    assert!(!anomaly, "write atomicity forbids disagreeing readers");
}

// --- Shapes that pin down *what the recorder logs*, not just the outcome.
//
// An access is logged reordered when an interval boundary separates the
// interval where it performed from the interval where it is counted
// (paper §3.2: PISN != CISN). The shared shapes in
// `rr_workloads::litmus` manufacture that situation deterministically
// (see that module's padding rationale); they double as the `rr-check`
// schedule explorer's tier-1 workloads, so the exact programs checked
// here are the ones swept over hundreds of perturbed schedules. Replay
// fidelity is checked by `run_and_verify` as everywhere else.

/// Store buffering, log-level: the load that bypasses the buffered store
/// is the access that makes `r1 = r2 = 0` possible, and the recorder must
/// log it as a `ReorderedLoad` on each core.
#[test]
fn sb_bypassing_load_is_logged_reordered() {
    let result = run_and_verify(&rr_workloads::litmus::sb().programs);
    let m = &result.recorded.final_mem;
    assert_eq!(
        (m.load(OUT as u64), m.load(OUT as u64 + 8)),
        (0, 0),
        "expected the store-buffering relaxed outcome under RC"
    );
    for core in 0..2 {
        assert!(
            reordered_loads(&result, core) >= 1,
            "core {core}: the bypassing load must be logged as ReorderedLoad"
        );
    }
}

/// Message passing without fences: the producer's data store (a miss) is
/// still in flight when its flag store (a warmed hit) performs — the flag
/// store performs out of program order and must be logged as a
/// `ReorderedStore`.
#[test]
fn mp_unfenced_early_flag_store_is_logged_reordered() {
    let result = run_and_verify(&rr_workloads::litmus::mp().programs);
    assert!(
        reordered_stores(&result, 0) >= 1,
        "producer's flag store performed before the older data store and \
         must be logged as ReorderedStore"
    );
    // Whatever data value the consumer observed (stale 0 or fresh 41), it
    // was recorded and — via run_and_verify — replayed exactly.
    let seen = result.recorded.final_mem.load(OUT as u64);
    assert!(seen == 0 || seen == 41, "unexpected data value {seen}");
}

/// Load buffering: each thread loads one variable and then stores to the
/// other. Each thread carries an older cold store (to a private scratch
/// line) still draining from the write buffer: the LB load performs under
/// that miss — before the older store — and the partner thread's
/// conflicting accesses terminate the interval in between, so the
/// recorder must log the early load as `ReorderedLoad`. (The LB store
/// also drains out of order, but it performs after the conflict boundary
/// and so counts in the interval it performed in; the `ReorderedStore`
/// path is exercised by the MP test above.)
#[test]
fn lb_accesses_overtaking_older_store_are_logged_reordered() {
    let result = run_and_verify(&rr_workloads::litmus::lb().programs);
    let m = &result.recorded.final_mem;
    for slot in [OUT, OUT + 8] {
        let v = m.load(slot as u64);
        assert!(v == 0 || v == 1, "load observed impossible value {v}");
    }
    for core in 0..2 {
        assert!(
            reordered_loads(&result, core) >= 1,
            "core {core}: the LB load performed under the older store's \
             miss and must be logged as ReorderedLoad"
        );
    }
}

/// IRIW without acquire fences on a write-atomic machine: both of each
/// reader's loads perform while the writers' invalidations are in flight,
/// and instruction counting lags far behind (the long nop prefix drains
/// through the TRAQ at `count_per_cycle`), so the writers' conflicting
/// stores terminate the reader's interval *between* the loads' performs
/// and the cycle they are counted. The recorder must classify both reads
/// as `ReorderedLoad` — the PISN/CISN mismatch replay has to honor — and
/// replay still reproduces exactly what each reader saw.
#[test]
fn iriw_unfenced_reordered_reads_are_logged() {
    // The writers' nop pad is sized so their stores' invalidations reach
    // the readers after the reads performed but before they were counted;
    // the probe plateau is wide (≈4550–4750 nops), the shape sits
    // mid-plateau.
    let result = run_and_verify(&rr_workloads::litmus::iriw().programs);
    let m = &result.recorded.final_mem;
    for slot in [OUT, OUT + 8, OUT + 0x40, OUT + 0x48] {
        let v = m.load(slot as u64);
        assert!(v == 0 || v == 1, "reader observed impossible value {v}");
    }
    for core in 2..4 {
        assert!(
            reordered_loads(&result, core) >= 1,
            "reader core {core}: its loads performed in an earlier interval \
             than they were counted in and must be logged as ReorderedLoad"
        );
    }
}
