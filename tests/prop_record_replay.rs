#![allow(clippy::needless_range_loop)] // variant index addresses parallel arrays
//! Property-based end-to-end test: *arbitrary* racy straight-line programs
//! over a small shared address pool must record and replay exactly, under
//! every recorder variant. This explores interleavings and sharing
//! patterns no hand-written workload covers.

use proptest::prelude::*;
use rr_isa::{AluOp, MemImage, Program, ProgramBuilder, Reg};
use rr_replay::{patch, replay, replay_parallel, verify, CostModel, ReplayOutcome};
use rr_sim::{replay_and_verify, MachineConfig, RecordSession, RecorderSpec};
use rr_workloads::suite;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// One step of a generated thread: an access to one of 8 shared words
/// (spanning 2 cache lines — maximal contention) or some local compute.
#[derive(Clone, Debug)]
enum Step {
    Load { slot: u8 },
    Store { slot: u8, val: u8 },
    FetchAdd { slot: u8, val: u8 },
    Cas { slot: u8, expected: u8, desired: u8 },
    Alu { imm: u8 },
    Nops { count: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..8).prop_map(|slot| Step::Load { slot }),
        (0u8..8, any::<u8>()).prop_map(|(slot, val)| Step::Store { slot, val }),
        (0u8..8, 1u8..5).prop_map(|(slot, val)| Step::FetchAdd { slot, val }),
        (0u8..8, any::<u8>(), any::<u8>()).prop_map(|(slot, expected, desired)| Step::Cas {
            slot,
            expected,
            desired
        }),
        any::<u8>().prop_map(|imm| Step::Alu { imm }),
        (1u8..20).prop_map(|count| Step::Nops { count }),
    ]
}

const POOL: i64 = 0x8000;

fn build_thread(steps: &[Step]) -> Program {
    let mut b = ProgramBuilder::new();
    let (base, acc, tmp, addr) = (r(1), r(2), r(3), r(4));
    b.load_imm(base, POOL);
    b.load_imm(acc, 1);
    for s in steps {
        match s {
            Step::Load { slot } => {
                b.load(tmp, base, i64::from(*slot) * 8);
                b.add(acc, acc, tmp);
            }
            Step::Store { slot, val } => {
                b.op_imm(AluOp::Add, tmp, acc, i64::from(*val));
                b.store(tmp, base, i64::from(*slot) * 8);
            }
            Step::FetchAdd { slot, val } => {
                b.op_imm(AluOp::Add, addr, base, i64::from(*slot) * 8);
                b.load_imm(tmp, i64::from(*val));
                b.fetch_add(r(5), addr, tmp);
                b.add(acc, acc, r(5));
            }
            Step::Cas {
                slot,
                expected,
                desired,
            } => {
                b.op_imm(AluOp::Add, addr, base, i64::from(*slot) * 8);
                b.load_imm(r(6), i64::from(*expected));
                b.load_imm(r(7), i64::from(*desired));
                b.cas(r(5), addr, r(6), r(7));
                b.add(acc, acc, r(5));
            }
            Step::Alu { imm } => {
                b.op_imm(AluOp::Mul, acc, acc, i64::from(*imm) | 1);
                b.op_imm(AluOp::Xor, acc, acc, 0x55);
            }
            Step::Nops { count } => {
                b.nops(*count as usize);
            }
        }
    }
    // Publish the accumulator so divergence in register state is caught
    // through memory too.
    b.store(acc, base, 0x100);
    b.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full multi-core simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_racy_programs_replay_exactly(
        threads in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 5..60),
            2..4
        )
    ) {
        let programs: Vec<Program> = threads.iter().map(|s| build_thread(s)).collect();
        let cfg = MachineConfig::splash_default(programs.len());
        let specs = RecorderSpec::paper_matrix();
        let result = RecordSession::new(&programs, &MemImage::new())
        .config(&cfg)
        .specs(&specs)
        .run()
            .expect("recording finishes");
        for v in 0..specs.len() {
            replay_and_verify(
                &programs,
                &MemImage::new(),
                &result,
                v,
                &CostModel::splash_default(),
            )
            .map_err(|e| TestCaseError::fail(format!("[{}]: {e}", specs[v].label())))?;
        }
    }
}

/// Differential test: on every rr-workloads workload, the Base and Opt
/// recordings must replay to *identical* final memory images and load
/// values — both sequentially and through the parallel replayer. The two
/// designs log different entries (Opt coalesces reordered chunks the Base
/// design logs individually), so agreement here shows the log contents,
/// not the recorder design, determine the replay.
#[test]
fn base_and_opt_replays_are_identical_on_every_workload() {
    let cost = CostModel::splash_default();
    for w in suite(2, 1) {
        let cfg = MachineConfig::splash_default(w.programs.len());
        let specs = RecorderSpec::paper_matrix();
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{}: recording failed: {e}", w.name));

        let mut outcomes: Vec<ReplayOutcome> = Vec::new();
        for (v, spec) in specs.iter().enumerate() {
            let ctx = |what: &str| format!("{} [{}]: {what}", w.name, spec.label());
            let variant = &result.variants[v];
            let patched: Vec<_> = variant
                .logs
                .iter()
                .map(|l| patch(l).unwrap_or_else(|e| panic!("{}: {e}", ctx("patch"))))
                .collect();

            let seq = replay(&w.programs, &patched, w.initial_mem.clone(), &cost)
                .unwrap_or_else(|e| panic!("{}: {e}", ctx("sequential replay")));
            verify(&result.recorded, &seq)
                .unwrap_or_else(|e| panic!("{}: {e}", ctx("sequential verify")));

            let par = replay_parallel(
                &w.programs,
                &patched,
                &variant.ordering,
                w.initial_mem.clone(),
                &cost,
                2,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", ctx("parallel replay")));
            verify(&result.recorded, &par.outcome)
                .unwrap_or_else(|e| panic!("{}: {e}", ctx("parallel verify")));

            assert!(
                seq.mem.contents_eq(&par.outcome.mem),
                "{}",
                ctx("sequential and parallel final memory differ")
            );
            assert_eq!(
                seq.load_traces,
                par.outcome.load_traces,
                "{}",
                ctx("sequential and parallel load values differ")
            );
            outcomes.push(seq);
        }

        // Base vs Opt (and 4K vs INF): identical memory and load values.
        let first = &outcomes[0];
        for (o, spec) in outcomes.iter().zip(&specs).skip(1) {
            assert!(
                first.mem.contents_eq(&o.mem),
                "{}: {} final memory diverges from {}",
                w.name,
                spec.label(),
                specs[0].label()
            );
            assert_eq!(
                first.load_traces,
                o.load_traces,
                "{}: {} load values diverge from {}",
                w.name,
                spec.label(),
                specs[0].label()
            );
        }
    }
}
