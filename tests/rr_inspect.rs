//! Integration tests for the `rr-inspect` CLI: stat/dump over healthy
//! `.rrlog` files and run directories, check over corrupted artifacts
//! (nonzero exit), and trace-sidecar conversion to Chrome/Perfetto JSON.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use relaxreplay::trace::{TraceConfig, TraceLevel};
use rr_isa::{MemImage, ProgramBuilder, Reg};
use rr_sim::{LocalStore, MachineConfig, RecordSession, RecorderSpec, RunStore};

fn rr_inspect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rr-inspect"))
        .args(args)
        .output()
        .expect("rr-inspect spawns")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Records a small two-core run (with tracing, so the trace sidecars are
/// written too) and saves it under `root/<name>`.
fn save_sample_run(root: &Path, name: &str) -> PathBuf {
    let mk = |mine: i64, other: i64| {
        let mut b = ProgramBuilder::new();
        b.load_imm(Reg::new(1), mine);
        b.load_imm(Reg::new(2), other);
        for i in 0..24 {
            b.store(Reg::new(2), Reg::new(1), 8 * i);
            b.load(Reg::new(3), Reg::new(2), 8 * i);
        }
        b.halt();
        b.build()
    };
    let programs = vec![mk(0x1000, 0x2000), mk(0x2000, 0x1000)];
    let cfg = MachineConfig::splash_default(2).with_trace(TraceConfig::level(TraceLevel::Full));
    let result = RecordSession::new(&programs, &MemImage::new())
        .config(&cfg)
        .specs(&RecorderSpec::paper_matrix())
        .run()
        .expect("records");
    LocalStore::new(root)
        .save_run(name, &result)
        .expect("saves");
    root.join(name)
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rr_inspect_it_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn stat_and_dump_describe_a_healthy_log() {
    let root = temp_root("stat");
    let run_dir = save_sample_run(&root, "sample");
    let rrlog = run_dir.join("Base-4K").join("core0.rrlog");
    assert!(rrlog.is_file());

    let out = rr_inspect(&["stat", rrlog.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("chunk map"), "{text}");
    assert!(text.contains("entry histogram"), "{text}");
    assert!(text.contains("reordered density"), "{text}");
    assert!(text.contains("integrity: ok"), "{text}");

    // stat over the whole run directory tabulates every variant's files.
    let out = rr_inspect(&["stat", run_dir.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for label in ["Base-4K", "Opt-4K", "Base-INF", "Opt-INF"] {
        assert!(text.contains(label), "{text}");
    }
    assert!(text.contains("truth.bin"), "{text}");
    assert!(text.contains("trace.jsonl"), "{text}");

    // dump prints entries and honours --limit.
    let out = rr_inspect(&["dump", rrlog.to_str().unwrap(), "--limit", "2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("IntervalFrame") || text.contains("more)"),
        "{text}"
    );
    let full = rr_inspect(&["dump", rrlog.to_str().unwrap()]);
    assert!(
        stdout(&full).lines().count() >= text.lines().count(),
        "unlimited dump is at least as long"
    );
}

#[test]
fn check_passes_clean_runs_and_fails_corrupted_ones() {
    let root = temp_root("check");
    let run_dir = save_sample_run(&root, "sample");

    // Clean: the --save-logs root and the single run dir both pass.
    let out = rr_inspect(&["check", root.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("truth verified"));
    let out = rr_inspect(&["check", run_dir.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Corrupt one payload byte of one log: check must exit nonzero, on the
    // file itself and on the containing directory tree.
    let victim = run_dir.join("Opt-4K").join("core1.rrlog");
    let mut bytes = std::fs::read(&victim).expect("reads");
    assert!(bytes.len() > 16, "log long enough to corrupt");
    let flip = bytes.len() - 6; // inside the last chunk's payload
    bytes[flip] ^= 0x40;
    std::fs::write(&victim, &bytes).expect("writes");

    let out = rr_inspect(&["check", victim.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt file must fail check");
    assert!(stderr(&out).contains("CRC") || stderr(&out).contains("chunk"));
    let out = rr_inspect(&["check", root.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt run must fail a tree check");

    // stat still works on the damaged file but reports the damage.
    let out = rr_inspect(&["stat", victim.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("DAMAGED"), "{}", stdout(&out));

    // Missing paths and bad usage are reported, not panicked.
    let out = rr_inspect(&["stat", "/nonexistent/nope.rrlog"]);
    assert!(!out.status.success());
    let out = rr_inspect(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = rr_inspect(&[]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_subcommand_converts_sidecars_to_perfetto_json() {
    let root = temp_root("trace");
    let run_dir = save_sample_run(&root, "sample");
    let jsonl = run_dir.join("trace.jsonl");
    assert!(jsonl.is_file(), "tracing was on, sidecar must exist");

    let converted = run_dir.join("converted.json");
    let out = rr_inspect(&[
        "trace",
        jsonl.to_str().unwrap(),
        "-o",
        converted.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("Perfetto"), "{}", stdout(&out));

    let chrome = std::fs::read_to_string(&converted).expect("converted output");
    let stats = relaxreplay::trace::validate_chrome_trace(&chrome).expect("valid chrome trace");
    // One track per core plus the coherence track.
    assert_eq!(stats.tracks, 3, "{:?}", stats.track_names);
    assert!(stats.events > 0);

    // Garbage input fails with a line diagnostic, not a panic.
    let bad = root.join("bad.jsonl");
    std::fs::write(&bad, "{\"not\":\"a trace\"}\n").expect("writes");
    let out = rr_inspect(&["trace", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("line 1"), "{}", stderr(&out));
}

#[test]
fn stat_histogram_agrees_with_chunk_map_around_a_corrupt_middle_chunk() {
    let root = temp_root("stat_corrupt");
    let run_dir = save_sample_run(&root, "sample");
    let rrlog = run_dir.join("Base-4K").join("core0.rrlog");

    // Re-encode the log with tiny chunks so it spans many chunks, then
    // flip a payload byte in a middle chunk (keeping the framing intact).
    let log = relaxreplay::wire::read_rrlog(&rrlog).expect("reads");
    let mut bytes = relaxreplay::wire::encode_chunked_with(&log, 16);
    let (_, chunks, _) = relaxreplay::wire::chunk_map(&bytes).expect("maps");
    assert!(
        chunks.len() >= 3,
        "need a middle chunk, got {}",
        chunks.len()
    );
    let mid = &chunks[chunks.len() / 2];
    bytes[mid.offset + 4] ^= 0x01; // first payload byte, after the u32 len
    let corrupt = root.join("corrupt.rrlog");
    std::fs::write(&corrupt, &bytes).expect("writes");

    let out = rr_inspect(&["stat", corrupt.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt file must exit nonzero");
    let text = stdout(&out);
    assert!(text.contains("integrity: DAMAGED"), "{text}");
    assert!(text.contains("MISMATCH"), "{text}");
    assert!(text.contains("skip-index:"), "{text}");
    // v3 chunks are self-contained, so post-damage salvage is exact and
    // nothing is flagged suspect.
    assert!(!text.contains("salvaged_suspect"), "{text}");

    // The chunk-map table's per-chunk entry counts must sum to exactly
    // the histogram's TOTAL: the skip decoder keeps decoding after the
    // damaged chunk instead of stopping at it.
    let mut in_map = false;
    let mut map_sum = 0u64;
    let mut total = None;
    for line in text.lines() {
        if line.starts_with("== chunk map ==") {
            in_map = true;
            continue;
        }
        if line.starts_with("== ") {
            in_map = false;
        }
        let cells: Vec<&str> = line.split_whitespace().collect();
        // Data rows: chunk, offset, payload B, entries, first ts, crc.
        if in_map && cells.len() == 6 {
            if let Ok(entries) = cells[3].parse::<u64>() {
                map_sum += entries;
            }
        }
        if cells.first() == Some(&"TOTAL") {
            total = cells[1].parse::<u64>().ok();
        }
    }
    let total = total.expect("histogram TOTAL row present");
    assert!(map_sum > 0, "chunk map parsed:\n{text}");
    assert_eq!(
        map_sum, total,
        "chunk-map entry sum and histogram TOTAL disagree:\n{text}"
    );

    // Entries from chunks after the damaged one are counted (strictly
    // more than the clean prefix alone).
    let prefix: u64 = chunks[..chunks.len() / 2]
        .iter()
        .map(|c| c.entries as u64)
        .sum();
    assert!(
        total > prefix,
        "skip decoder must keep decoding past the damaged chunk ({total} <= {prefix})"
    );
}

#[test]
fn stat_flags_suspect_salvage_on_pre_v3_streams() {
    let root = temp_root("stat_suspect_v2");
    let run_dir = save_sample_run(&root, "sample");
    let rrlog = run_dir.join("Base-4K").join("core0.rrlog");

    // Same corruption shape as the test above, but encoded as wire v2:
    // chunks share frame-delta state, so entries decoded after a skipped
    // chunk ride on stale context and must be flagged as suspect.
    let log = relaxreplay::wire::read_rrlog(&rrlog).expect("reads");
    let mut bytes = relaxreplay::wire::encode_chunked_with_version(&log, 16, 2);
    let (_, chunks, _) = relaxreplay::wire::chunk_map(&bytes).expect("maps");
    assert!(
        chunks.len() >= 3,
        "need a middle chunk, got {}",
        chunks.len()
    );
    let mid = &chunks[chunks.len() / 2];
    bytes[mid.offset + 4] ^= 0x01;
    let corrupt = root.join("corrupt_v2.rrlog");
    std::fs::write(&corrupt, &bytes).expect("writes");

    let out = rr_inspect(&["stat", corrupt.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt file must exit nonzero");
    let text = stdout(&out);
    assert!(text.contains("integrity: DAMAGED"), "{text}");
    assert!(text.contains("salvaged_suspect:"), "{text}");
}

#[test]
fn dag_reports_stats_and_exports_dot() {
    let root = temp_root("dag");
    let run_dir = save_sample_run(&root, "dagrun");
    let dot_dir = root.join("dot");

    let out = rr_inspect(&[
        "dag",
        run_dir.to_str().unwrap(),
        "--dot",
        dot_dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "dag failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("interval DAG"),
        "missing table title:\n{text}"
    );
    // A freshly saved run carries an `ordering.bin` sidecar, so every
    // variant row must report the recorded partial order.
    assert!(text.contains("partial"), "expected partial order:\n{text}");
    assert!(
        !text.contains(" total "),
        "no variant should fall back:\n{text}"
    );

    // One .dot per variant, each a syntactically plausible digraph.
    let dots: Vec<PathBuf> = std::fs::read_dir(&dot_dir)
        .expect("dot dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert!(!dots.is_empty(), "no .dot files written");
    for p in &dots {
        let s = std::fs::read_to_string(p).expect("readable .dot");
        assert!(s.starts_with("digraph"), "{}: not a digraph", p.display());
        assert!(s.trim_end().ends_with('}'), "{}: unterminated", p.display());
        // The cost-weighted critical path is highlighted: at least one
        // node and (in a multi-interval DAG) one edge carry the red
        // emphasis attributes.
        assert!(
            s.contains("color=red") && s.contains("penwidth=2.0"),
            "{}: critical path not highlighted:\n{s}",
            p.display()
        );
    }

    // Without the sidecar the command still works, in total order.
    std::fs::remove_file(run_dir.join("Base").join("ordering.bin")).ok();
    for entry in std::fs::read_dir(&run_dir).expect("run dir") {
        let p = entry.expect("entry").path();
        if p.is_dir() {
            let _ = std::fs::remove_file(p.join("ordering.bin"));
        }
    }
    let out = rr_inspect(&["dag", run_dir.to_str().unwrap()]);
    assert!(out.status.success(), "dag (total) failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("total"),
        "expected total-order fallback:\n{text}"
    );
    assert!(!text.contains("partial"), "sidecars were removed:\n{text}");
}

#[test]
fn prof_writes_blame_sidecar_and_worker_timeline_for_a_named_workload() {
    let root = temp_root("prof");
    // Record the real `fft` workload so `rr-inspect prof` can regenerate
    // its programs by name and run the profiled engine.
    let w = rr_workloads::by_name("fft", 2, 1).expect("fft exists");
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .config(&MachineConfig::splash_default(2))
        .specs(&RecorderSpec::paper_matrix())
        .run()
        .expect("records");
    LocalStore::new(&root)
        .save_run("fft", &result)
        .expect("saves");

    let out_dir = root.join("prof-out");
    let out = rr_inspect(&[
        "prof",
        root.to_str().unwrap(),
        "--size",
        "1",
        "--workers",
        "2",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "prof failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("critical-path blame"), "{text}");
    for label in ["Base-4K", "Opt-4K", "Base-INF", "Opt-INF"] {
        assert!(text.contains(label), "{text}");
    }

    let prof_json =
        std::fs::read_to_string(out_dir.join("fft.prof.json")).expect("prof sidecar written");
    let stats = relaxreplay::validate_prof_json(&prof_json).expect("valid rr-prof/v1");
    assert_eq!(stats.entries, 4, "one entry per recorder variant");
    assert_eq!(stats.with_engine, 4, "named workload gets engine timelines");

    let chrome =
        std::fs::read_to_string(out_dir.join("fft.prof.trace.json")).expect("timeline written");
    let tstats = relaxreplay::trace::validate_chrome_trace(&chrome).expect("valid chrome trace");
    assert!(tstats.events > 0);
    assert!(
        tstats.track_names.iter().any(|n| n == "worker 0"),
        "{:?}",
        tstats.track_names
    );
}

#[test]
fn prof_still_emits_blame_when_the_workload_name_is_unknown() {
    let root = temp_root("prof_unknown");
    let run_dir = save_sample_run(&root, "sample");

    let out = rr_inspect(&["prof", run_dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "prof must degrade gracefully: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    assert!(
        text.contains("skipping the engine timeline"),
        "unknown workload must be noted:\n{text}"
    );
    assert!(text.contains("critical-path blame"), "{text}");

    // Blame sidecar lands next to the run (the --save-logs root), with no
    // engine sections and no timeline file.
    let prof_json =
        std::fs::read_to_string(root.join("sample.prof.json")).expect("prof sidecar written");
    let stats = relaxreplay::validate_prof_json(&prof_json).expect("valid rr-prof/v1");
    assert_eq!(stats.entries, 4);
    assert_eq!(stats.with_engine, 0);
    assert!(!root.join("sample.prof.trace.json").exists());
}
