//! Observability guarantees of the event-tracing layer, end to end:
//!
//! * tracing is a pure side channel — the recorded `.rrlog` bytes are
//!   byte-identical with tracing off and at full level, on every workload
//!   of the litmus suite;
//! * the Chrome trace export is schema-valid with one track per core (plus
//!   the coherence track);
//! * a forced verification divergence produces a `divergence.md` forensics
//!   report carrying both the record-side and replay-side event windows.

use relaxreplay::trace::{validate_chrome_trace, TraceConfig, TraceLevel};
use relaxreplay::wire::encode_chunked;
use rr_replay::CostModel;
use rr_sim::{replay_and_verify_forensic, RecordSession, RecorderSpec};
use rr_workloads::suite;

const THREADS: usize = 2;
const SIZE: u32 = 1;

#[test]
fn rrlog_bytes_are_identical_with_tracing_on_and_off() {
    let specs = RecorderSpec::paper_matrix();
    for w in suite(THREADS, SIZE) {
        let off = RecordSession::new(&w.programs, &w.initial_mem)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{}: records (trace off): {e}", w.name));
        let on = RecordSession::new(&w.programs, &w.initial_mem)
            .specs(&specs)
            .trace(TraceConfig::full())
            .run()
            .unwrap_or_else(|e| panic!("{}: records (trace full): {e}", w.name));
        assert!(off.trace.is_none(), "{}", w.name);
        assert!(on.trace.is_some(), "{}", w.name);

        for (v, (a, b)) in off.variants.iter().zip(&on.variants).enumerate() {
            assert_eq!(a.logs.len(), b.logs.len());
            for (core, (la, lb)) in a.logs.iter().zip(&b.logs).enumerate() {
                assert_eq!(
                    encode_chunked(la),
                    encode_chunked(lb),
                    "{} variant {v} core {core}: tracing changed the .rrlog bytes",
                    w.name
                );
            }
        }
    }
}

#[test]
fn chrome_trace_has_one_track_per_core_for_a_real_run() {
    let w = suite(THREADS, SIZE).into_iter().next().expect("fft");
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .trace(TraceConfig::level(TraceLevel::Accesses))
        .run()
        .expect("records");
    let trace = result.trace.as_ref().expect("trace present");
    assert!(trace.total_records() > 0);
    let chrome = relaxreplay::trace::chrome_trace(&[(w.name.to_string(), trace)]);
    let stats = validate_chrome_trace(&chrome).expect("schema-valid chrome trace");
    assert_eq!(
        stats.tracks,
        THREADS + 1,
        "one track per core plus coherence: {:?}",
        stats.track_names
    );
    assert!(stats.events > 0);
    for core in 0..THREADS {
        assert!(
            stats
                .track_names
                .iter()
                .any(|n| n == &format!("core {core}")),
            "{:?}",
            stats.track_names
        );
    }
}

#[test]
fn forced_divergence_writes_a_forensics_report_with_both_windows() {
    let w = suite(THREADS, SIZE).into_iter().next().expect("fft");
    // A generous ring so the early counting events (the anchor for load #2)
    // are still resident when the report is written.
    let mut result = RecordSession::new(&w.programs, &w.initial_mem)
        .trace(TraceConfig::full().with_capacity(1 << 20))
        .run()
        .expect("records");

    let report_dir = std::env::temp_dir().join("rr_observability_divergence");
    let _ = std::fs::remove_dir_all(&report_dir);
    std::fs::create_dir_all(&report_dir).expect("mkdir");

    // Sanity: the untampered run verifies and writes no report.
    replay_and_verify_forensic(
        &w.programs,
        &w.initial_mem,
        &result,
        0,
        &CostModel::splash_default(),
        &report_dir,
    )
    .expect("clean run verifies");
    assert!(!report_dir.join("divergence.md").exists());

    // Tamper with the recorded ground truth: claim thread 0's third load
    // observed a different value. Replay now "diverges".
    let trace0 = &mut result.recorded.load_traces[0];
    assert!(trace0.len() > 3, "workload must issue a few loads");
    trace0[2] ^= 0xDEAD;

    let err = replay_and_verify_forensic(
        &w.programs,
        &w.initial_mem,
        &result,
        0,
        &CostModel::splash_default(),
        &report_dir,
    )
    .expect_err("tampered truth must fail verification");
    assert!(
        err.to_string().contains("divergence.md"),
        "error should point at the report: {err}"
    );

    let report = std::fs::read_to_string(report_dir.join("divergence.md")).expect("report written");
    assert!(report.contains("# Replay divergence report"), "{report}");
    assert!(report.contains("## Record timeline"), "{report}");
    assert!(report.contains("## Replay timeline"), "{report}");
    assert!(report.contains(">>> "), "anchor marker present: {report}");
    // The divergent load's index and both values are named.
    assert!(report.contains("load #2"), "{report}");
}
