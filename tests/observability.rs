//! Observability guarantees of the event-tracing layer, end to end:
//!
//! * tracing is a pure side channel — the recorded `.rrlog` bytes are
//!   byte-identical with tracing off and at full level, on every workload
//!   of the litmus suite;
//! * the Chrome trace export is schema-valid with one track per core (plus
//!   the coherence track);
//! * a forced verification divergence produces a `divergence.md` forensics
//!   report carrying both the record-side and replay-side event windows;
//! * the `rr-prof` subsystem is the same kind of pure side channel: the
//!   profiled codec decoder and the profiled replay engine produce results
//!   identical to their unprofiled twins on every litmus shape, and the
//!   `rr-prof/v1` sidecar + per-worker Perfetto timeline both validate.

use relaxreplay::prof::CodecPhases;
use relaxreplay::trace::{validate_chrome_trace, TraceConfig, TraceLevel};
use relaxreplay::wire::{decode_chunked, decode_chunked_profiled, encode_chunked};
use rr_replay::prof::ProfEntry;
use rr_replay::{
    critical_path_blame, patch, prof_json, replay_threaded, replay_threaded_profiled, CostModel,
    IntervalDag,
};
use rr_sim::{replay_and_verify_forensic, RecordSession, RecorderSpec};
use rr_workloads::{litmus_suite, suite};

const THREADS: usize = 2;
const SIZE: u32 = 1;

#[test]
fn rrlog_bytes_are_identical_with_tracing_on_and_off() {
    let specs = RecorderSpec::paper_matrix();
    for w in suite(THREADS, SIZE) {
        let off = RecordSession::new(&w.programs, &w.initial_mem)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{}: records (trace off): {e}", w.name));
        let on = RecordSession::new(&w.programs, &w.initial_mem)
            .specs(&specs)
            .trace(TraceConfig::full())
            .run()
            .unwrap_or_else(|e| panic!("{}: records (trace full): {e}", w.name));
        assert!(off.trace.is_none(), "{}", w.name);
        assert!(on.trace.is_some(), "{}", w.name);

        for (v, (a, b)) in off.variants.iter().zip(&on.variants).enumerate() {
            assert_eq!(a.logs.len(), b.logs.len());
            for (core, (la, lb)) in a.logs.iter().zip(&b.logs).enumerate() {
                assert_eq!(
                    encode_chunked(la),
                    encode_chunked(lb),
                    "{} variant {v} core {core}: tracing changed the .rrlog bytes",
                    w.name
                );
            }
        }
    }
}

/// Profiling must be invisible: for every litmus shape and recorder
/// variant, the profiled codec decoder yields the same entries as the
/// strict decoder (and re-encodes to the same bytes), and the profiled
/// replay engine's outcome matches the unprofiled engine field for field.
#[test]
fn profiling_changes_no_rrlog_bytes_and_no_replay_outcomes() {
    let specs = RecorderSpec::paper_matrix();
    let cost = CostModel::splash_default();
    for w in litmus_suite() {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{}: records: {e}", w.name));
        for (v, variant) in result.variants.iter().enumerate() {
            let at = format!("{} variant {v}", w.name);

            // Codec: profiled decode == strict decode, byte-identical
            // round trip, and the phase accounting is populated.
            let mut phases = CodecPhases::default();
            for log in &variant.logs {
                let bytes = encode_chunked(log);
                let plain = decode_chunked(&bytes).unwrap_or_else(|e| panic!("{at}: {e}"));
                let profiled = decode_chunked_profiled(&bytes, &mut phases)
                    .unwrap_or_else(|e| panic!("{at}: {e}"));
                assert_eq!(plain, profiled, "{at}: profiled decode differs");
                assert_eq!(
                    encode_chunked(&profiled),
                    bytes,
                    "{at}: profiled decode does not round-trip"
                );
            }
            assert!(phases.chunks > 0 && phases.payload_bytes > 0, "{at}");

            // Engine: profiled replay == unprofiled replay, field for field.
            let patched: Vec<_> = variant
                .logs
                .iter()
                .map(patch)
                .collect::<Result<_, _>>()
                .unwrap_or_else(|e| panic!("{at}: patch: {e}"));
            let plain = replay_threaded(
                &w.programs,
                &patched,
                &variant.ordering,
                w.initial_mem.clone(),
                &cost,
                2,
            )
            .unwrap_or_else(|e| panic!("{at}: replay: {e}"));
            let (profiled, engine) = replay_threaded_profiled(
                &w.programs,
                &patched,
                Some(&variant.ordering),
                w.initial_mem.clone(),
                &cost,
                2,
            )
            .unwrap_or_else(|e| panic!("{at}: profiled replay: {e}"));
            assert!(
                plain.mem.contents_eq(&profiled.mem),
                "{at}: profiled replay changed final memory"
            );
            assert_eq!(plain.load_traces, profiled.load_traces, "{at}");
            assert_eq!(plain.events, profiled.events, "{at}");
            assert_eq!(plain.user_cycles, profiled.user_cycles, "{at}");
            assert_eq!(plain.os_cycles, profiled.os_cycles, "{at}");

            // The engine profile accounts for every executed interval.
            let executed: u64 = engine.workers.iter().map(|p| p.executed).sum();
            assert_eq!(executed, engine.nodes as u64, "{at}");
            assert!(engine.first_error_ns.is_none(), "{at}");
        }
    }
}

/// The `rr-prof/v1` sidecar built from real litmus runs validates, and the
/// per-worker engine timeline is a schema-valid Chrome trace with one
/// track per pool worker.
#[test]
fn prof_sidecar_and_worker_timeline_validate() {
    let cost = CostModel::splash_default();
    let mut entries = Vec::new();
    let mut timelines = Vec::new();
    for w in litmus_suite() {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .run()
            .unwrap_or_else(|e| panic!("{}: records: {e}", w.name));
        let variant = &result.variants[0];
        let patched: Vec<_> = variant
            .logs
            .iter()
            .map(patch)
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| panic!("{}: patch: {e}", w.name));
        let dag = IntervalDag::partial_order(variant.logs.len(), &patched, &variant.ordering)
            .unwrap_or_else(|e| panic!("{}: dag: {e}", w.name));
        let blame = critical_path_blame(&dag, &cost);
        assert!(blame.coverage_pct() >= 95.0, "{}", w.name);
        let (_, engine) = replay_threaded_profiled(
            &w.programs,
            &patched,
            Some(&variant.ordering),
            w.initial_mem.clone(),
            &cost,
            2,
        )
        .unwrap_or_else(|e| panic!("{}: profiled replay: {e}", w.name));
        timelines.push((w.name.to_string(), engine.clone()));
        entries.push(ProfEntry {
            run: w.name.to_string(),
            variant: variant.spec.label(),
            blame,
            engine: Some(engine),
        });
    }

    let json = prof_json(&entries);
    let stats = relaxreplay::validate_prof_json(&json).expect("valid rr-prof/v1 sidecar");
    assert_eq!(stats.entries, entries.len());
    assert_eq!(stats.with_engine, entries.len());
    assert!(stats.path_intervals > 0);

    let refs: Vec<(String, &relaxreplay::prof::EngineProf)> =
        timelines.iter().map(|(n, p)| (n.clone(), p)).collect();
    let chrome = relaxreplay::engine_chrome_trace(&refs);
    let stats = validate_chrome_trace(&chrome).expect("valid chrome trace");
    assert!(stats.events > 0);
    // One track per pool worker per run; every litmus run used 2 workers.
    for worker in 0..2 {
        assert!(
            stats
                .track_names
                .iter()
                .any(|n| n == &format!("worker {worker}")),
            "{:?}",
            stats.track_names
        );
    }
}

#[test]
fn chrome_trace_has_one_track_per_core_for_a_real_run() {
    let w = suite(THREADS, SIZE).into_iter().next().expect("fft");
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .trace(TraceConfig::level(TraceLevel::Accesses))
        .run()
        .expect("records");
    let trace = result.trace.as_ref().expect("trace present");
    assert!(trace.total_records() > 0);
    let chrome = relaxreplay::trace::chrome_trace(&[(w.name.to_string(), trace)]);
    let stats = validate_chrome_trace(&chrome).expect("schema-valid chrome trace");
    assert_eq!(
        stats.tracks,
        THREADS + 1,
        "one track per core plus coherence: {:?}",
        stats.track_names
    );
    assert!(stats.events > 0);
    for core in 0..THREADS {
        assert!(
            stats
                .track_names
                .iter()
                .any(|n| n == &format!("core {core}")),
            "{:?}",
            stats.track_names
        );
    }
}

#[test]
fn forced_divergence_writes_a_forensics_report_with_both_windows() {
    let w = suite(THREADS, SIZE).into_iter().next().expect("fft");
    // A generous ring so the early counting events (the anchor for load #2)
    // are still resident when the report is written.
    let mut result = RecordSession::new(&w.programs, &w.initial_mem)
        .trace(TraceConfig::full().with_capacity(1 << 20))
        .run()
        .expect("records");

    let report_dir = std::env::temp_dir().join("rr_observability_divergence");
    let _ = std::fs::remove_dir_all(&report_dir);
    std::fs::create_dir_all(&report_dir).expect("mkdir");

    // Sanity: the untampered run verifies and writes no report.
    replay_and_verify_forensic(
        &w.programs,
        &w.initial_mem,
        &result,
        0,
        &CostModel::splash_default(),
        &report_dir,
    )
    .expect("clean run verifies");
    assert!(!report_dir.join("divergence.md").exists());

    // Tamper with the recorded ground truth: claim thread 0's third load
    // observed a different value. Replay now "diverges".
    let trace0 = &mut result.recorded.load_traces[0];
    assert!(trace0.len() > 3, "workload must issue a few loads");
    trace0[2] ^= 0xDEAD;

    let err = replay_and_verify_forensic(
        &w.programs,
        &w.initial_mem,
        &result,
        0,
        &CostModel::splash_default(),
        &report_dir,
    )
    .expect_err("tampered truth must fail verification");
    assert!(
        err.to_string().contains("divergence.md"),
        "error should point at the report: {err}"
    );

    let report = std::fs::read_to_string(report_dir.join("divergence.md")).expect("report written");
    assert!(report.contains("# Replay divergence report"), "{report}");
    assert!(report.contains("## Record timeline"), "{report}");
    assert!(report.contains("## Replay timeline"), "{report}");
    assert!(report.contains(">>> "), "anchor marker present: {report}");
    // The divergent load's index and both values are named.
    assert!(report.contains("load #2"), "{report}");
}
