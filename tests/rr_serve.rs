//! End-to-end integration of the experiments tooling with the `rr-serve`
//! log service: `rr-inspect stat/check/dag` over `rr://` store URLs, the
//! `rr-check verify` store-replay gate, and byte-identity between a run
//! saved to a local `--save-logs` directory and the same run streamed
//! through the service.

use std::path::PathBuf;
use std::process::{Command, Output};

use rr_serve::{serve, RemoteStore, ServerConfig, ServerHandle};
use rr_sim::{LocalStore, MachineConfig, RecordSession, RecorderSpec, RunResult, RunStore};

fn rr_inspect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rr-inspect"))
        .args(args)
        .output()
        .expect("rr-inspect spawns")
}

fn rr_check(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rr-check"))
        .args(args)
        .output()
        .expect("rr-check spawns")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rr_serve_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn start_server(tag: &str) -> ServerHandle {
    serve("127.0.0.1:0", ServerConfig::new(temp_root(tag))).expect("server starts")
}

/// Records the `sb` litmus workload under the full paper recorder matrix.
/// Litmus shapes regenerate by name alone, so `rr-check verify` can
/// rebuild the programs when replaying the saved run.
fn record_sb() -> RunResult {
    let w = rr_workloads::by_name("sb", 2, 1).expect("sb litmus workload");
    RecordSession::new(&w.programs, &w.initial_mem)
        .config(&MachineConfig::splash_default(w.programs.len()))
        .specs(&RecorderSpec::paper_matrix())
        .run()
        .expect("records")
}

#[test]
fn inspect_stat_check_and_dag_operate_on_remote_stores() {
    let server = start_server("inspect");
    let url = server.url();
    RemoteStore::new(server.addr().to_string())
        .save_run("sb", &record_sb())
        .expect("remote save");

    // stat on the bare store URL enumerates runs and reports dedup.
    let out = rr_inspect(&["stat", &url]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("sb:"), "{text}");
    for label in ["Base-4K", "Opt-4K", "Base-INF", "Opt-INF"] {
        assert!(text.contains(label), "{text}");
    }
    assert!(text.contains("dedup"), "{text}");

    // check decodes every log and validates the truth sidecar remotely.
    let out = rr_inspect(&["check", &format!("{url}/sb")]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("truth verified"), "{}", stdout(&out));

    // dag builds the interval DAG from remotely fetched logs; fresh runs
    // carry ordering sidecars, so the recorded partial order is used.
    let out = rr_inspect(&["dag", &format!("{url}/sb")]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("interval DAG"), "{text}");
    assert!(text.contains("partial"), "{text}");

    // Unknown runs surface as typed errors with exit 1, not panics.
    let out = rr_inspect(&["check", &format!("{url}/nope")]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown-run"), "{}", stderr(&out));

    server.shutdown();
}

#[test]
fn rr_check_verify_replays_a_remote_store_against_ground_truth() {
    let server = start_server("verify");
    let url = server.url();
    RemoteStore::new(server.addr().to_string())
        .save_run("sb", &record_sb())
        .expect("remote save");

    let out = rr_check(&["verify", &format!("{url}/sb")]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("verified against the recorded ground truth"),
        "{}",
        stdout(&out)
    );

    // A dead server is a typed transport error, not a hang or panic.
    let dead = format!("rr://{}/sb", server.addr());
    server.shutdown();
    let out = rr_check(&["verify", &dead]);
    assert!(!out.status.success());
}

#[test]
fn remote_save_round_trips_byte_identical_to_the_local_store() {
    let result = record_sb();

    let local_root = temp_root("local_twin");
    let local = LocalStore::new(&local_root);
    let local_bytes = local.save_run("sb", &result).expect("local save");

    let server = start_server("remote_twin");
    let remote = RemoteStore::new(server.addr().to_string());
    let remote_bytes = remote.save_run("sb", &result).expect("remote save");
    assert_eq!(
        local_bytes, remote_bytes,
        "both stores must account the same logical .rrlog bytes"
    );

    let a = local.load_run("sb").expect("local load");
    let b = remote.load_run("sb").expect("remote load");
    assert_eq!(a.variants.len(), b.variants.len());
    for (va, vb) in a.variants.iter().zip(&b.variants) {
        assert_eq!(va.label, vb.label);
        assert_eq!(va.logs, vb.logs, "{}: decoded logs must match", va.label);
        assert_eq!(va.ordering, vb.ordering, "{}: ordering sidecar", va.label);
    }
    assert!(a.recorded.final_mem.contents_eq(&b.recorded.final_mem));
    assert_eq!(a.recorded.load_traces, b.recorded.load_traces);

    server.shutdown();
}
