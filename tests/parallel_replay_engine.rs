//! Tier-1 gate for the multithreaded interval-DAG replay engine: at every
//! worker count the threaded executor must produce exactly the outcome the
//! sequential DAG executor produces — across the litmus shapes and the
//! full concurrent data-structure corpus, over 64 seeded schedules each,
//! for both recorder designs (Base-4K / Opt-4K), and under every rr-check
//! pressure mode. Corrupt interval orderings (cycles, short orderings,
//! out-of-range cores) must surface as typed [`ReplayError`]s — never a
//! hang, panic, or silent wrong answer. A final differential test pins the
//! sequential DAG executor to the retained legacy replay path.

use rr_replay::{
    patch, replay, replay_reference, replay_threaded, CostModel, IntervalDag, PatchedLog,
    ReplayError,
};
use rr_sim::{
    explore_sweep_with, ExploreReport, ExploreSpec, MachineConfig, PressureMode, RecordSession,
    RecorderSpec,
};
use rr_workloads::{corpus_suite, litmus_suite, Workload};

/// Worker counts the threaded engine is exercised at (the zero-divergence
/// gate of the issue: 1/2/4/8).
const REPLAY_WORKERS: [usize; 4] = [1, 2, 4, 8];

const SEEDS: u64 = 64;

fn sweep(w: &Workload, specs: &[ExploreSpec]) -> ExploreReport {
    let machine = MachineConfig::splash_default(w.programs.len());
    explore_sweep_with(
        &w.programs,
        &w.initial_mem,
        &machine,
        specs,
        0,
        &REPLAY_WORKERS,
    )
    .unwrap_or_else(|e| panic!("{}: sweep failed: {e}", w.name))
}

fn assert_no_divergence(w: &Workload, report: &ExploreReport) {
    for o in &report.outcomes {
        assert!(
            o.divergence.is_none(),
            "{}/{}: threaded replay diverged: {}",
            w.name,
            o.name,
            o.divergence.as_deref().unwrap_or("")
        );
    }
}

/// Litmus shapes × 64 seeded schedules × Base/Opt, threaded at 1/2/4/8
/// workers joining the sequential cross-check.
#[test]
fn litmus_shapes_verify_at_every_worker_count() {
    let specs: Vec<ExploreSpec> = (0..SEEDS)
        .map(|s| ExploreSpec::for_seed(s, PressureMode::None))
        .collect();
    for w in litmus_suite() {
        let report = sweep(&w, &specs);
        assert_eq!(report.outcomes.len(), SEEDS as usize, "{}", w.name);
        assert_no_divergence(&w, &report);
    }
}

/// All seven corpus shapes × 64 seeded schedules × Base/Opt, threaded at
/// 1/2/4/8 workers.
#[test]
fn corpus_shapes_verify_at_every_worker_count() {
    let specs: Vec<ExploreSpec> = (0..SEEDS)
        .map(|s| ExploreSpec::for_seed(s, PressureMode::None))
        .collect();
    let suite = corpus_suite();
    assert_eq!(suite.len(), 7, "corpus catalog grew — extend this gate");
    for w in suite {
        let report = sweep(&w, &specs);
        assert_no_divergence(&w, &report);
    }
}

/// Every rr-check pressure mode (force-close, TRAQ overflow, signature
/// aliasing, CISN wraparound, sink faults) with the threaded engine in
/// the cross-check: recorder stress must not open an engine-specific
/// divergence.
#[test]
fn pressure_modes_verify_threaded() {
    let targets = [litmus_suite().remove(1), corpus_suite().remove(0)]; // mp, spinlock
    for w in &targets {
        for pressure in PressureMode::ALL {
            let specs: Vec<ExploreSpec> =
                (0..8).map(|s| ExploreSpec::for_seed(s, pressure)).collect();
            let report = sweep(w, &specs);
            assert_no_divergence(w, &report);
        }
    }
}

/// Records one Opt-4K run and hands back everything a corruption fixture
/// needs: programs, patched logs, and the genuine interval ordering.
fn recorded_fixture() -> (
    Vec<rr_isa::Program>,
    rr_isa::MemImage,
    Vec<PatchedLog>,
    Vec<relaxreplay::IntervalOrdering>,
) {
    let w = litmus_suite().remove(0); // sb: 2 cores, plenty of conflicts
    let specs = vec![RecorderSpec {
        design: relaxreplay::Design::Opt,
        max_interval: Some(4096),
    }];
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .config(&MachineConfig::splash_default(w.programs.len()))
        .specs(&specs)
        .run()
        .expect("records");
    let v = &result.variants[0];
    let patched: Vec<PatchedLog> = v.logs.iter().map(patch).collect::<Result<_, _>>().unwrap();
    (w.programs, w.initial_mem, patched, v.ordering.clone())
}

/// A mutual cross-core dependency is a cycle; both the DAG builder and
/// the threaded engine must reject it with the typed error, not hang.
#[test]
fn cyclic_ordering_is_a_typed_error() {
    let (programs, mem, patched, mut ordering) = recorded_fixture();
    let last0 = ordering[0].preds.len() - 1;
    let last1 = ordering[1].preds.len() - 1;
    ordering[0].preds[last0].push((rr_mem::CoreId::new(1), last1 as u64));
    ordering[1].preds[last1].push((rr_mem::CoreId::new(0), last0 as u64));

    let dag = IntervalDag::partial_order(programs.len(), &patched, &ordering);
    assert!(
        matches!(dag, Err(ReplayError::CyclicOrdering { .. })),
        "DAG builder accepted a cycle: {dag:?}"
    );
    for workers in REPLAY_WORKERS {
        let err = replay_threaded(
            &programs,
            &patched,
            &ordering,
            mem.clone(),
            &CostModel::splash_default(),
            workers,
        )
        .expect_err("a cyclic ordering cannot replay");
        assert!(
            matches!(err, ReplayError::CyclicOrdering { .. }),
            "w={workers}: wrong error: {err}"
        );
    }
}

/// An ordering shorter than its log's interval count (a truncated
/// `ordering.bin`) must fail loudly with the mismatch error.
#[test]
fn short_ordering_is_a_typed_error() {
    let (programs, mem, patched, mut ordering) = recorded_fixture();
    ordering[0].timestamps.pop();
    ordering[0].barriers.pop();
    ordering[0].preds.pop();

    let err = replay_threaded(
        &programs,
        &patched,
        &ordering,
        mem,
        &CostModel::splash_default(),
        2,
    )
    .expect_err("a short ordering cannot replay");
    assert!(
        matches!(err, ReplayError::OrderingMismatch { core: 0, .. }),
        "wrong error: {err}"
    );
}

/// A predecessor edge naming a core outside the thread set (corrupt or
/// foreign sidecar) must fail with the range error.
#[test]
fn out_of_range_pred_core_is_a_typed_error() {
    let (programs, mem, patched, mut ordering) = recorded_fixture();
    ordering[1].preds[0].push((rr_mem::CoreId::new(7), 0));

    let err = replay_threaded(
        &programs,
        &patched,
        &ordering,
        mem,
        &CostModel::splash_default(),
        4,
    )
    .expect_err("an out-of-range core cannot replay");
    assert!(
        matches!(err, ReplayError::CoreOutOfRange { .. }),
        "wrong error: {err}"
    );
}

/// The sequential executor is the DAG engine at one worker; the legacy
/// split-sort-execute path is retained purely as a differential baseline.
/// They must agree on every litmus shape — load values, event counts, and
/// modeled cycles alike.
#[test]
fn dag_executor_matches_the_legacy_reference_path() {
    let cost = CostModel::splash_default();
    let specs = RecorderSpec::paper_matrix();
    for w in litmus_suite() {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&MachineConfig::splash_default(w.programs.len()))
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{}: records: {e}", w.name));
        for v in &result.variants {
            let patched: Vec<PatchedLog> =
                v.logs.iter().map(patch).collect::<Result<_, _>>().unwrap();
            let new = replay(&w.programs, &patched, w.initial_mem.clone(), &cost)
                .unwrap_or_else(|e| panic!("{}: DAG replay: {e}", w.name));
            let old = replay_reference(&w.programs, &patched, w.initial_mem.clone(), &cost)
                .unwrap_or_else(|e| panic!("{}: legacy replay: {e}", w.name));
            assert_eq!(new.load_traces, old.load_traces, "{}", w.name);
            assert_eq!(new.events, old.events, "{}", w.name);
            assert_eq!(new.user_cycles, old.user_cycles, "{}", w.name);
            assert_eq!(new.os_cycles, old.os_cycles, "{}", w.name);
            rr_replay::verify(&result.recorded, &new)
                .unwrap_or_else(|e| panic!("{}: DAG verify: {e}", w.name));
            rr_replay::verify(&result.recorded, &old)
                .unwrap_or_else(|e| panic!("{}: legacy verify: {e}", w.name));
        }
    }
}
