//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! and [`Rng::gen_bool`]. The generator is a SplitMix64 / xorshift hybrid —
//! deterministic, seedable, and statistically good enough for workload
//! generation and randomized tests. Streams differ from upstream `rand`,
//! which only matters if bit-exact compatibility with externally generated
//! traces were required (it is not: every consumer in this workspace is
//! self-consistent).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high)`. `high_incl` widens to `[low, high]`.
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self, high_incl: bool) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self, high_incl: bool) -> Self {
                let lo = low as i128;
                let hi = high as i128 + i128::from(high_incl);
                assert!(lo < hi, "gen_range: empty range");
                let width = (hi - lo) as u128;
                // Modulo bias is < 2^-64 * width; irrelevant at these widths.
                let r = u128::from(rng.next_u64()) % width;
                (lo + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 uniform mantissa bits, exactly as rand does it.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64-seeded
    /// xoshiro256**-lite; not the upstream `StdRng` algorithm).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 2],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the state words.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let a = next();
            let b = next();
            StdRng {
                s: [a | 1, b], // never the all-zero state
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift128+ step.
            let [mut s0, s1] = self.s;
            let out = s0.wrapping_add(s1);
            s0 ^= s0 << 23;
            self.s = [s1, s0 ^ s1 ^ (s0 >> 18) ^ (s1 >> 5)];
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u8..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_hits_both_sides() {
        let mut r = StdRng::seed_from_u64(2);
        let heads = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads), "suspicious bias: {heads}");
    }
}
