//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length, inclusive.
    pub min: usize,
    /// Maximum length, inclusive.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
