//! Strategies: deterministic value generators composed with combinators.

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Object-safe core (`new_value`) plus `Sized` combinators, so strategies
/// can be boxed for heterogeneous unions (`prop_oneof!`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a second strategy from it, and draws from
    /// that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards values failing `f` (retrying; panics if the filter rejects
    /// essentially everything).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// As in upstream proptest, a `Vec` of strategies generates a `Vec` with
/// one value drawn from each element, in order.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.whence
        );
    }
}

/// Uniform choice among boxed alternatives — the engine behind
/// `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

/// Values `any::<T>()` can produce.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                (lo + (u128::from(rng.next_u64()) % ((hi - lo) as u128)) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128 + 1;
                assert!(lo < hi, "empty range strategy");
                (lo + (u128::from(rng.next_u64()) % ((hi - lo) as u128)) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among strategies for one value type.
///
/// Arms may be heterogeneous strategy types; each is boxed.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body (returns
/// `Err(TestCaseError)` rather than panicking, so inputs are reported).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with a diagnostic rendering both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{} == {} failed: left = {:?}, right = {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with a diagnostic rendering both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "{} != {} failed: both = {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `ProptestConfig.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: one test item per recursion.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::test_runner::TestRng::for_test(test_name);
            for case in 0..config.cases {
                let mut inputs: Vec<String> = Vec::new();
                $(
                    let value = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                    inputs.push(format!("{} = {:?}", stringify!($pat), &value));
                    let $pat = value;
                )+
                let mut report =
                    $crate::test_runner::PanicReport::new(test_name, case, &inputs);
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) | Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        report.disarm();
                        drop(report);
                    }
                    Err(e) => {
                        drop(report);
                        panic!(
                            "proptest case failed: {test_name}, case {case}: {e}\n  inputs:\n    {}",
                            inputs.join("\n    ")
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}
