//! Option strategies (`proptest::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
#[derive(Clone, Copy, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Bias toward Some, as upstream does, so inner values get exercised.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

/// `Some` of a value from `inner` (3 in 4), or `None` (1 in 4).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
