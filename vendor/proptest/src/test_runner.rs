//! The runner side of the shim: configuration, error type, and the
//! deterministic RNG that drives every strategy.

use std::fmt;

/// Configuration accepted by `#![proptest_config(..)]`.
///
/// Only `cases` is honoured; the other fields exist so upstream-style
/// struct-update syntax (`.. ProptestConfig::default()`) keeps compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; local rejects are not implemented.
    pub max_local_rejects: u32,
    /// Accepted for compatibility; global rejects are not implemented.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
            max_local_rejects: 65_536,
            max_global_rejects: 1024,
        }
    }
}

/// Why a test case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The case asked to be discarded (filter miss).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message (mirrors upstream).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason (mirrors upstream).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// The `Result` type property bodies produce (so `?` works inside them).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator driving all strategies.
///
/// Seeded from the property's module path so every test gets an
/// independent, run-to-run stable stream. `PROPTEST_RNG_SEED` perturbs
/// all streams at once (useful for widening coverage in CI).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, folded with the optional env seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let env = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0u64);
        TestRng {
            state: h ^ env.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }
}

/// Prints the failing case's inputs if the body panics (proptest proper
/// would shrink; we settle for a faithful report).
pub struct PanicReport {
    rendered: String,
    armed: bool,
}

impl PanicReport {
    /// Arms a report for the given case.
    #[must_use]
    pub fn new(test: &str, case: u32, inputs: &[String]) -> Self {
        PanicReport {
            rendered: format!(
                "proptest case failed: {test}, case {case}\n  inputs:\n    {}\n  (deterministic; re-run reproduces it — set PROPTEST_RNG_SEED to vary)",
                inputs.join("\n    ")
            ),
            armed: true,
        }
    }

    /// Disarms the report: the case passed.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for PanicReport {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!("{}", self.rendered);
        }
    }
}
