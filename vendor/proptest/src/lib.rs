//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of proptest's API its tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter`, `any::<T>()` for the
//! primitive types, ranges and tuples as strategies, [`collection::vec`],
//! [`option::of`], `Just`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs and the
//!   generator seed instead of minimizing. Re-running reproduces it
//!   exactly (the RNG is seeded from the test's module path, so streams
//!   are stable run-to-run and independent across tests).
//! * **Case count** comes from `ProptestConfig.cases`, overridable with
//!   the `PROPTEST_CASES` environment variable, exactly like upstream.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
