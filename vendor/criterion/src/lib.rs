//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the benchmark API surface its benches use: `Criterion` with
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a warm-up period estimates the
//! iteration rate, then `sample_size` samples are timed and the
//! min / median / max per-iteration times are printed in criterion's
//! familiar `time: [low mid high]` shape. No statistical regression
//! analysis, no HTML reports — numbers you can read in CI and compare by
//! hand, which is all the workspace needs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for `use criterion::black_box`.
pub use std::hint::black_box;

/// A named benchmark target, possibly parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Runs the measured closure and accumulates timing samples.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Per-iteration nanoseconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, calling it as many times as the configuration asks.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: estimate the iteration rate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Split the measurement budget across samples; at least 1 iter each.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter).ceil() as u64).max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples.push(ns);
        }
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up period before measurement.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{label:<40} (no samples — did the closure call iter?)");
            return;
        }
        b.samples.sort_by(|a, c| a.total_cmp(c));
        let min = b.samples[0];
        let med = b.samples[b.samples.len() / 2];
        let max = b.samples[b.samples.len() - 1];
        println!(
            "{label:<40} time: [{} {} {}]",
            human(min),
            human(med),
            human(max)
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Starts a named group of related benchmarks; each bench is labelled
    /// `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Criterion prints its summary as it goes; nothing to finalize.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks (`Criterion::benchmark_group`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
    }

    /// Benchmarks `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
    }

    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Nothing buffered; results were printed as they ran.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
