//! Property tests of the `.rrlog` wire format: byte-identical round
//! trips, CRC detection of arbitrary single-byte corruption (reported
//! with the failing chunk's index), and prefix recovery under arbitrary
//! truncation.

use proptest::prelude::*;
use relaxreplay::wire::{self, WireError};
use relaxreplay::{IntervalLog, LogEntry, LogSource};
use rr_mem::CoreId;

fn entry_strategy() -> impl Strategy<Value = LogEntry> {
    prop_oneof![
        any::<u32>().prop_map(|instrs| LogEntry::InorderBlock { instrs }),
        any::<u64>().prop_map(|value| LogEntry::ReorderedLoad { value }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(addr, value, offset)| {
            LogEntry::ReorderedStore {
                addr,
                value,
                offset,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(any::<u64>()),
            any::<u32>()
        )
            .prop_map(|(loaded, addr, stored, offset)| LogEntry::ReorderedRmw {
                loaded,
                addr,
                stored,
                offset,
            }),
        (any::<u16>(), any::<u64>())
            .prop_map(|(cisn, timestamp)| LogEntry::IntervalFrame { cisn, timestamp }),
    ]
}

/// Payload spans `(start, len)` of every chunk in an encoded stream,
/// reconstructed from the length prefixes.
fn chunk_payload_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 7; // magic + version + core id
    while pos < bytes.len() {
        let len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("length prefix")) as usize;
        spans.push((pos + 4, len));
        pos += 4 + len + 4; // length + payload + crc
    }
    spans
}

proptest! {
    #[test]
    fn wire_round_trip_is_byte_identical(
        core in 0u8..32,
        entries in proptest::collection::vec(entry_strategy(), 0..300),
    ) {
        let log = IntervalLog {
            core: CoreId::new(core),
            entries,
        };
        let bytes = wire::encode_chunked(&log);
        let decoded = wire::decode_chunked(&bytes).expect("round trip");
        prop_assert_eq!(&decoded, &log);
        // Re-encoding the decoded log reproduces the exact byte stream.
        prop_assert_eq!(wire::encode_chunked(&decoded), bytes);
    }

    #[test]
    fn any_payload_byte_flip_is_caught_with_its_chunk_index(
        entries in proptest::collection::vec(entry_strategy(), 1..120),
        flip_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let log = IntervalLog {
            core: CoreId::new(1),
            entries,
        };
        // Small chunks so multi-chunk streams are the common case.
        let bytes = wire::encode_chunked_with(&log, 32);
        let spans = chunk_payload_spans(&bytes);
        let payload_total: usize = spans.iter().map(|(_, len)| len).sum();
        let mut remaining = (flip_pick as usize) % payload_total;
        let (damaged_chunk, byte_pos) = spans
            .iter()
            .enumerate()
            .find_map(|(i, &(start, len))| {
                if remaining < len {
                    Some((i, start + remaining))
                } else {
                    remaining -= len;
                    None
                }
            })
            .expect("pick lands inside some chunk");

        let mut bad = bytes.clone();
        bad[byte_pos] ^= 1 << bit;
        match wire::decode_chunked(&bad) {
            Err(WireError::CrcMismatch { chunk, .. }) => {
                prop_assert_eq!(chunk, damaged_chunk);
            }
            other => prop_assert!(false, "expected a CRC mismatch, got {:?}", other),
        }
        // Every chunk before the damaged one still decodes intact, and the
        // recovered entries are a prefix of the original log.
        let (prefix, err) = wire::decode_chunked_recover(&bad);
        prop_assert!(err.is_some());
        prop_assert!(
            log.entries.starts_with(&prefix.entries),
            "recovered {} entries are not a prefix of the original {}",
            prefix.entries.len(),
            log.entries.len()
        );
    }

    #[test]
    fn truncation_at_any_byte_recovers_a_clean_prefix(
        entries in proptest::collection::vec(entry_strategy(), 0..120),
        cut_pick in any::<u64>(),
    ) {
        let log = IntervalLog {
            core: CoreId::new(3),
            entries,
        };
        let bytes = wire::encode_chunked_with(&log, 32);
        let cut = (cut_pick as usize) % (bytes.len() + 1);
        // Never panics; whatever decodes is a prefix of the original.
        let (prefix, _err) = wire::decode_chunked_recover(&bytes[..cut]);
        prop_assert!(log.entries.starts_with(&prefix.entries));
        if cut == bytes.len() {
            prop_assert_eq!(prefix.entries.len(), log.entries.len());
        }
    }

    /// The batched fast-path decoder is bit-identical to the retained
    /// entry-at-a-time reference decoder on arbitrary clean logs at
    /// arbitrary chunk sizes.
    #[test]
    fn fast_decoder_matches_reference_on_arbitrary_logs(
        core in 0u8..32,
        entries in proptest::collection::vec(entry_strategy(), 0..300),
        chunk_bytes in 1usize..128,
    ) {
        let log = IntervalLog {
            core: CoreId::new(core),
            entries,
        };
        let bytes = wire::encode_chunked_with(&log, chunk_bytes);
        let fast = wire::decode_chunked(&bytes);
        let reference = wire::decode_chunked_reference(&bytes);
        prop_assert_eq!(fast, reference);
    }

    /// ... and on arbitrarily damaged streams: a bit flip anywhere (header,
    /// framing, payload, CRC) or a truncation at any byte produces the
    /// exact same `Result` — same recovered value or same typed error.
    #[test]
    fn fast_decoder_matches_reference_under_arbitrary_damage(
        entries in proptest::collection::vec(entry_strategy(), 1..120),
        flip_pick in any::<u64>(),
        bit in 0u8..8,
        cut_pick in any::<u64>(),
    ) {
        let log = IntervalLog {
            core: CoreId::new(2),
            entries,
        };
        let bytes = wire::encode_chunked_with(&log, 32);
        let mut bad = bytes.clone();
        bad[(flip_pick as usize) % bytes.len()] ^= 1 << bit;
        prop_assert_eq!(
            wire::decode_chunked(&bad),
            wire::decode_chunked_reference(&bad)
        );
        let cut = (cut_pick as usize) % (bytes.len() + 1);
        prop_assert_eq!(
            wire::decode_chunked(&bytes[..cut]),
            wire::decode_chunked_reference(&bytes[..cut])
        );
        // The lenient skip decoder agrees with the chunk map on how many
        // entries the damaged stream still holds, and current-version
        // (chunk-independent) streams never yield suspect entries.
        let salvage = wire::decode_chunked_skip(&bad);
        prop_assert_eq!(salvage.suspect, 0, "v3 chunks re-anchor");
        if let Ok((_, map, _)) = wire::chunk_map(&bad) {
            prop_assert_eq!(
                salvage.log.entries.len(),
                map.iter().map(|c| c.entries).sum::<usize>()
            );
        }
    }

    #[test]
    fn flat_and_chunked_decode_agree(
        core in 0u8..32,
        entries in proptest::collection::vec(entry_strategy(), 0..150),
    ) {
        let log = IntervalLog {
            core: CoreId::new(core),
            entries,
        };
        let via_flat = IntervalLog::decode_flat(&log.encode_flat()).expect("flat codec");
        let via_wire = wire::decode_chunked(&wire::encode_chunked(&log)).expect("wire codec");
        prop_assert_eq!(&via_flat, &log);
        prop_assert_eq!(&via_wire, &log);
    }

    /// Max-length-varint stress: entries whose every field is at or near
    /// the u64/u32 ceiling produce 5–10-byte varints back to back, so at
    /// chunk sizes 1..64 the SWAR word loop hits varints spanning word
    /// *and* chunk boundaries plus truncated final words; the fast decoder
    /// must agree with the reference bit-for-bit, errors included.
    #[test]
    fn swar_decoder_matches_reference_on_maximal_varints(
        lanes in proptest::collection::vec(any::<u8>(), 1..60),
        chunk_bytes in 1usize..64,
        cut_pick in any::<u64>(),
    ) {
        let entries: Vec<LogEntry> = lanes
            .iter()
            .map(|&b| match b % 4 {
                0 => LogEntry::ReorderedLoad { value: u64::MAX - u64::from(b) },
                1 => LogEntry::ReorderedStore {
                    addr: u64::MAX,
                    value: (1u64 << 56) - 1 - u64::from(b), // longest 8-byte varint
                    offset: u32::MAX,
                },
                2 => LogEntry::ReorderedRmw {
                    loaded: 1u64 << 56, // shortest 9-byte varint
                    addr: u64::MAX / 2,
                    stored: Some(u64::MAX),
                    offset: u32::MAX - u32::from(b),
                },
                _ => LogEntry::IntervalFrame {
                    cisn: u16::MAX,
                    timestamp: u64::MAX - u64::from(b), // huge first delta
                },
            })
            .collect();
        let log = IntervalLog { core: CoreId::new(0), entries };
        let bytes = wire::encode_chunked_with(&log, chunk_bytes);
        prop_assert_eq!(
            wire::decode_chunked(&bytes),
            wire::decode_chunked_reference(&bytes)
        );
        let cut = (cut_pick as usize) % (bytes.len() + 1);
        prop_assert_eq!(
            wire::decode_chunked(&bytes[..cut]),
            wire::decode_chunked_reference(&bytes[..cut])
        );
    }

    /// Streams framed at every supported wire version decode identically
    /// through the fast and reference decoders — clean, bit-flipped, and
    /// truncated — so the SWAR path cannot regress v1/v2 compatibility.
    #[test]
    fn all_wire_versions_agree_bit_for_bit_including_errors(
        entries in proptest::collection::vec(entry_strategy(), 1..100),
        version in 1u16..=wire::VERSION,
        flip_pick in any::<u64>(),
        bit in 0u8..8,
        cut_pick in any::<u64>(),
    ) {
        let log = IntervalLog { core: CoreId::new(5), entries };
        let bytes = wire::encode_chunked_with_version(&log, 32, version);
        prop_assert_eq!(
            wire::decode_chunked(&bytes).expect("clean stream decodes"),
            log
        );
        prop_assert_eq!(
            wire::decode_chunked(&bytes),
            wire::decode_chunked_reference(&bytes)
        );
        let mut bad = bytes.clone();
        bad[(flip_pick as usize) % bytes.len()] ^= 1 << bit;
        prop_assert_eq!(
            wire::decode_chunked(&bad),
            wire::decode_chunked_reference(&bad)
        );
        let cut = (cut_pick as usize) % (bytes.len() + 1);
        prop_assert_eq!(
            wire::decode_chunked(&bytes[..cut]),
            wire::decode_chunked_reference(&bytes[..cut])
        );
    }

    /// The `.rridx` skip index answers exactly what a fresh `chunk_map`
    /// walk answers, on clean and arbitrarily damaged files.
    #[test]
    fn skip_index_equals_fresh_chunk_map_walk(
        entries in proptest::collection::vec(entry_strategy(), 1..120),
        flip_pick in any::<u64>(),
        bit in 0u8..8,
        damage in 0u8..3,
    ) {
        let log = IntervalLog { core: CoreId::new(4), entries };
        let mut bytes = wire::encode_chunked_with(&log, 32);
        match damage {
            0 => {} // clean
            1 => {
                let p = (flip_pick as usize) % bytes.len();
                bytes[p] ^= 1 << bit;
            }
            _ => {
                let cut = 7 + (flip_pick as usize) % (bytes.len() - 6);
                bytes.truncate(cut);
            }
        }
        match relaxreplay::SkipIndex::build(&bytes) {
            Ok(index) => {
                let (core, map, _) = wire::chunk_map(&bytes).expect("same header");
                prop_assert_eq!(index.core, core);
                prop_assert_eq!(index.chunk_infos(), map);
                prop_assert!(index.matches_source(&bytes));
                // And it round-trips through the sidecar encoding.
                let round = relaxreplay::SkipIndex::from_bytes(&index.to_bytes())
                    .expect("own encoding parses");
                prop_assert_eq!(round, index);
            }
            Err(e) => {
                // Header damage: chunk_map must refuse identically.
                prop_assert_eq!(wire::chunk_map(&bytes).unwrap_err(), e);
            }
        }
    }

    /// `MappedSource` (mmap-backed streaming) yields the identical entry
    /// sequence and identical terminal error as the in-memory decoder on
    /// arbitrarily damaged streams.
    #[test]
    fn mapped_source_matches_memory_decoder_under_damage(
        entries in proptest::collection::vec(entry_strategy(), 1..80),
        flip_pick in any::<u64>(),
        bit in 0u8..8,
        damage in 0u8..3,
        case in any::<u64>(),
    ) {
        let log = IntervalLog { core: CoreId::new(6), entries };
        let mut bytes = wire::encode_chunked_with(&log, 32);
        match damage {
            0 => {}
            1 => {
                let p = (flip_pick as usize) % bytes.len();
                bytes[p] ^= 1 << bit;
            }
            _ => {
                let cut = (flip_pick as usize) % (bytes.len() + 1);
                bytes.truncate(cut);
            }
        }
        let dir = std::env::temp_dir().join("rr_prop_mmap");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(format!("case-{case}.rrlog"));
        std::fs::write(&path, &bytes).expect("write");

        let (want_prefix, want_err) = wire::decode_chunked_recover(&bytes);
        match relaxreplay::MappedSource::open(&path) {
            Ok(mut src) => {
                let mut got = Vec::new();
                let got_err = loop {
                    match src.next_entry() {
                        Ok(Some(e)) => got.push(e),
                        Ok(None) => break None,
                        Err(e) => break Some(e),
                    }
                };
                prop_assert_eq!(got, want_prefix.entries);
                prop_assert_eq!(got_err, want_err);
            }
            Err(e) => {
                // Header-level failures surface at open, identically.
                prop_assert_eq!(Some(e), want_err);
                prop_assert!(want_prefix.entries.is_empty());
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Range-partitioned decode over `chunk_spans` splits concatenates to
    /// exactly the sequential decode on clean current-version streams.
    #[test]
    fn range_decode_concatenates_to_sequential(
        entries in proptest::collection::vec(entry_strategy(), 1..150),
        chunk_bytes in 1usize..96,
        splits in 1usize..6,
    ) {
        let log = IntervalLog { core: CoreId::new(7), entries };
        let bytes = wire::encode_chunked_with(&log, chunk_bytes);
        let (_, version, spans, trunc) = wire::chunk_spans(&bytes).expect("header");
        prop_assert_eq!(version, wire::VERSION);
        prop_assert!(trunc.is_none());
        let mut got = Vec::new();
        let per = spans.len().div_ceil(splits).max(1);
        for (part, span_range) in spans.chunks(per).enumerate() {
            wire::decode_chunked_range(&bytes, span_range, part * per, &mut got)
                .expect("range decodes");
        }
        prop_assert_eq!(got, log.entries);
    }
}
