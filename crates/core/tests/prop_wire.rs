//! Property tests of the `.rrlog` wire format: byte-identical round
//! trips, CRC detection of arbitrary single-byte corruption (reported
//! with the failing chunk's index), and prefix recovery under arbitrary
//! truncation.

use proptest::prelude::*;
use relaxreplay::wire::{self, WireError};
use relaxreplay::{IntervalLog, LogEntry};
use rr_mem::CoreId;

fn entry_strategy() -> impl Strategy<Value = LogEntry> {
    prop_oneof![
        any::<u32>().prop_map(|instrs| LogEntry::InorderBlock { instrs }),
        any::<u64>().prop_map(|value| LogEntry::ReorderedLoad { value }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(addr, value, offset)| {
            LogEntry::ReorderedStore {
                addr,
                value,
                offset,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(any::<u64>()),
            any::<u32>()
        )
            .prop_map(|(loaded, addr, stored, offset)| LogEntry::ReorderedRmw {
                loaded,
                addr,
                stored,
                offset,
            }),
        (any::<u16>(), any::<u64>())
            .prop_map(|(cisn, timestamp)| LogEntry::IntervalFrame { cisn, timestamp }),
    ]
}

/// Payload spans `(start, len)` of every chunk in an encoded stream,
/// reconstructed from the length prefixes.
fn chunk_payload_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 7; // magic + version + core id
    while pos < bytes.len() {
        let len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("length prefix")) as usize;
        spans.push((pos + 4, len));
        pos += 4 + len + 4; // length + payload + crc
    }
    spans
}

proptest! {
    #[test]
    fn wire_round_trip_is_byte_identical(
        core in 0u8..32,
        entries in proptest::collection::vec(entry_strategy(), 0..300),
    ) {
        let log = IntervalLog {
            core: CoreId::new(core),
            entries,
        };
        let bytes = wire::encode_chunked(&log);
        let decoded = wire::decode_chunked(&bytes).expect("round trip");
        prop_assert_eq!(&decoded, &log);
        // Re-encoding the decoded log reproduces the exact byte stream.
        prop_assert_eq!(wire::encode_chunked(&decoded), bytes);
    }

    #[test]
    fn any_payload_byte_flip_is_caught_with_its_chunk_index(
        entries in proptest::collection::vec(entry_strategy(), 1..120),
        flip_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let log = IntervalLog {
            core: CoreId::new(1),
            entries,
        };
        // Small chunks so multi-chunk streams are the common case.
        let bytes = wire::encode_chunked_with(&log, 32);
        let spans = chunk_payload_spans(&bytes);
        let payload_total: usize = spans.iter().map(|(_, len)| len).sum();
        let mut remaining = (flip_pick as usize) % payload_total;
        let (damaged_chunk, byte_pos) = spans
            .iter()
            .enumerate()
            .find_map(|(i, &(start, len))| {
                if remaining < len {
                    Some((i, start + remaining))
                } else {
                    remaining -= len;
                    None
                }
            })
            .expect("pick lands inside some chunk");

        let mut bad = bytes.clone();
        bad[byte_pos] ^= 1 << bit;
        match wire::decode_chunked(&bad) {
            Err(WireError::CrcMismatch { chunk, .. }) => {
                prop_assert_eq!(chunk, damaged_chunk);
            }
            other => prop_assert!(false, "expected a CRC mismatch, got {:?}", other),
        }
        // Every chunk before the damaged one still decodes intact, and the
        // recovered entries are a prefix of the original log.
        let (prefix, err) = wire::decode_chunked_recover(&bad);
        prop_assert!(err.is_some());
        prop_assert!(
            log.entries.starts_with(&prefix.entries),
            "recovered {} entries are not a prefix of the original {}",
            prefix.entries.len(),
            log.entries.len()
        );
    }

    #[test]
    fn truncation_at_any_byte_recovers_a_clean_prefix(
        entries in proptest::collection::vec(entry_strategy(), 0..120),
        cut_pick in any::<u64>(),
    ) {
        let log = IntervalLog {
            core: CoreId::new(3),
            entries,
        };
        let bytes = wire::encode_chunked_with(&log, 32);
        let cut = (cut_pick as usize) % (bytes.len() + 1);
        // Never panics; whatever decodes is a prefix of the original.
        let (prefix, _err) = wire::decode_chunked_recover(&bytes[..cut]);
        prop_assert!(log.entries.starts_with(&prefix.entries));
        if cut == bytes.len() {
            prop_assert_eq!(prefix.entries.len(), log.entries.len());
        }
    }

    /// The batched fast-path decoder is bit-identical to the retained
    /// entry-at-a-time reference decoder on arbitrary clean logs at
    /// arbitrary chunk sizes.
    #[test]
    fn fast_decoder_matches_reference_on_arbitrary_logs(
        core in 0u8..32,
        entries in proptest::collection::vec(entry_strategy(), 0..300),
        chunk_bytes in 1usize..128,
    ) {
        let log = IntervalLog {
            core: CoreId::new(core),
            entries,
        };
        let bytes = wire::encode_chunked_with(&log, chunk_bytes);
        let fast = wire::decode_chunked(&bytes);
        let reference = wire::decode_chunked_reference(&bytes);
        prop_assert_eq!(fast, reference);
    }

    /// ... and on arbitrarily damaged streams: a bit flip anywhere (header,
    /// framing, payload, CRC) or a truncation at any byte produces the
    /// exact same `Result` — same recovered value or same typed error.
    #[test]
    fn fast_decoder_matches_reference_under_arbitrary_damage(
        entries in proptest::collection::vec(entry_strategy(), 1..120),
        flip_pick in any::<u64>(),
        bit in 0u8..8,
        cut_pick in any::<u64>(),
    ) {
        let log = IntervalLog {
            core: CoreId::new(2),
            entries,
        };
        let bytes = wire::encode_chunked_with(&log, 32);
        let mut bad = bytes.clone();
        bad[(flip_pick as usize) % bytes.len()] ^= 1 << bit;
        prop_assert_eq!(
            wire::decode_chunked(&bad),
            wire::decode_chunked_reference(&bad)
        );
        let cut = (cut_pick as usize) % (bytes.len() + 1);
        prop_assert_eq!(
            wire::decode_chunked(&bytes[..cut]),
            wire::decode_chunked_reference(&bytes[..cut])
        );
        // The lenient skip decoder agrees with the chunk map on how many
        // entries the damaged stream still holds.
        let (salvaged, _) = wire::decode_chunked_skip(&bad);
        if let Ok((_, map, _)) = wire::chunk_map(&bad) {
            prop_assert_eq!(
                salvaged.entries.len(),
                map.iter().map(|c| c.entries).sum::<usize>()
            );
        }
    }

    #[test]
    fn flat_and_chunked_decode_agree(
        core in 0u8..32,
        entries in proptest::collection::vec(entry_strategy(), 0..150),
    ) {
        let log = IntervalLog {
            core: CoreId::new(core),
            entries,
        };
        let via_flat = IntervalLog::decode_flat(&log.encode_flat()).expect("flat codec");
        let via_wire = wire::decode_chunked(&wire::encode_chunked(&log)).expect("wire codec");
        prop_assert_eq!(&via_flat, &log);
        prop_assert_eq!(&via_wire, &log);
    }
}
