//! Edge-case tests: CISN wrap-around across the 16-bit boundary, and the
//! interval partial-order (parallel replay) bookkeeping.

use relaxreplay::{Design, LogEntry, Recorder, RecorderConfig};
use rr_cpu::{CoreObserver, PerformRecord};
use rr_mem::{AccessKind, CoreId, LineAddr};

fn quick_access(rec: &mut Recorder, seq: u64, addr: u64, cycle: u64) {
    assert!(rec.on_dispatch(seq, true));
    rec.on_perform(&PerformRecord {
        seq,
        kind: AccessKind::Load,
        addr,
        line: LineAddr::containing(addr),
        loaded: Some(seq),
        stored: None,
        cycle,
    });
    rec.on_retire(seq, true, cycle);
}

#[test]
fn cisn_wraps_across_u16_boundary() {
    // Max interval of 1 instruction: every counted access closes an
    // interval. Drive past 65536 intervals and check the frames wrap while
    // ordinals keep counting.
    let mut rec = Recorder::new(
        CoreId::new(0),
        RecorderConfig::splash_default(Design::Base, Some(1)),
    );
    let n = 66_000u64;
    for seq in 0..n {
        quick_access(&mut rec, seq, 0x1000 + (seq % 64) * 8, seq);
        rec.tick(seq);
    }
    // Drain the counting backlog (2 per tick).
    for c in n..(2 * n + 10) {
        rec.tick(c);
    }
    rec.finish(2 * n + 10);
    let log = rec.log();
    assert_eq!(log.intervals(), n as usize);
    // The frame CISNs wrap at 65536.
    let frames: Vec<u16> = log
        .entries
        .iter()
        .filter_map(|e| match e {
            LogEntry::IntervalFrame { cisn, .. } => Some(*cisn),
            _ => None,
        })
        .collect();
    assert_eq!(frames[0], 0);
    assert_eq!(frames[65535], 65535);
    assert_eq!(frames[65536], 0, "CISN must wrap");
    // The ordering sidecar uses non-wrapping ordinals.
    assert_eq!(rec.ordering().timestamps.len(), n as usize);
    assert_eq!(rec.intervals_completed(), n);
}

#[test]
fn reordered_store_offset_wraps_correctly() {
    // A store performs just before the CISN wrap and is counted just
    // after: offset arithmetic must wrap (paper stores a 16-bit CISN).
    let mut rec = Recorder::new(
        CoreId::new(0),
        RecorderConfig::splash_default(Design::Base, Some(1)),
    );
    // Fill 65535 intervals (CISN 0..=65534 closed; current CISN = 65535).
    for seq in 0..65_535u64 {
        quick_access(&mut rec, seq, 0x1000 + (seq % 64) * 8, seq);
        rec.tick(seq);
        rec.tick(seq); // drain fully so counting keeps pace
    }
    // A store performs in interval 65535...
    assert!(rec.on_dispatch(70_000, true));
    rec.on_perform(&PerformRecord {
        seq: 70_000,
        kind: AccessKind::Store,
        addr: 0x9000,
        line: LineAddr::containing(0x9000),
        loaded: None,
        stored: Some(42),
        cycle: 70_000,
    });
    // ...the interval terminates twice before it is counted (once via
    // conflict on another performed line, once more via another one),
    // wrapping the CISN to 0.
    assert!(rec.on_dispatch(70_001, true));
    rec.on_perform(&PerformRecord {
        seq: 70_001,
        kind: AccessKind::Load,
        addr: 0xa000,
        line: LineAddr::containing(0xa000),
        loaded: Some(1),
        stored: None,
        cycle: 70_001,
    });
    rec.on_snoop(LineAddr::containing(0xa000), true, 70_002); // closes 65535
    rec.on_retire(70_000, true, 70_003);
    rec.on_retire(70_001, true, 70_003);
    // Counted in interval 0 (post-wrap): offset = 0 - 65535 (wrapping) = 1.
    for c in 70_004..70_010 {
        rec.tick(c);
    }
    rec.finish(70_010);
    let store_entry = rec
        .log()
        .entries
        .iter()
        .find_map(|e| match e {
            LogEntry::ReorderedStore { offset, value, .. } => Some((*offset, *value)),
            _ => None,
        })
        .expect("store must be logged as reordered");
    assert_eq!(
        store_entry,
        (1, 42),
        "offset must wrap across the CISN boundary"
    );
}

#[test]
fn predecessors_attach_to_the_open_interval() {
    let mut rec = Recorder::new(
        CoreId::new(0),
        RecorderConfig::splash_default(Design::Opt, None),
    );
    quick_access(&mut rec, 0, 0x100, 1);
    rec.on_predecessor(CoreId::new(2), 7);
    rec.on_predecessor(CoreId::new(1), 3);
    // Terminate via conflict.
    rec.on_snoop(LineAddr::containing(0x100), true, 5);
    // Next interval gets different predecessors.
    quick_access(&mut rec, 1, 0x200, 6);
    rec.on_predecessor(CoreId::new(3), 9);
    rec.tick(7);
    rec.tick(8);
    rec.finish(10);
    let ord = rec.ordering();
    assert_eq!(ord.preds.len(), 2);
    assert_eq!(ord.preds[0], vec![(CoreId::new(2), 7), (CoreId::new(1), 3)]);
    assert_eq!(ord.preds[1], vec![(CoreId::new(3), 9)]);
    assert_eq!(ord.barriers, vec![false, false]);
}

#[test]
fn dirty_eviction_marks_a_barrier_interval() {
    let mut rec = Recorder::new(
        CoreId::new(0),
        RecorderConfig::splash_default(Design::Opt, None),
    );
    // A performed store puts the line in the write signature...
    assert!(rec.on_dispatch(0, true));
    rec.on_perform(&PerformRecord {
        seq: 0,
        kind: AccessKind::Store,
        addr: 0x300,
        line: LineAddr::containing(0x300),
        loaded: None,
        stored: Some(5),
        cycle: 1,
    });
    rec.on_retire(0, true, 2);
    // ...and its dirty eviction closes the interval as a barrier.
    rec.on_dirty_eviction(LineAddr::containing(0x300), 3);
    rec.tick(4);
    rec.finish(10);
    let ord = rec.ordering();
    assert!(
        ord.barriers[0],
        "eviction-closed interval must be a barrier"
    );
    // The trailing final interval (with the counted store) is not.
    assert!(!ord.barriers[ord.barriers.len() - 1]);
}
