//! Property tests on the recorder's hardware structures: Bloom signatures
//! never miss, the Snoop Table never misses a true conflict, and the log
//! codec round-trips arbitrary entry sequences.

use proptest::prelude::*;
use relaxreplay::{IntervalLog, LogEntry, Signature, SnoopTable};
use rr_mem::{CoreId, LineAddr};

fn entry_strategy() -> impl Strategy<Value = LogEntry> {
    prop_oneof![
        any::<u32>().prop_map(|instrs| LogEntry::InorderBlock { instrs }),
        any::<u64>().prop_map(|value| LogEntry::ReorderedLoad { value }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(addr, value, offset)| {
            LogEntry::ReorderedStore {
                addr,
                value,
                offset,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(any::<u64>()),
            any::<u32>()
        )
            .prop_map(|(loaded, addr, stored, offset)| LogEntry::ReorderedRmw {
                loaded,
                addr,
                stored,
                offset,
            }),
        (any::<u16>(), any::<u64>())
            .prop_map(|(cisn, timestamp)| LogEntry::IntervalFrame { cisn, timestamp }),
    ]
}

proptest! {
    #[test]
    fn signature_has_no_false_negatives(
        lines in proptest::collection::vec(0u64..1 << 40, 0..300),
        probes in proptest::collection::vec(0u64..1 << 40, 0..50),
        seed in any::<u64>(),
    ) {
        let mut sig = Signature::splash_default(seed);
        for &l in &lines {
            sig.insert(LineAddr::from_line_number(l));
        }
        // Everything inserted must test positive...
        for &l in &lines {
            prop_assert!(sig.test(LineAddr::from_line_number(l)));
        }
        // ...and after clearing, everything must test negative.
        sig.clear();
        for &l in lines.iter().chain(&probes) {
            prop_assert!(!sig.test(LineAddr::from_line_number(l)));
        }
    }

    #[test]
    fn snoop_table_never_misses_a_true_conflict(
        line in 0u64..1 << 40,
        noise in proptest::collection::vec(0u64..1 << 40, 0..100),
        seed in any::<u64>(),
    ) {
        let mut t = SnoopTable::splash_default(seed);
        // Sample at "perform time"...
        let sample = t.sample(LineAddr::from_line_number(line));
        // ...then arbitrary traffic including one true conflict...
        for &n in &noise {
            t.record(LineAddr::from_line_number(n));
        }
        t.record(LineAddr::from_line_number(line));
        // ...must always be detected at "counting time". (Conservative:
        // noise alone may also trigger via aliasing; that is allowed.)
        prop_assert!(t.is_reordered(LineAddr::from_line_number(line), sample));
    }

    #[test]
    fn snoop_table_is_quiet_without_any_traffic(
        line in 0u64..1 << 40,
        seed in any::<u64>(),
    ) {
        let t = SnoopTable::splash_default(seed);
        let sample = t.sample(LineAddr::from_line_number(line));
        prop_assert!(!t.is_reordered(LineAddr::from_line_number(line), sample));
    }

    #[test]
    fn log_codec_round_trips(
        core in 0u8..32,
        entries in proptest::collection::vec(entry_strategy(), 0..200),
    ) {
        let log = IntervalLog {
            core: CoreId::new(core),
            entries,
        };
        let decoded = IntervalLog::decode(&log.encode()).expect("well-formed stream");
        prop_assert_eq!(decoded, log);
    }

    #[test]
    fn log_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        // Result may be Ok (if the bytes happen to parse) or Err, but
        // never a panic.
        let _ = IntervalLog::decode(&bytes);
    }

    #[test]
    fn bit_accounting_is_additive(entries in proptest::collection::vec(entry_strategy(), 0..100)) {
        let log = IntervalLog { core: CoreId::new(0), entries: entries.clone() };
        let sum: u64 = entries.iter().map(LogEntry::bits).sum();
        prop_assert_eq!(log.bits(), sum);
    }
}
