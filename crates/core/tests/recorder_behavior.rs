//! Scripted-event tests of the RelaxReplay recorder: the same perform /
//! retire / snoop sequences are fed directly through the observer
//! interface, and the produced logs are checked entry by entry against the
//! paper's semantics (§3.3, Figure 4).

use relaxreplay::{Design, IntervalLog, LogEntry, Recorder, RecorderConfig};
use rr_cpu::{CoreObserver, PerformRecord};
use rr_mem::{AccessKind, CoreId, LineAddr};

fn cfg(design: Design, max: Option<u32>) -> RecorderConfig {
    RecorderConfig::splash_default(design, max)
}

fn recorder(design: Design) -> Recorder {
    Recorder::new(CoreId::new(0), cfg(design, None))
}

fn perform(rec: &mut Recorder, seq: u64, kind: AccessKind, addr: u64, cycle: u64) {
    let (loaded, stored) = match kind {
        AccessKind::Load => (Some(addr ^ 0xf00d), None),
        AccessKind::Store => (None, Some(addr ^ 0xbeef)),
        AccessKind::Rmw => (Some(1), Some(2)),
    };
    rec.on_perform(&PerformRecord {
        seq,
        kind,
        addr,
        line: LineAddr::containing(addr),
        loaded,
        stored,
        cycle,
    });
}

/// Dispatch + perform + retire a memory access, fully in order.
fn quick_access(rec: &mut Recorder, seq: u64, kind: AccessKind, addr: u64, cycle: u64) {
    assert!(rec.on_dispatch(seq, true));
    perform(rec, seq, kind, addr, cycle);
    rec.on_retire(seq, true, cycle);
}

fn entries(log: &IntervalLog) -> &[LogEntry] {
    &log.entries
}

#[test]
fn fully_in_order_run_logs_one_block() {
    let mut rec = recorder(Design::Base);
    for seq in 0..5 {
        quick_access(&mut rec, seq, AccessKind::Load, 0x1000 + seq * 8, 10 + seq);
        rec.tick(10 + seq);
    }
    rec.finish(100);
    let log = rec.into_log();
    assert_eq!(
        entries(&log),
        &[
            LogEntry::InorderBlock { instrs: 5 },
            LogEntry::IntervalFrame {
                cisn: 0,
                timestamp: 100
            },
        ]
    );
}

#[test]
fn base_and_opt_differ_on_unobserved_interval_crossing() {
    // Two loads (lines A, B) perform in interval 0; a remote write to A
    // terminates the interval before either is counted. Base must log both
    // as reordered; Opt must log only A (B saw no conflicting traffic).
    let run = |design: Design| -> IntervalLog {
        let mut rec = recorder(design);
        assert!(rec.on_dispatch(0, true));
        assert!(rec.on_dispatch(1, true));
        perform(&mut rec, 0, AccessKind::Load, 0x100, 5); // line A
        perform(&mut rec, 1, AccessKind::Load, 0x200, 6); // line B
        rec.on_snoop(LineAddr::containing(0x100), true, 8); // conflicts with A
        rec.on_retire(0, true, 9);
        rec.on_retire(1, true, 9);
        rec.tick(10);
        rec.finish(20);
        rec.into_log()
    };

    let base = run(Design::Base);
    assert_eq!(
        entries(&base),
        &[
            LogEntry::IntervalFrame {
                cisn: 0,
                timestamp: 8
            },
            LogEntry::ReorderedLoad {
                value: 0x100 ^ 0xf00d
            },
            LogEntry::ReorderedLoad {
                value: 0x200 ^ 0xf00d
            },
            LogEntry::IntervalFrame {
                cisn: 1,
                timestamp: 20
            },
        ]
    );

    let opt = run(Design::Opt);
    assert_eq!(
        entries(&opt),
        &[
            LogEntry::IntervalFrame {
                cisn: 0,
                timestamp: 8
            },
            LogEntry::ReorderedLoad {
                value: 0x100 ^ 0xf00d
            },
            // B moved across intervals: logged as part of an in-order block.
            LogEntry::InorderBlock { instrs: 1 },
            LogEntry::IntervalFrame {
                cisn: 1,
                timestamp: 20
            },
        ]
    );
}

#[test]
fn reordered_store_carries_offset_across_intervals() {
    let mut rec = recorder(Design::Base);
    assert!(rec.on_dispatch(0, true));
    perform(&mut rec, 0, AccessKind::Store, 0x300, 5); // performs in interval 0
                                                       // Two conflicting snoops (both hit the write signature) terminate two
                                                       // intervals before the store is counted.
    rec.on_snoop(LineAddr::containing(0x300), false, 6);
    // Second termination needs something in the new interval's signature:
    // another performed access.
    assert!(rec.on_dispatch(1, true));
    perform(&mut rec, 1, AccessKind::Load, 0x400, 7);
    rec.on_snoop(LineAddr::containing(0x400), true, 8);
    rec.on_retire(0, true, 9);
    rec.on_retire(1, true, 9);
    rec.tick(10);
    rec.finish(20);
    let log = rec.into_log();
    assert_eq!(
        entries(&log),
        &[
            LogEntry::IntervalFrame {
                cisn: 0,
                timestamp: 6
            },
            LogEntry::IntervalFrame {
                cisn: 1,
                timestamp: 8
            },
            LogEntry::ReorderedStore {
                addr: 0x300,
                value: 0x300 ^ 0xbeef,
                offset: 2
            },
            LogEntry::ReorderedLoad {
                value: 0x400 ^ 0xf00d
            },
            LogEntry::IntervalFrame {
                cisn: 2,
                timestamp: 20
            },
        ]
    );
}

#[test]
fn remote_read_conflicts_only_with_writes() {
    let mut rec = recorder(Design::Base);
    quick_access(&mut rec, 0, AccessKind::Load, 0x100, 5);
    // A remote *read* of a line we only read must not terminate.
    rec.on_snoop(LineAddr::containing(0x100), false, 6);
    rec.tick(7);
    rec.finish(10);
    let log = rec.into_log();
    assert_eq!(log.intervals(), 1, "no conflict termination expected");
    assert_eq!(log.entries[0], LogEntry::InorderBlock { instrs: 1 });
}

#[test]
fn max_interval_size_splits_intervals() {
    let mut rec = Recorder::new(CoreId::new(0), cfg(Design::Base, Some(3)));
    for seq in 0..6 {
        quick_access(&mut rec, seq, AccessKind::Load, 0x1000 + seq * 64, 10 + seq);
        rec.tick(10 + seq);
    }
    // Let counting drain fully.
    for c in 20..30 {
        rec.tick(c);
    }
    rec.finish(40);
    let log = rec.into_log();
    assert_eq!(log.intervals(), 2);
    assert_eq!(
        log.entries
            .iter()
            .filter_map(|e| match e {
                LogEntry::InorderBlock { instrs } => Some(*instrs),
                _ => None,
            })
            .collect::<Vec<_>>(),
        vec![3, 3]
    );
}

#[test]
fn nmi_groups_nonmemory_instructions() {
    let mut rec = recorder(Design::Base);
    // 20 non-memory instructions: a filler at 15, 5 pending.
    for seq in 0..20 {
        assert!(rec.on_dispatch(seq, false));
        rec.on_retire(seq, false, seq);
    }
    // A memory access carrying the remaining NMI count of 5.
    quick_access(&mut rec, 20, AccessKind::Store, 0x500, 25);
    rec.tick(26);
    rec.tick(27);
    rec.finish(30);
    let log = rec.into_log();
    assert_eq!(
        entries(&log),
        &[
            LogEntry::InorderBlock { instrs: 21 },
            LogEntry::IntervalFrame {
                cisn: 0,
                timestamp: 30
            },
        ]
    );
}

#[test]
fn squash_discards_uncounted_suffix_and_recovers_nmi() {
    let mut rec = recorder(Design::Base);
    // Dispatch: 2 non-mem (survive), then a mem + 3 non-mem + mem that are
    // all squashed.
    assert!(rec.on_dispatch(0, false));
    assert!(rec.on_dispatch(1, false));
    assert!(rec.on_dispatch(2, true)); // will be squashed
    assert!(rec.on_dispatch(3, false));
    assert!(rec.on_dispatch(4, false));
    assert!(rec.on_dispatch(5, false));
    assert!(rec.on_dispatch(6, true)); // will be squashed
    rec.on_squash_after(1, 5);
    // Re-dispatch the correct path: one mem access, which must carry
    // NMI = 2 (the two surviving non-memory instructions).
    assert!(rec.on_dispatch(2, true));
    rec.on_retire(0, false, 5);
    rec.on_retire(1, false, 5);
    perform(&mut rec, 2, AccessKind::Load, 0x700, 6);
    rec.on_retire(2, true, 7);
    rec.tick(8);
    rec.finish(10);
    let log = rec.into_log();
    assert_eq!(
        entries(&log),
        &[
            LogEntry::InorderBlock { instrs: 3 },
            LogEntry::IntervalFrame {
                cisn: 0,
                timestamp: 10
            },
        ]
    );
}

#[test]
fn traq_full_stalls_dispatch() {
    let mut config = cfg(Design::Base, None);
    config.traq_entries = 2;
    let mut rec = Recorder::new(CoreId::new(0), config);
    assert!(rec.on_dispatch(0, true));
    assert!(rec.on_dispatch(1, true));
    assert!(!rec.on_dispatch(2, true), "TRAQ full must refuse");
    // Refusal must be stateless: retrying after draining works.
    perform(&mut rec, 0, AccessKind::Load, 0x10, 1);
    rec.on_retire(0, true, 1);
    rec.tick(2);
    assert!(rec.on_dispatch(2, true));
}

#[test]
fn counting_is_rate_limited_per_cycle() {
    let mut rec = recorder(Design::Base);
    for seq in 0..5 {
        quick_access(&mut rec, seq, AccessKind::Load, 0x1000 + seq * 64, 3);
    }
    assert_eq!(rec.traq_len(), 5);
    rec.tick(4); // counts at most 2
    assert_eq!(rec.traq_len(), 3);
    rec.tick(5);
    assert_eq!(rec.traq_len(), 1);
}

#[test]
fn dirty_eviction_conservatively_reorders_in_opt() {
    let mut rec = recorder(Design::Opt);
    assert!(rec.on_dispatch(0, true));
    perform(&mut rec, 0, AccessKind::Load, 0x900, 2);
    // Interval changes for an unrelated reason (conflict on another line).
    assert!(rec.on_dispatch(1, true));
    perform(&mut rec, 1, AccessKind::Load, 0xa00, 3);
    rec.on_snoop(LineAddr::containing(0xa00), true, 4);
    // Directory mode: our own dirty eviction of line 0x900 is reported;
    // the still-uncounted load must now be declared reordered.
    rec.on_dirty_eviction(LineAddr::containing(0x900), 4);
    rec.on_retire(0, true, 5);
    rec.on_retire(1, true, 5);
    rec.tick(6);
    rec.finish(10);
    let stats_reordered = rec.stats().reordered_loads;
    assert_eq!(stats_reordered, 2, "evicted line + conflicting line");
}

#[test]
fn reordered_rmw_logs_combined_entry() {
    let mut rec = recorder(Design::Base);
    assert!(rec.on_dispatch(0, true));
    perform(&mut rec, 0, AccessKind::Rmw, 0x40, 2);
    rec.on_snoop(LineAddr::containing(0x40), true, 3);
    rec.on_retire(0, true, 4);
    rec.tick(5);
    rec.finish(8);
    let log = rec.into_log();
    assert!(matches!(
        log.entries[1],
        LogEntry::ReorderedRmw {
            loaded: 1,
            addr: 0x40,
            stored: Some(2),
            offset: 1
        }
    ));
}

#[test]
fn stats_reordered_fraction() {
    let mut rec = recorder(Design::Base);
    quick_access(&mut rec, 0, AccessKind::Load, 0x100, 1);
    rec.tick(1); // count the first load while still in interval 0
    assert!(rec.on_dispatch(1, true));
    perform(&mut rec, 1, AccessKind::Load, 0x200, 2);
    rec.on_snoop(LineAddr::containing(0x200), true, 3);
    rec.on_retire(1, true, 4);
    rec.tick(5);
    rec.tick(6);
    rec.finish(9);
    let s = rec.stats();
    assert_eq!(s.counted_mem(), 2);
    assert_eq!(s.reordered(), 1);
    assert!((s.reordered_fraction() - 0.5).abs() < 1e-12);
}
