//! Regression test for the local same-address anti-dependence hazard in
//! RelaxReplay_Opt (see DESIGN.md §2.2).
//!
//! Scenario: a load L performs in interval I; the same core's *younger*
//! store S to the same line also performs in I (stores drain from the write
//! buffer while the TRAQ is backed up); the interval then terminates, and
//! both are counted in I+1. S is reordered and will be patched to the end
//! of I. If Opt declared L "in order" (moved to I+1), replay would execute
//! L *after* S's patched store and read the wrong value. The Snoop Table as
//! the paper describes it only observes remote transactions and cannot see
//! this; our recorder also records the core's own store performs, which
//! forces L to be logged by value.

use relaxreplay::{Design, LogEntry, Recorder, RecorderConfig};
use rr_cpu::{CoreObserver, PerformRecord};
use rr_mem::{AccessKind, CoreId, LineAddr};

fn perform(rec: &mut Recorder, seq: u64, kind: AccessKind, addr: u64, value: u64, cycle: u64) {
    let (loaded, stored) = match kind {
        AccessKind::Load => (Some(value), None),
        AccessKind::Store => (None, Some(value)),
        AccessKind::Rmw => (Some(value), Some(value + 1)),
    };
    rec.on_perform(&PerformRecord {
        seq,
        kind,
        addr,
        line: LineAddr::containing(addr),
        loaded,
        stored,
        cycle,
    });
}

#[test]
fn opt_logs_load_that_its_own_younger_store_would_overtake() {
    let mut rec = Recorder::new(
        CoreId::new(0),
        RecorderConfig::splash_default(Design::Opt, None),
    );
    // Program order: L (load X), S (store X). Both perform in interval 0;
    // L first (value 7), then S (value 9) — S drained from the write
    // buffer after retiring, while neither is counted yet.
    assert!(rec.on_dispatch(0, true)); // L
    assert!(rec.on_dispatch(1, true)); // S
    perform(&mut rec, 0, AccessKind::Load, 0x100, 7, 10);
    rec.on_retire(0, true, 11);
    rec.on_retire(1, true, 12);
    perform(&mut rec, 1, AccessKind::Store, 0x100, 9, 13);
    // A remote conflict on an unrelated line the core also touched
    // terminates interval 0 before anything is counted.
    assert!(rec.on_dispatch(2, true));
    perform(&mut rec, 2, AccessKind::Load, 0x900, 1, 14);
    rec.on_retire(2, true, 14);
    rec.on_snoop(LineAddr::containing(0x900), true, 15);
    // Count everything, finish.
    for c in 16..24 {
        rec.tick(c);
    }
    rec.finish(30);
    let log = rec.into_log();
    // L must be logged as a reordered load carrying its value (7). If it
    // were moved into interval 1 as in-order, replay would read 9 from the
    // patched store.
    assert!(
        log.entries
            .iter()
            .any(|e| matches!(e, LogEntry::ReorderedLoad { value: 7 })),
        "the load must be logged by value; log: {:?}",
        log.entries
    );
    // The store itself may legitimately move in order into interval 1 (no
    // traffic touched its line after *its* perform): replay then executes
    // it after the injected load, which is the correct program order.
    let store_reordered = log
        .entries
        .iter()
        .any(|e| matches!(e, LogEntry::ReorderedStore { value: 9, .. }));
    let store_in_order = log
        .entries
        .iter()
        .any(|e| matches!(e, LogEntry::InorderBlock { .. }));
    assert!(store_reordered || store_in_order, "log: {:?}", log.entries);
}

#[test]
fn opt_store_does_not_flag_itself() {
    // A store whose perform/count window crosses an interval with no other
    // traffic on its line must still be declared reordered only because of
    // the Base rule... no: in Opt it must NOT be flagged by its *own*
    // Snoop Table record (sampling happens after recording). With no
    // remote traffic, a moved store stays in order.
    let mut rec = Recorder::new(
        CoreId::new(0),
        RecorderConfig::splash_default(Design::Opt, None),
    );
    assert!(rec.on_dispatch(0, true));
    perform(&mut rec, 0, AccessKind::Store, 0x100, 5, 10);
    rec.on_retire(0, true, 11);
    // Unrelated conflict terminates the interval before counting.
    assert!(rec.on_dispatch(1, true));
    perform(&mut rec, 1, AccessKind::Load, 0x900, 1, 12);
    rec.on_retire(1, true, 12);
    rec.on_snoop(LineAddr::containing(0x900), true, 13);
    for c in 14..20 {
        rec.tick(c);
    }
    rec.finish(30);
    assert_eq!(rec.stats().reordered_stores, 0, "{:?}", rec.stats());
    assert_eq!(rec.stats().moved_across_intervals, 1);
}
