//! `rr_prof` — low-overhead execution profiling primitives.
//!
//! The trace layer ([`crate::trace`]) observes the *simulated machine*;
//! this module observes the *replayer and codec themselves*: where host
//! wall-clock goes inside the multithreaded replay engine
//! (`rr_replay::prof`) and inside the `.rrlog` decode hot path
//! ([`crate::wire::decode_chunked_profiled`]).
//!
//! Profiling is strictly a side channel: the profiled code paths are
//! *separate functions* from the production paths, so the disabled case
//! costs nothing, and the profiled variants produce bit-identical outputs
//! (asserted by `tests/observability.rs` and the codec bench's
//! differential gate). All numbers here are host wall-clock nanoseconds —
//! like [`PhaseNanos`](https://docs.rs/), they are excluded from every
//! determinism comparison.
//!
//! Three artifact shapes come out of the subsystem:
//!
//! * per-worker span timelines ([`EngineProf`]), exported as Chrome
//!   trace-event JSON with one track per worker
//!   ([`engine_chrome_trace`]);
//! * per-phase codec timings ([`CodecPhases`]), surfaced by the
//!   `rr-bench` codec harness;
//! * the `<slug>.prof.json` sidecar (schema `rr-prof/v1`), validated by
//!   [`validate_prof_json`].

use std::fmt::Write as _;

use crate::trace::json;

/// Current prof-sidecar schema identifier.
pub const PROF_SCHEMA: &str = "rr-prof/v1";

/// Per-worker span cap: a runaway replay cannot exhaust memory through
/// its own profiler. Dropped spans are counted, never silently lost.
pub const SPAN_CAP: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Codec phase timing
// ---------------------------------------------------------------------------

/// Wall-clock decomposition of a chunked `.rrlog` decode: CRC
/// verification vs varint entry decode vs output-buffer reservation.
///
/// Filled by [`crate::wire::decode_chunked_profiled`]; the `rr-bench`
/// codec harness records it per size so throughput cliffs are
/// attributable to a phase instead of a guess.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodecPhases {
    /// Nanoseconds verifying chunk CRCs.
    pub crc_ns: u64,
    /// Nanoseconds in the batched varint entry decode.
    pub entries_ns: u64,
    /// Nanoseconds reserving / growing the output entry buffer.
    pub reserve_ns: u64,
    /// Chunks decoded.
    pub chunks: u64,
    /// Payload bytes decoded.
    pub payload_bytes: u64,
}

impl CodecPhases {
    /// Total attributed nanoseconds across all phases.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.crc_ns + self.entries_ns + self.reserve_ns
    }

    /// Accumulates another decode's phases into this one.
    pub fn merge(&mut self, other: &CodecPhases) {
        self.crc_ns += other.crc_ns;
        self.entries_ns += other.entries_ns;
        self.reserve_ns += other.reserve_ns;
        self.chunks += other.chunks;
        self.payload_bytes += other.payload_bytes;
    }

    /// One-line human summary: each phase's share of the attributed time.
    #[must_use]
    pub fn summary(&self) -> String {
        let total = self.total_ns().max(1) as f64;
        format!(
            "crc {:.1}% varint {:.1}% reserve {:.1}% ({} chunk(s), {} payload B)",
            self.crc_ns as f64 / total * 100.0,
            self.entries_ns as f64 / total * 100.0,
            self.reserve_ns as f64 / total * 100.0,
            self.chunks,
            self.payload_bytes
        )
    }

    /// Renders as a JSON object (the `"phases"` field of a codec bench
    /// row).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"crc_ns\":{},\"entries_ns\":{},\"reserve_ns\":{},\"chunks\":{},\"payload_bytes\":{}}}",
            self.crc_ns, self.entries_ns, self.reserve_ns, self.chunks, self.payload_bytes
        )
    }
}

// ---------------------------------------------------------------------------
// Engine worker timelines
// ---------------------------------------------------------------------------

/// What a replay worker was doing during a [`Span`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Executing an interval's ops (holding the core's state lock).
    Exec,
    /// Acquiring the shared ready-heap lock and popping a node
    /// (condvar waits excluded — those are [`SpanKind::DepWait`]).
    QueuePop,
    /// Blocked on the ready condvar while unexecuted intervals remain:
    /// every runnable interval is claimed and this worker's next node
    /// still has unmet dependencies.
    DepWait,
    /// The final wait before pool shutdown (no work will arrive).
    Idle,
}

impl SpanKind {
    /// Stable lower-case name, used in trace events and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Exec => "exec",
            SpanKind::QueuePop => "queue-pop",
            SpanKind::DepWait => "dep-wait",
            SpanKind::Idle => "idle",
        }
    }
}

/// One timed activity of one replay worker, in nanoseconds since engine
/// start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// What the worker was doing.
    pub kind: SpanKind,
    /// Start, ns since the engine started.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// For [`SpanKind::Exec`]: the executed interval's core.
    pub core: u32,
    /// For [`SpanKind::Exec`]: the executed interval's DAG node id.
    pub node: u64,
}

/// One worker's complete profile: its span timeline plus engine
/// counters attributed to it.
#[derive(Clone, Debug, Default)]
pub struct WorkerProf {
    /// Worker index in the pool.
    pub worker: usize,
    /// The span timeline, in start order (capped at [`SPAN_CAP`]).
    pub spans: Vec<Span>,
    /// Spans dropped once the cap was hit.
    pub spans_dropped: u64,
    /// Total ns per kind (includes dropped spans' time).
    pub exec_ns: u64,
    /// Total queue-pop ns.
    pub pop_ns: u64,
    /// Total dep-wait ns.
    pub dep_wait_ns: u64,
    /// Total idle ns.
    pub idle_ns: u64,
    /// Shared ready-heap lock acquisitions by this worker.
    pub queue_locks: u64,
    /// Per-core state-mutex acquisitions by this worker.
    pub core_locks: u64,
    /// Core-mutex acquisitions that found the lock held (contention —
    /// should be ~0: same-core intervals are chained in the DAG).
    pub core_locks_contended: u64,
    /// Ready-heap depth observed at each pop (including the popped node).
    pub heap_depth: Vec<u32>,
    /// Intervals executed by this worker.
    pub executed: u64,
}

impl WorkerProf {
    /// A fresh profile for worker `worker`.
    #[must_use]
    pub fn new(worker: usize) -> Self {
        WorkerProf {
            worker,
            ..WorkerProf::default()
        }
    }

    /// Records a span, updating the per-kind totals; the timeline itself
    /// is capped at [`SPAN_CAP`] spans.
    pub fn push_span(&mut self, kind: SpanKind, start_ns: u64, dur_ns: u64, core: u32, node: u64) {
        match kind {
            SpanKind::Exec => self.exec_ns += dur_ns,
            SpanKind::QueuePop => self.pop_ns += dur_ns,
            SpanKind::DepWait => self.dep_wait_ns += dur_ns,
            SpanKind::Idle => self.idle_ns += dur_ns,
        }
        if self.spans.len() < SPAN_CAP {
            self.spans.push(Span {
                kind,
                start_ns,
                dur_ns,
                core,
                node,
            });
        } else {
            self.spans_dropped += 1;
        }
    }
}

/// Ready-heap depth distribution across every pop the pool performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapDepthStats {
    /// Number of samples (= intervals executed).
    pub samples: u64,
    /// Median observed depth.
    pub p50: u32,
    /// 95th-percentile observed depth.
    pub p95: u32,
    /// Maximum observed depth.
    pub max: u32,
}

/// The multithreaded replay engine's complete profile: one
/// [`WorkerProf`] per pool worker plus engine-wide counters.
#[derive(Clone, Debug, Default)]
pub struct EngineProf {
    /// Per-worker profiles, index = worker id.
    pub workers: Vec<WorkerProf>,
    /// Engine wall-clock from pool start to pool join, ns.
    pub wall_ns: u64,
    /// DAG nodes the engine was asked to execute.
    pub nodes: usize,
    /// Ns from engine start to the first replay error (if any) — the
    /// first-error latency a divergence report would quote.
    pub first_error_ns: Option<u64>,
}

impl EngineProf {
    /// Total shared ready-heap lock acquisitions across workers.
    #[must_use]
    pub fn queue_lock_acquisitions(&self) -> u64 {
        self.workers.iter().map(|w| w.queue_locks).sum()
    }

    /// Total contended core-mutex acquisitions across workers.
    #[must_use]
    pub fn core_locks_contended(&self) -> u64 {
        self.workers.iter().map(|w| w.core_locks_contended).sum()
    }

    /// Ready-heap depth distribution over every pop.
    #[must_use]
    pub fn heap_depth_stats(&self) -> HeapDepthStats {
        let mut all: Vec<u32> = self
            .workers
            .iter()
            .flat_map(|w| w.heap_depth.iter().copied())
            .collect();
        if all.is_empty() {
            return HeapDepthStats::default();
        }
        all.sort_unstable();
        let rank = |p: f64| all[(((p / 100.0 * all.len() as f64).ceil() as usize).max(1)) - 1];
        HeapDepthStats {
            samples: all.len() as u64,
            p50: rank(50.0),
            p95: rank(95.0),
            max: *all.last().expect("non-empty"),
        }
    }

    /// Renders the engine profile summary as a JSON object (the
    /// `"engine"` field of a prof-sidecar entry).
    #[must_use]
    pub fn summary_json(&self) -> String {
        let depth = self.heap_depth_stats();
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"workers\":{},\"wall_ns\":{},\"nodes\":{}",
            self.workers.len(),
            self.wall_ns,
            self.nodes
        );
        let _ = write!(
            s,
            ",\"queue_lock_acquisitions\":{},\"core_locks_contended\":{}",
            self.queue_lock_acquisitions(),
            self.core_locks_contended()
        );
        let _ = write!(
            s,
            ",\"heap_depth\":{{\"samples\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
            depth.samples, depth.p50, depth.p95, depth.max
        );
        match self.first_error_ns {
            Some(ns) => {
                let _ = write!(s, ",\"first_error_ns\":{ns}");
            }
            None => s.push_str(",\"first_error_ns\":null"),
        }
        s.push_str(",\"worker_spans\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"worker\":{},\"executed\":{},\"exec_ns\":{},\"queue_pop_ns\":{},\
                 \"dep_wait_ns\":{},\"idle_ns\":{},\"spans\":{},\"spans_dropped\":{}}}",
                w.worker,
                w.executed,
                w.exec_ns,
                w.pop_ns,
                w.dep_wait_ns,
                w.idle_ns,
                w.spans.len(),
                w.spans_dropped
            );
        }
        s.push_str("]}");
        s
    }
}

/// Exports engine profiles as Chrome trace-event JSON: one *process* per
/// named replay, one *thread* (track) per pool worker, spans as complete
/// (`"X"`) duration events in nanoseconds, and the first error (if any)
/// as an instant event. Load the output in Perfetto or
/// `chrome://tracing`.
#[must_use]
pub fn engine_chrome_trace(runs: &[(String, &EngineProf)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&s);
    };
    for (pid, (name, prof)) in runs.iter().enumerate() {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
                json::escape(name)
            ),
            &mut out,
        );
        for w in &prof.workers {
            let tid = w.worker;
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"worker {tid}\"}}}}"
                ),
                &mut out,
            );
            for span in &w.spans {
                let name = match span.kind {
                    SpanKind::Exec => format!("exec c{}#{}", span.core, span.node),
                    k => k.name().to_string(),
                };
                push(
                    format!(
                        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":{}}}",
                        span.start_ns,
                        span.dur_ns,
                        json::escape(&name)
                    ),
                    &mut out,
                );
            }
        }
        if let Some(ns) = prof.first_error_ns {
            push(
                format!(
                    "{{\"ph\":\"i\",\"s\":\"p\",\"pid\":{pid},\"tid\":0,\"ts\":{ns},\"name\":\"first error\"}}"
                ),
                &mut out,
            );
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

// ---------------------------------------------------------------------------
// prof.json sidecar validation
// ---------------------------------------------------------------------------

/// Summary of a validated `.prof.json` sidecar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfJsonStats {
    /// Entries (run × variant) in the sidecar.
    pub entries: usize,
    /// Entries carrying an engine (worker-timeline) section.
    pub with_engine: usize,
    /// Total critical-path intervals across entries.
    pub path_intervals: u64,
}

/// Parses `s` as a `rr-prof/v1` sidecar and checks the schema: the
/// `schema` marker, a non-empty `entries` array, and for each entry the
/// `run`/`variant` identity plus a `blame` object whose
/// `attributed_cycles` covers ≥95% of `makespan_cycles` (the subsystem's
/// core guarantee — blame that does not explain the makespan is a bug).
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_prof_json(s: &str) -> Result<ProfJsonStats, String> {
    let v = json::parse(s)?;
    let schema = v
        .get("schema")
        .and_then(json::Value::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != PROF_SCHEMA {
        return Err(format!("schema {schema:?}, expected {PROF_SCHEMA:?}"));
    }
    let entries = v
        .get("entries")
        .and_then(json::Value::as_array)
        .ok_or("missing \"entries\" array")?;
    if entries.is_empty() {
        return Err("\"entries\" is empty".into());
    }
    let mut with_engine = 0usize;
    let mut path_intervals = 0u64;
    for (i, e) in entries.iter().enumerate() {
        let ctx = |what: &str| format!("entry {i}: {what}");
        e.get("run")
            .and_then(json::Value::as_str)
            .ok_or_else(|| ctx("missing \"run\""))?;
        e.get("variant")
            .and_then(json::Value::as_str)
            .ok_or_else(|| ctx("missing \"variant\""))?;
        let blame = e.get("blame").ok_or_else(|| ctx("missing \"blame\""))?;
        let num = |k: &str| {
            blame
                .get(k)
                .and_then(json::Value::as_u64)
                .ok_or_else(|| ctx(&format!("blame missing numeric \"{k}\"")))
        };
        let makespan = num("makespan_cycles")?;
        let attributed = num("attributed_cycles")?;
        if attributed * 100 < makespan * 95 {
            return Err(ctx(&format!(
                "blame attributes only {attributed} of {makespan} makespan cycles (<95%)"
            )));
        }
        path_intervals += num("path_intervals")?;
        for k in ["per_core", "per_kind", "top_intervals"] {
            blame
                .get(k)
                .and_then(json::Value::as_array)
                .ok_or_else(|| ctx(&format!("blame missing \"{k}\" array")))?;
        }
        match e.get("engine") {
            None | Some(json::Value::Null) => {}
            Some(engine) => {
                for k in ["workers", "wall_ns", "queue_lock_acquisitions"] {
                    engine
                        .get(k)
                        .and_then(json::Value::as_u64)
                        .ok_or_else(|| ctx(&format!("engine missing numeric \"{k}\"")))?;
                }
                with_engine += 1;
            }
        }
    }
    Ok(ProfJsonStats {
        entries: entries.len(),
        with_engine,
        path_intervals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_phases_merge_and_summarize() {
        let mut a = CodecPhases {
            crc_ns: 10,
            entries_ns: 80,
            reserve_ns: 10,
            chunks: 2,
            payload_bytes: 100,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total_ns(), 200);
        assert_eq!(a.chunks, 4);
        assert!(a.summary().contains("crc 10.0%"), "{}", a.summary());
        assert!(a.to_json().contains("\"entries_ns\":160"));
    }

    #[test]
    fn worker_prof_caps_spans_but_keeps_totals() {
        let mut w = WorkerProf::new(0);
        w.push_span(SpanKind::Exec, 0, 5, 1, 7);
        assert_eq!(w.exec_ns, 5);
        assert_eq!(w.spans.len(), 1);
        w.spans.resize(
            SPAN_CAP,
            Span {
                kind: SpanKind::Idle,
                start_ns: 0,
                dur_ns: 0,
                core: 0,
                node: 0,
            },
        );
        w.push_span(SpanKind::Exec, 10, 5, 1, 8);
        assert_eq!(w.spans.len(), SPAN_CAP, "capped");
        assert_eq!(w.spans_dropped, 1);
        assert_eq!(w.exec_ns, 10, "totals still accumulate");
    }

    #[test]
    fn heap_depth_stats_over_two_workers() {
        let mut prof = EngineProf::default();
        let mut a = WorkerProf::new(0);
        a.heap_depth = vec![1, 2, 3];
        let mut b = WorkerProf::new(1);
        b.heap_depth = vec![10];
        prof.workers = vec![a, b];
        let d = prof.heap_depth_stats();
        assert_eq!(d.samples, 4);
        assert_eq!(d.max, 10);
        assert_eq!(d.p50, 2);
    }

    #[test]
    fn engine_chrome_trace_has_one_track_per_worker() {
        let mut prof = EngineProf {
            nodes: 2,
            wall_ns: 100,
            ..EngineProf::default()
        };
        for i in 0..3 {
            let mut w = WorkerProf::new(i);
            w.push_span(SpanKind::Exec, 10 * i as u64, 5, 0, i as u64);
            prof.workers.push(w);
        }
        let chrome = engine_chrome_trace(&[("fft/Opt-4K".to_string(), &prof)]);
        let stats = crate::trace::validate_chrome_trace(&chrome).expect("valid chrome trace");
        assert_eq!(stats.tracks, 3);
        assert!(stats.track_names.iter().any(|n| n == "worker 2"));
    }

    #[test]
    fn prof_json_validation_rejects_thin_blame() {
        let good = format!(
            "{{\"schema\":{:?},\"entries\":[{{\"run\":\"fft\",\"variant\":\"Opt-4K\",\
             \"blame\":{{\"makespan_cycles\":100,\"attributed_cycles\":100,\"path_intervals\":4,\
             \"per_core\":[],\"per_kind\":[],\"top_intervals\":[]}},\"engine\":null}}]}}",
            PROF_SCHEMA
        );
        let stats = validate_prof_json(&good).expect("valid sidecar");
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.with_engine, 0);
        assert_eq!(stats.path_intervals, 4);

        let thin = good.replace("\"attributed_cycles\":100", "\"attributed_cycles\":90");
        let err = validate_prof_json(&thin).expect_err("<95% coverage must fail");
        assert!(err.contains("95%"), "{err}");

        assert!(validate_prof_json("{}").is_err());
        assert!(validate_prof_json("not json").is_err());
    }
}
