use core::fmt;

use rr_mem::CoreId;

/// One entry of a per-processor interval log (paper Figure 6(c)).
///
/// Entries appear in counting (program) order within an interval; an
/// [`LogEntry::IntervalFrame`] closes each interval and carries its global
/// ordering timestamp (the QuickRec-style scalar clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogEntry {
    /// A run of `instrs` consecutive instructions (memory and non-memory
    /// alike) to be replayed natively in order.
    InorderBlock {
        /// Number of instructions in the block (the *Current InorderBlock
        /// Size* count, 32 bits).
        instrs: u32,
    },
    /// The next instruction in program order is a load that was reordered;
    /// replay must inject `value` into its destination register instead of
    /// accessing memory (paper §3.3.1).
    ReorderedLoad {
        /// The value the load obtained when it performed.
        value: u64,
    },
    /// The next instruction in program order is a store that was reordered;
    /// before replay, a patching step moves this entry `offset` intervals
    /// back — to the interval where the store performed — and leaves a
    /// dummy here (paper §3.3.2).
    ReorderedStore {
        /// Byte address written.
        addr: u64,
        /// Value written.
        value: u64,
        /// `CISN - PISN`: how many intervals before this one the store
        /// performed. The hardware field is 16 bits; the in-memory (and
        /// wire) width is 32 so that an access whose perform and counting
        /// events drift ≥ 65536 intervals apart still records its exact
        /// distance instead of aliasing to a small offset (see
        /// [`LogEntry::bits`] for the size accounting).
        offset: u32,
    },
    /// The next instruction in program order is an atomic read-modify-write
    /// that was reordered. Replay injects `loaded` into the destination
    /// register here; the store half (if the RMW wrote — a failed CAS does
    /// not) is patched back like a reordered store.
    ///
    /// The paper does not discuss atomics explicitly; this entry is the
    /// natural composition of its reordered-load and reordered-store
    /// treatments (see DESIGN.md).
    ReorderedRmw {
        /// Value the RMW read.
        loaded: u64,
        /// Byte address accessed.
        addr: u64,
        /// Value written, or `None` for a failed compare-and-swap.
        stored: Option<u64>,
        /// `CISN - PISN` for the store half (see
        /// [`LogEntry::ReorderedStore`] for the width rationale).
        offset: u32,
    },
    /// Closes the current interval.
    IntervalFrame {
        /// The interval's sequence number (16-bit, wrapping).
        cisn: u16,
        /// Global timestamp at termination; the total order of intervals
        /// across processors (QuickRec ordering, paper §4.1).
        timestamp: u64,
    },
}

impl LogEntry {
    /// The entry's size in bits, used for the paper's log-size metric
    /// (Figure 11: "uncompressed log size ... in bits per 1K instructions").
    ///
    /// Widths follow Figure 6(c) and Table 1: a 2-bit type tag; 32-bit
    /// block size; 64-bit values/addresses; 16-bit offset; 16-bit CISN;
    /// 64-bit global timestamp. A reordered RMW is charged as a reordered
    /// load plus a reordered store. An offset too large for the paper's
    /// 16-bit field (perform and counting ≥ 65536 intervals apart) is
    /// charged 32 bits — the escape the hardware would need.
    #[must_use]
    pub fn bits(&self) -> u64 {
        let offset_bits = |offset: u32| -> u64 {
            if offset <= u32::from(u16::MAX) {
                16
            } else {
                32
            }
        };
        match self {
            LogEntry::InorderBlock { .. } => 2 + 32,
            LogEntry::ReorderedLoad { .. } => 2 + 64,
            LogEntry::ReorderedStore { offset, .. } => 2 + 64 + 64 + offset_bits(*offset),
            LogEntry::ReorderedRmw { offset, .. } => {
                (2 + 64) + (2 + 64 + 64 + offset_bits(*offset))
            }
            LogEntry::IntervalFrame { .. } => 2 + 16 + 64,
        }
    }
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogEntry::InorderBlock { instrs } => write!(f, "IB({instrs})"),
            LogEntry::ReorderedLoad { value } => write!(f, "RL(val={value:#x})"),
            LogEntry::ReorderedStore {
                addr,
                value,
                offset,
            } => write!(f, "RS(addr={addr:#x}, val={value:#x}, off={offset})"),
            LogEntry::ReorderedRmw {
                loaded,
                addr,
                stored,
                offset,
            } => write!(
                f,
                "RRMW(loaded={loaded:#x}, addr={addr:#x}, stored={stored:?}, off={offset})"
            ),
            LogEntry::IntervalFrame { cisn, timestamp } => {
                write!(f, "FRAME(cisn={cisn}, ts={timestamp})")
            }
        }
    }
}

/// The complete recording of one processor: its log entries in counting
/// order, interval by interval.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalLog {
    /// The recorded processor.
    pub core: CoreId,
    /// Entries in counting order; each interval ends with an
    /// [`LogEntry::IntervalFrame`].
    pub entries: Vec<LogEntry>,
}

impl IntervalLog {
    /// Creates an empty log for `core`.
    #[must_use]
    pub fn new(core: CoreId) -> Self {
        IntervalLog {
            core,
            entries: Vec::new(),
        }
    }

    /// Total log size in bits (Figure 11 metric).
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.entries.iter().map(LogEntry::bits).sum()
    }

    /// Number of intervals (frames).
    #[must_use]
    pub fn intervals(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, LogEntry::IntervalFrame { .. }))
            .count()
    }

    /// Number of `InorderBlock` entries (Figure 10 metric).
    #[must_use]
    pub fn inorder_blocks(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, LogEntry::InorderBlock { .. }))
            .count()
    }

    /// Serializes the log as the chunked, checksummed `.rrlog` wire
    /// format (see [`crate::wire`]) — a thin adapter over
    /// [`wire::encode_chunked`](crate::wire::encode_chunked).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        crate::wire::encode_chunked(self)
    }

    /// Deserializes a chunked `.rrlog` byte stream produced by
    /// [`IntervalLog::encode`] — a thin adapter over
    /// [`wire::decode_chunked`](crate::wire::decode_chunked).
    ///
    /// # Errors
    ///
    /// Returns a typed [`WireError`](crate::wire::WireError) on a bad
    /// header, truncation, or corruption; use
    /// [`wire::decode_chunked_recover`](crate::wire::decode_chunked_recover)
    /// to also obtain every entry up to the failure point.
    pub fn decode(bytes: &[u8]) -> Result<Self, crate::wire::WireError> {
        crate::wire::decode_chunked(bytes)
    }

    /// Serializes the log with the legacy *flat* fixed-width encoding:
    /// unframed, unversioned, checksum-free. Kept as the baseline the
    /// chunked format is benchmarked against; new code should use
    /// [`IntervalLog::encode`].
    #[must_use]
    pub fn encode_flat(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * 8 + 8);
        out.push(self.core.index() as u8);
        for e in &self.entries {
            match e {
                LogEntry::InorderBlock { instrs } => {
                    out.push(0);
                    out.extend_from_slice(&instrs.to_le_bytes());
                }
                LogEntry::ReorderedLoad { value } => {
                    out.push(1);
                    out.extend_from_slice(&value.to_le_bytes());
                }
                LogEntry::ReorderedStore {
                    addr,
                    value,
                    offset,
                } => {
                    out.push(2);
                    out.extend_from_slice(&addr.to_le_bytes());
                    out.extend_from_slice(&value.to_le_bytes());
                    out.extend_from_slice(&offset.to_le_bytes());
                }
                LogEntry::ReorderedRmw {
                    loaded,
                    addr,
                    stored,
                    offset,
                } => {
                    out.push(if stored.is_some() { 3 } else { 4 });
                    out.extend_from_slice(&loaded.to_le_bytes());
                    out.extend_from_slice(&addr.to_le_bytes());
                    if let Some(s) = stored {
                        out.extend_from_slice(&s.to_le_bytes());
                    }
                    out.extend_from_slice(&offset.to_le_bytes());
                }
                LogEntry::IntervalFrame { cisn, timestamp } => {
                    out.push(5);
                    out.extend_from_slice(&cisn.to_le_bytes());
                    out.extend_from_slice(&timestamp.to_le_bytes());
                }
            }
        }
        out
    }

    /// Deserializes a log produced by [`IntervalLog::encode_flat`].
    ///
    /// # Errors
    ///
    /// Returns [`LogDecodeError`] on truncated input or an unknown entry
    /// tag.
    pub fn decode_flat(bytes: &[u8]) -> Result<Self, LogDecodeError> {
        let mut i = 0usize;
        let take = |i: &mut usize, n: usize| -> Result<&[u8], LogDecodeError> {
            let s = bytes
                .get(*i..*i + n)
                .ok_or(LogDecodeError::Truncated { at: *i })?;
            *i += n;
            Ok(s)
        };
        let core = CoreId::new(take(&mut i, 1)?[0]);
        let mut entries = Vec::new();
        while i < bytes.len() {
            let tag = take(&mut i, 1)?[0];
            let u64_at = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8 bytes"));
            let entry = match tag {
                0 => LogEntry::InorderBlock {
                    instrs: u32::from_le_bytes(take(&mut i, 4)?.try_into().expect("4 bytes")),
                },
                1 => LogEntry::ReorderedLoad {
                    value: u64_at(take(&mut i, 8)?),
                },
                2 => LogEntry::ReorderedStore {
                    addr: u64_at(take(&mut i, 8)?),
                    value: u64_at(take(&mut i, 8)?),
                    offset: u32::from_le_bytes(take(&mut i, 4)?.try_into().expect("4 bytes")),
                },
                3 | 4 => {
                    let loaded = u64_at(take(&mut i, 8)?);
                    let addr = u64_at(take(&mut i, 8)?);
                    let stored = if tag == 3 {
                        Some(u64_at(take(&mut i, 8)?))
                    } else {
                        None
                    };
                    let offset = u32::from_le_bytes(take(&mut i, 4)?.try_into().expect("4 bytes"));
                    LogEntry::ReorderedRmw {
                        loaded,
                        addr,
                        stored,
                        offset,
                    }
                }
                5 => LogEntry::IntervalFrame {
                    cisn: u16::from_le_bytes(take(&mut i, 2)?.try_into().expect("2 bytes")),
                    timestamp: u64_at(take(&mut i, 8)?),
                },
                other => return Err(LogDecodeError::UnknownTag { tag: other, at: i }),
            };
            entries.push(entry);
        }
        Ok(IntervalLog { core, entries })
    }
}

/// Errors from [`IntervalLog::decode_flat`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogDecodeError {
    /// The byte stream ended mid-entry.
    Truncated {
        /// Offset at which more bytes were needed.
        at: usize,
    },
    /// An entry tag byte was not recognized.
    UnknownTag {
        /// The offending tag.
        tag: u8,
        /// Offset just past the tag.
        at: usize,
    },
}

impl fmt::Display for LogDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogDecodeError::Truncated { at } => write!(f, "log truncated at byte {at}"),
            LogDecodeError::UnknownTag { tag, at } => {
                write!(f, "unknown log entry tag {tag} at byte {at}")
            }
        }
    }
}

impl std::error::Error for LogDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> IntervalLog {
        IntervalLog {
            core: CoreId::new(3),
            entries: vec![
                LogEntry::InorderBlock { instrs: 2 },
                LogEntry::ReorderedLoad { value: 0xdead },
                LogEntry::InorderBlock { instrs: 2 },
                LogEntry::ReorderedStore {
                    addr: 0x100,
                    value: 7,
                    offset: 5,
                },
                LogEntry::ReorderedRmw {
                    loaded: 1,
                    addr: 0x200,
                    stored: None,
                    offset: 2,
                },
                LogEntry::InorderBlock { instrs: 2 },
                LogEntry::IntervalFrame {
                    cisn: 15,
                    timestamp: 123_456,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let log = sample_log();
        let decoded = IntervalLog::decode(&log.encode()).expect("round trip");
        assert_eq!(decoded, log);
    }

    #[test]
    fn flat_encode_decode_round_trip() {
        let log = sample_log();
        let decoded = IntervalLog::decode_flat(&log.encode_flat()).expect("round trip");
        assert_eq!(decoded, log);
    }

    /// Byte offsets in the flat encoding at which an entry (or the
    /// header) ends — the only places a cut can produce a valid stream.
    fn flat_entry_boundaries(log: &IntervalLog) -> Vec<usize> {
        let mut boundaries = vec![1]; // after the core-id header byte
        let mut at = 1usize;
        for e in &log.entries {
            at += match e {
                LogEntry::InorderBlock { .. } => 1 + 4,
                LogEntry::ReorderedLoad { .. } => 1 + 8,
                LogEntry::ReorderedStore { .. } => 1 + 8 + 8 + 4,
                LogEntry::ReorderedRmw { stored, .. } => {
                    1 + 8 + 8 + if stored.is_some() { 8 } else { 0 } + 4
                }
                LogEntry::IntervalFrame { .. } => 1 + 2 + 8,
            };
            boundaries.push(at);
        }
        boundaries
    }

    #[test]
    fn flat_truncation_is_detected_at_every_non_boundary_byte() {
        let log = sample_log();
        let bytes = log.encode_flat();
        let boundaries = flat_entry_boundaries(&log);
        assert_eq!(*boundaries.last().unwrap(), bytes.len());
        for cut in 1..bytes.len() {
            let result = IntervalLog::decode_flat(&bytes[..cut]);
            if boundaries.contains(&cut) {
                let decoded = result
                    .unwrap_or_else(|e| panic!("cut at entry boundary {cut} must decode: {e}"));
                let n = boundaries.iter().position(|&b| b == cut).unwrap();
                assert_eq!(decoded.entries[..], log.entries[..n], "cut at {cut}");
            } else {
                assert!(
                    matches!(result, Err(LogDecodeError::Truncated { .. })),
                    "cut mid-entry at {cut} must yield Truncated, got {result:?}"
                );
            }
        }
    }

    #[test]
    fn chunked_truncation_recovers_all_prior_chunks() {
        let log = sample_log();
        // Force multiple chunks so mid-chunk cuts have prior chunks to
        // recover. A cut mid-chunk must surface as `Truncated` while every
        // entry of every earlier chunk decodes intact; a cut exactly at a
        // chunk boundary is a valid (shorter) stream.
        let bytes = crate::wire::encode_chunked_with(&log, 8);
        for cut in 0..bytes.len() {
            let (recovered, err) = crate::wire::decode_chunked_recover(&bytes[..cut]);
            let at_boundary = err.is_none();
            if !at_boundary {
                assert!(
                    matches!(err, Some(crate::wire::WireError::Truncated { .. })),
                    "cut at {cut} must yield Truncated, got {err:?}"
                );
            }
            assert_eq!(
                recovered.entries[..],
                log.entries[..recovered.entries.len()],
                "cut at {cut}: recovered entries must be an intact prefix"
            );
        }
        // The full stream decodes losslessly.
        let (full, err) = crate::wire::decode_chunked_recover(&bytes);
        assert!(err.is_none());
        assert_eq!(full, log);
    }

    #[test]
    fn flat_unknown_tag_is_detected() {
        let mut bytes = sample_log().encode_flat();
        bytes.push(99);
        assert!(matches!(
            IntervalLog::decode_flat(&bytes),
            Err(LogDecodeError::UnknownTag { tag: 99, .. })
        ));
    }

    #[test]
    fn bit_accounting_matches_figure_6c() {
        assert_eq!(LogEntry::InorderBlock { instrs: 1 }.bits(), 34);
        assert_eq!(LogEntry::ReorderedLoad { value: 0 }.bits(), 66);
        assert_eq!(
            LogEntry::ReorderedStore {
                addr: 0,
                value: 0,
                offset: 0
            }
            .bits(),
            146
        );
        assert_eq!(
            LogEntry::IntervalFrame {
                cisn: 0,
                timestamp: 0
            }
            .bits(),
            82
        );
        let log = sample_log();
        assert_eq!(log.bits(), 34 + 66 + 34 + 146 + 212 + 34 + 82);
        // An offset past the paper's 16-bit field is charged the 32-bit
        // escape width.
        assert_eq!(
            LogEntry::ReorderedStore {
                addr: 0,
                value: 0,
                offset: u32::from(u16::MAX) + 2,
            }
            .bits(),
            162
        );
    }

    #[test]
    fn wide_offsets_round_trip_in_both_codecs() {
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![
                LogEntry::ReorderedStore {
                    addr: 0x100,
                    value: 7,
                    offset: u32::from(u16::MAX) + 2,
                },
                LogEntry::ReorderedRmw {
                    loaded: 1,
                    addr: 0x200,
                    stored: Some(9),
                    offset: u32::MAX,
                },
                LogEntry::IntervalFrame {
                    cisn: 1,
                    timestamp: 10,
                },
            ],
        };
        assert_eq!(IntervalLog::decode(&log.encode()).expect("chunked"), log);
        assert_eq!(
            IntervalLog::decode_flat(&log.encode_flat()).expect("flat"),
            log
        );
    }

    #[test]
    fn counters_count() {
        let log = sample_log();
        assert_eq!(log.intervals(), 1);
        assert_eq!(log.inorder_blocks(), 3);
    }
}
