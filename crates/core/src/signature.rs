use rr_mem::LineAddr;

use crate::hash::H3;

/// A Bloom-filter address signature, as used for the read and write sets of
/// the current interval (paper §4.1, Table 1: each signature is 4 × 256-bit
/// Bloom filters with H3 hash functions).
///
/// Incoming snoops are tested against the signatures; a hit terminates the
/// current interval. Bloom filters never produce false negatives, so no
/// true conflict is ever missed; false positives merely terminate intervals
/// early (more log entries, never incorrectness).
///
/// ```
/// use relaxreplay::Signature;
/// use rr_mem::LineAddr;
///
/// let mut sig = Signature::new(4, 256, 1);
/// let line = LineAddr::from_line_number(42);
/// assert!(!sig.test(line));
/// sig.insert(line);
/// assert!(sig.test(line));
/// sig.clear();
/// assert!(!sig.test(line));
/// ```
#[derive(Clone, Debug)]
pub struct Signature {
    banks: Vec<Vec<u64>>, // each bank: bits/64 words
    hashes: Vec<H3>,
    bits_per_bank: u32,
    insertions: u64,
}

impl Signature {
    /// Creates a signature with `banks` Bloom banks of `bits_per_bank` bits
    /// each, using independent H3 hashes derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_bank` is not a power of two or `banks` is zero.
    #[must_use]
    pub fn new(banks: usize, bits_per_bank: u32, seed: u64) -> Self {
        assert!(banks > 0, "need at least one bank");
        assert!(
            bits_per_bank.is_power_of_two(),
            "bits_per_bank must be a power of two"
        );
        let idx_bits = bits_per_bank.trailing_zeros();
        Signature {
            banks: vec![vec![0u64; (bits_per_bank as usize).div_ceil(64)]; banks],
            hashes: (0..banks)
                .map(|i| H3::new(idx_bits, seed.wrapping_mul(0x9e37).wrapping_add(i as u64)))
                .collect(),
            bits_per_bank,
            insertions: 0,
        }
    }

    /// The paper's configuration: 4 banks × 256 bits.
    #[must_use]
    pub fn splash_default(seed: u64) -> Self {
        Signature::new(4, 256, seed)
    }

    /// Inserts a line address.
    pub fn insert(&mut self, line: LineAddr) {
        self.insertions += 1;
        for (bank, h) in self.banks.iter_mut().zip(&self.hashes) {
            let bit = h.hash(line.line_number()) as usize;
            bank[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// Tests a line address. `false` means *definitely not inserted*;
    /// `true` means *possibly inserted* (Bloom semantics).
    #[must_use]
    pub fn test(&self, line: LineAddr) -> bool {
        self.banks.iter().zip(&self.hashes).all(|(bank, h)| {
            let bit = h.hash(line.line_number()) as usize;
            bank[bit / 64] & (1 << (bit % 64)) != 0
        })
    }

    /// Clears the signature (interval termination).
    pub fn clear(&mut self) {
        for bank in &mut self.banks {
            bank.fill(0);
        }
        self.insertions = 0;
    }

    /// Number of insertions since the last clear.
    #[must_use]
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Fraction of bits set in the densest bank (a saturation measure).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.banks
            .iter()
            .map(|b| {
                b.iter().map(|w| w.count_ones()).sum::<u32>() as f64 / f64::from(self.bits_per_bank)
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn no_false_negatives() {
        let mut sig = Signature::splash_default(3);
        for n in (0..2000).step_by(7) {
            sig.insert(line(n));
        }
        for n in (0..2000).step_by(7) {
            assert!(sig.test(line(n)), "false negative for line {n}");
        }
    }

    #[test]
    fn mostly_negative_when_empty_ish() {
        let mut sig = Signature::splash_default(5);
        for n in 0..8 {
            sig.insert(line(n));
        }
        let false_pos = (1000..2000).filter(|&n| sig.test(line(n))).count();
        assert!(false_pos < 50, "{false_pos} false positives of 1000");
    }

    #[test]
    fn clear_resets_everything() {
        let mut sig = Signature::splash_default(1);
        sig.insert(line(9));
        assert!(sig.insertions() == 1 && sig.occupancy() > 0.0);
        sig.clear();
        assert_eq!(sig.insertions(), 0);
        assert_eq!(sig.occupancy(), 0.0);
        assert!(!sig.test(line(9)));
    }

    #[test]
    fn saturation_raises_false_positives() {
        // The paper's scalability discussion (§5.5) attributes log growth
        // to signature false positives under heavier traffic.
        let mut sig = Signature::splash_default(7);
        for n in 0..2000 {
            sig.insert(line(n));
        }
        let false_pos = (10_000..11_000).filter(|&n| sig.test(line(n))).count();
        assert!(false_pos > 500, "saturated filter should alias heavily");
    }
}
