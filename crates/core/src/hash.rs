//! H3 hash functions over line addresses.
//!
//! The paper's signatures use "4 × 256-bit Bloom filters with H3 hash"
//! (Table 1). An H3 hash computes the output as the XOR of per-input-bit
//! random masks — cheap in hardware (an XOR tree) and pairwise independent,
//! which is what both the Bloom signatures and the Snoop Table need.

/// One H3 hash function mapping a 64-bit line address to `bits`-wide
/// indices.
#[derive(Clone, Debug)]
pub struct H3 {
    masks: [u32; 64],
    out_mask: u32,
}

/// A deterministic 64-bit PRNG (splitmix64) used to derive the H3 masks so
/// the whole system stays reproducible without external dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl H3 {
    /// Creates an H3 hash with `out_bits` output bits, seeded
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `out_bits` is zero or greater than 32.
    #[must_use]
    pub fn new(out_bits: u32, seed: u64) -> Self {
        assert!((1..=32).contains(&out_bits), "out_bits must be in 1..=32");
        let mut state = seed ^ 0xa076_1d64_78bd_642f;
        let out_mask = if out_bits == 32 {
            u32::MAX
        } else {
            (1u32 << out_bits) - 1
        };
        let mut masks = [0u32; 64];
        for m in &mut masks {
            *m = (splitmix64(&mut state) as u32) & out_mask;
        }
        H3 { masks, out_mask }
    }

    /// Hashes a line number to an index in `0..2^out_bits`.
    #[must_use]
    pub fn hash(&self, line_number: u64) -> u32 {
        let mut acc = 0u32;
        let mut v = line_number;
        let mut i = 0;
        while v != 0 {
            if v & 1 != 0 {
                acc ^= self.masks[i];
            }
            v >>= 1;
            i += 1;
        }
        acc & self.out_mask
    }
}

/// A 64-bit FNV-1a content hash over a byte slice.
///
/// This is the second half of the content-addressed chunk key used by
/// the rr-serve store: chunks are keyed by `(crc32, rr_hash64)`, so two
/// payloads must collide on both an error-detection polynomial and an
/// unrelated multiplicative hash before the store would alias them.
/// Deterministic, dependency-free, and stable across platforms.
#[must_use]
pub fn rr_hash64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_hash64_matches_fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(rr_hash64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(rr_hash64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(rr_hash64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn rr_hash64_separates_close_inputs() {
        assert_ne!(rr_hash64(b"chunk-0"), rr_hash64(b"chunk-1"));
        assert_ne!(rr_hash64(&[0u8; 64]), rr_hash64(&[1u8; 64]));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = H3::new(8, 7);
        let b = H3::new(8, 7);
        for line in [0u64, 1, 2, 1000, u64::MAX >> 5] {
            assert_eq!(a.hash(line), b.hash(line));
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = H3::new(8, 1);
        let b = H3::new(8, 2);
        assert!((0..64u64).any(|l| a.hash(l) != b.hash(l)));
    }

    #[test]
    fn output_respects_width() {
        let h = H3::new(6, 3);
        for line in 0..4096u64 {
            assert!(h.hash(line) < 64);
        }
    }

    #[test]
    fn zero_hashes_to_zero() {
        // H3 is linear: the zero input always maps to zero. Callers that
        // care (the Snoop Table) must tolerate line 0 aliasing with nothing.
        let h = H3::new(8, 9);
        assert_eq!(h.hash(0), 0);
    }

    #[test]
    fn spreads_sequential_lines() {
        // Sanity: 256 sequential lines should hit a reasonable number of
        // distinct 8-bit buckets (not collapse to a few).
        let h = H3::new(8, 42);
        let mut seen = std::collections::HashSet::new();
        for line in 0..256u64 {
            seen.insert(h.hash(line));
        }
        assert!(seen.len() > 100, "only {} distinct buckets", seen.len());
    }
}
