//! The `.rrlog` streaming wire format: sinks, sources, and a chunked,
//! checksummed binary codec for interval logs.
//!
//! RelaxReplay's value proposition is a *compact, continuously produced*
//! log, so the on-disk format is built for streaming and durability rather
//! than one-shot serialization (the model of rr and other deployable
//! record/replay systems):
//!
//! * **Header** — magic `RRLG`, a format version, and the recorded core id.
//! * **Chunks** — length-prefixed runs of entries, each closed by a CRC32
//!   over the payload. Entries never span chunks, so a file truncated or
//!   corrupted anywhere still decodes to everything up to the last intact
//!   chunk boundary, with a typed [`WireError`] naming the failing chunk —
//!   never a panic.
//! * **Varint/delta entry encoding** — exploits the paper's Figure 6(c)
//!   field statistics: `InorderBlock` counts and `ReorderedStore` offsets
//!   are small, and frame timestamps are monotonically increasing, so
//!   LEB128 varints plus timestamp deltas shrink the log well below the
//!   flat fixed-width encoding.
//!
//! The [`LogSink`] / [`LogSource`] traits decouple producers from
//! consumers: a [`Recorder`](crate::Recorder) can emit entries into any
//! sink at interval boundaries (streaming mode), and the replay pipeline
//! can consume entries from memory ([`MemorySource`]) or from disk
//! ([`ChunkedReader`]) without knowing the difference.

use core::fmt;
use std::io::{Read, Write};
use std::path::Path;

use rr_mem::CoreId;

use crate::log::{IntervalLog, LogEntry};

/// File magic, first four bytes of every `.rrlog`.
pub const MAGIC: [u8; 4] = *b"RRLG";

/// Current wire-format version.
///
/// Version history:
/// * **1** — initial format; reordered-entry offsets capped at 16 bits.
/// * **2** — offsets widened to 32 bits so a perform-to-count distance
///   ≥ 65536 intervals round-trips exactly. Offsets were always
///   varint-encoded, so the byte stream is unchanged — only the decoder's
///   acceptance range grew, and v1 streams decode unmodified.
pub const VERSION: u16 = 2;

/// Oldest wire-format version this decoder still reads.
pub const MIN_VERSION: u16 = 1;

/// Whether this decoder understands header version `version`.
#[must_use]
pub fn version_supported(version: u16) -> bool {
    (MIN_VERSION..=VERSION).contains(&version)
}

/// Default chunk payload target in bytes: a chunk is closed at the first
/// entry boundary at or past this size.
pub const DEFAULT_CHUNK_BYTES: usize = 4096;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the checksum closing every chunk.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

/// Appends `v` to `buf` as an unsigned LEB128 varint (1 byte for values
/// below 128 — the common case for block sizes and store offsets).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `buf` starting at `*pos`,
/// advancing `*pos`. Returns `None` on truncation or overflow past 64
/// bits.
#[must_use]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors from encoding or decoding the `.rrlog` wire format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// An underlying I/O operation failed (message carries the detail).
    Io(String),
    /// The stream does not start with the `RRLG` magic.
    BadMagic,
    /// The header's version is not one this decoder understands.
    UnsupportedVersion {
        /// The version found in the header.
        version: u16,
    },
    /// The stream ended mid-header or mid-chunk. Every chunk before
    /// `chunk` decoded intact.
    Truncated {
        /// Index of the chunk that could not be completed (0-based).
        chunk: usize,
    },
    /// A chunk's CRC32 did not match its payload. Every chunk before
    /// `chunk` decoded intact.
    CrcMismatch {
        /// Index of the corrupt chunk (0-based).
        chunk: usize,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload as read.
        computed: u32,
    },
    /// A chunk passed its CRC but contained an entry the decoder does not
    /// recognize — a version-skew bug, not random corruption.
    Corrupt {
        /// Index of the chunk holding the malformed entry (0-based).
        chunk: usize,
        /// Human-readable detail (offending tag, varint overflow, …).
        detail: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(msg) => write!(f, "i/o error: {msg}"),
            WireError::BadMagic => write!(f, "not an .rrlog stream (bad magic)"),
            WireError::UnsupportedVersion { version } => {
                write!(f, "unsupported .rrlog version {version}")
            }
            WireError::Truncated { chunk } => {
                write!(f, "stream truncated in chunk {chunk} (prior chunks intact)")
            }
            WireError::CrcMismatch {
                chunk,
                stored,
                computed,
            } => write!(
                f,
                "chunk {chunk} CRC mismatch (stored {stored:#010x}, computed {computed:#010x}; prior chunks intact)"
            ),
            WireError::Corrupt { chunk, detail } => {
                write!(f, "chunk {chunk} is malformed: {detail}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Sink / source traits
// ---------------------------------------------------------------------------

/// A consumer of log entries: where a recorder streams its log.
///
/// Entries arrive in counting order; [`LogSink::close`] is called exactly
/// once, after the final [`LogEntry::IntervalFrame`], and must flush any
/// buffered state.
pub trait LogSink {
    /// Accepts the next entry in counting order.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the entry could not be durably accepted
    /// (e.g. the backing writer failed).
    fn emit(&mut self, entry: &LogEntry) -> Result<(), WireError>;

    /// Flushes and finalizes the sink. Called once, after the last entry.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if flushing failed.
    fn close(&mut self) -> Result<(), WireError>;
}

/// A producer of log entries: what the patch/replay pipeline consumes.
///
/// Yields entries in counting order until exhausted (`Ok(None)`); the
/// recorded core's identity travels with the stream.
pub trait LogSource {
    /// The processor this log belongs to.
    fn core(&self) -> CoreId;

    /// The next entry, `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or corruption; entries
    /// yielded before the error are all intact.
    fn next_entry(&mut self) -> Result<Option<LogEntry>, WireError>;
}

/// Reads an entire source into an [`IntervalLog`].
///
/// # Errors
///
/// Propagates the first [`WireError`] from the source.
pub fn read_log(source: &mut dyn LogSource) -> Result<IntervalLog, WireError> {
    let mut log = IntervalLog::new(source.core());
    while let Some(e) = source.next_entry()? {
        log.entries.push(e);
    }
    Ok(log)
}

/// A [`LogSource`] over an in-memory [`IntervalLog`] — the adapter that
/// lets the slice-based record path feed the same streaming consumers as
/// the disk path.
#[derive(Debug)]
pub struct MemorySource<'a> {
    core: CoreId,
    entries: std::slice::Iter<'a, LogEntry>,
}

impl<'a> MemorySource<'a> {
    /// A source yielding `log`'s entries in order.
    #[must_use]
    pub fn new(log: &'a IntervalLog) -> Self {
        MemorySource {
            core: log.core,
            entries: log.entries.iter(),
        }
    }
}

impl LogSource for MemorySource<'_> {
    fn core(&self) -> CoreId {
        self.core
    }

    fn next_entry(&mut self) -> Result<Option<LogEntry>, WireError> {
        Ok(self.entries.next().copied())
    }
}

/// A [`LogSink`] that simply collects entries in memory (tests and
/// tooling; production streaming uses [`ChunkedWriter`]).
#[derive(Debug, Default)]
pub struct VecSink {
    /// Entries emitted so far, in counting order.
    pub entries: Vec<LogEntry>,
    /// Whether [`LogSink::close`] has been called.
    pub closed: bool,
}

impl LogSink for VecSink {
    fn emit(&mut self, entry: &LogEntry) -> Result<(), WireError> {
        self.entries.push(*entry);
        Ok(())
    }

    fn close(&mut self) -> Result<(), WireError> {
        self.closed = true;
        Ok(())
    }
}

/// A [`LogSink`] that accepts a fixed number of entries and then fails
/// every further emit with an injected I/O error — fault injection for the
/// recorder's poisoning path (rr-check's `sink-fault` pressure mode and
/// the mid-record-failure regression tests).
///
/// The accepted prefix is kept behind a shared handle
/// ([`FailingSink::handle`]) so callers can inspect what reached "disk"
/// after the sink was boxed away into a recorder, including from another
/// thread (the sweep engine records on worker threads).
#[derive(Debug)]
pub struct FailingSink {
    accepted: std::sync::Arc<std::sync::Mutex<Vec<LogEntry>>>,
    fail_after: usize,
}

impl FailingSink {
    /// A sink that accepts exactly `fail_after` entries before failing.
    #[must_use]
    pub fn new(fail_after: usize) -> Self {
        FailingSink {
            accepted: std::sync::Arc::default(),
            fail_after,
        }
    }

    /// A shared view of the entries accepted so far; clone before boxing
    /// the sink into a recorder.
    #[must_use]
    pub fn handle(&self) -> std::sync::Arc<std::sync::Mutex<Vec<LogEntry>>> {
        std::sync::Arc::clone(&self.accepted)
    }
}

impl LogSink for FailingSink {
    fn emit(&mut self, entry: &LogEntry) -> Result<(), WireError> {
        let mut accepted = self.accepted.lock().expect("sink lock");
        if accepted.len() >= self.fail_after {
            return Err(WireError::Io("injected sink fault".into()));
        }
        accepted.push(*entry);
        Ok(())
    }

    fn close(&mut self) -> Result<(), WireError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Entry codec (within a chunk payload)
// ---------------------------------------------------------------------------

const TAG_INORDER: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_RMW_STORED: u8 = 3;
const TAG_RMW_FAILED: u8 = 4;
const TAG_FRAME: u8 = 5;

/// Codec state that persists across chunk boundaries: the previous frame
/// timestamp (frames are delta-encoded — timestamps are monotone cycle
/// counts, so deltas are small).
#[derive(Clone, Copy, Debug, Default)]
struct DeltaState {
    prev_timestamp: u64,
}

fn encode_entry(buf: &mut Vec<u8>, e: &LogEntry, state: &mut DeltaState) {
    match e {
        LogEntry::InorderBlock { instrs } => {
            buf.push(TAG_INORDER);
            write_varint(buf, u64::from(*instrs));
        }
        LogEntry::ReorderedLoad { value } => {
            buf.push(TAG_LOAD);
            write_varint(buf, *value);
        }
        LogEntry::ReorderedStore {
            addr,
            value,
            offset,
        } => {
            buf.push(TAG_STORE);
            write_varint(buf, *addr);
            write_varint(buf, *value);
            write_varint(buf, u64::from(*offset));
        }
        LogEntry::ReorderedRmw {
            loaded,
            addr,
            stored,
            offset,
        } => {
            buf.push(if stored.is_some() {
                TAG_RMW_STORED
            } else {
                TAG_RMW_FAILED
            });
            write_varint(buf, *loaded);
            write_varint(buf, *addr);
            if let Some(s) = stored {
                write_varint(buf, *s);
            }
            write_varint(buf, u64::from(*offset));
        }
        LogEntry::IntervalFrame { cisn, timestamp } => {
            buf.push(TAG_FRAME);
            write_varint(buf, u64::from(*cisn));
            write_varint(buf, timestamp.wrapping_sub(state.prev_timestamp));
            state.prev_timestamp = *timestamp;
        }
    }
}

fn decode_entry(
    buf: &[u8],
    pos: &mut usize,
    state: &mut DeltaState,
    chunk: usize,
) -> Result<LogEntry, WireError> {
    let corrupt = |detail| WireError::Corrupt { chunk, detail };
    let tag = *buf.get(*pos).ok_or(corrupt("entry tag missing"))?;
    *pos += 1;
    let varint =
        |pos: &mut usize| read_varint(buf, pos).ok_or(corrupt("varint truncated or overlong"));
    let entry = match tag {
        TAG_INORDER => LogEntry::InorderBlock {
            instrs: u32::try_from(varint(pos)?).map_err(|_| corrupt("block size exceeds u32"))?,
        },
        TAG_LOAD => LogEntry::ReorderedLoad {
            value: varint(pos)?,
        },
        TAG_STORE => LogEntry::ReorderedStore {
            addr: varint(pos)?,
            value: varint(pos)?,
            offset: u32::try_from(varint(pos)?).map_err(|_| corrupt("offset exceeds u32"))?,
        },
        TAG_RMW_STORED | TAG_RMW_FAILED => {
            let loaded = varint(pos)?;
            let addr = varint(pos)?;
            let stored = if tag == TAG_RMW_STORED {
                Some(varint(pos)?)
            } else {
                None
            };
            let offset = u32::try_from(varint(pos)?).map_err(|_| corrupt("offset exceeds u32"))?;
            LogEntry::ReorderedRmw {
                loaded,
                addr,
                stored,
                offset,
            }
        }
        TAG_FRAME => {
            let cisn = u16::try_from(varint(pos)?).map_err(|_| corrupt("cisn exceeds u16"))?;
            let delta = varint(pos)?;
            let timestamp = state.prev_timestamp.wrapping_add(delta);
            state.prev_timestamp = timestamp;
            LogEntry::IntervalFrame { cisn, timestamp }
        }
        _ => return Err(corrupt("unknown entry tag")),
    };
    Ok(entry)
}

// ---------------------------------------------------------------------------
// Chunked writer
// ---------------------------------------------------------------------------

/// Streams entries into a `Write` as the chunked `.rrlog` format.
///
/// The header is written on construction; entries accumulate into an
/// in-memory payload buffer that is framed (length prefix + CRC32) and
/// flushed whenever it reaches the chunk target. [`LogSink::close`]
/// flushes the final partial chunk.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
    buf: Vec<u8>,
    state: DeltaState,
    chunk_bytes: usize,
    chunks_written: usize,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the `.rrlog` header for `core` and returns the sink.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError::Io`] if the header cannot be written.
    pub fn new(w: W, core: CoreId) -> Result<Self, WireError> {
        Self::with_chunk_bytes(w, core, DEFAULT_CHUNK_BYTES)
    }

    /// As [`ChunkedWriter::new`] with a custom chunk payload target
    /// (smaller chunks recover more of a damaged file; larger chunks
    /// amortize framing overhead).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError::Io`] if the header cannot be written.
    pub fn with_chunk_bytes(mut w: W, core: CoreId, chunk_bytes: usize) -> Result<Self, WireError> {
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&[core.index() as u8])?;
        Ok(ChunkedWriter {
            w,
            buf: Vec::with_capacity(chunk_bytes + 64),
            state: DeltaState::default(),
            chunk_bytes: chunk_bytes.max(1),
            chunks_written: 0,
        })
    }

    /// Chunks written (closed) so far.
    #[must_use]
    pub fn chunks_written(&self) -> usize {
        self.chunks_written
    }

    fn flush_chunk(&mut self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let len = u32::try_from(self.buf.len())
            .map_err(|_| WireError::Io("chunk payload exceeds u32::MAX bytes".to_string()))?;
        self.w.write_all(&len.to_le_bytes())?;
        self.w.write_all(&self.buf)?;
        self.w.write_all(&crc32(&self.buf).to_le_bytes())?;
        self.buf.clear();
        self.chunks_written += 1;
        Ok(())
    }
}

impl<W: Write> LogSink for ChunkedWriter<W> {
    fn emit(&mut self, entry: &LogEntry) -> Result<(), WireError> {
        encode_entry(&mut self.buf, entry, &mut self.state);
        if self.buf.len() >= self.chunk_bytes {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), WireError> {
        self.flush_chunk()?;
        self.w.flush()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Chunked reader
// ---------------------------------------------------------------------------

/// Streams entries out of a `Read` carrying the chunked `.rrlog` format.
///
/// Chunks are read and CRC-verified one at a time; a truncated or corrupt
/// chunk surfaces as a typed [`WireError`] *after* every entry of every
/// prior chunk has been yielded intact.
#[derive(Debug)]
pub struct ChunkedReader<R: Read> {
    r: R,
    core: CoreId,
    chunk: Vec<u8>,
    pos: usize,
    state: DeltaState,
    /// Index of the chunk currently being decoded (the next to be read if
    /// the buffer is exhausted).
    chunk_index: usize,
    eof: bool,
}

impl<R: Read> ChunkedReader<R> {
    /// Reads and validates the `.rrlog` header.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`]
    /// for foreign streams, [`WireError::Truncated`] if the header itself
    /// is cut short.
    pub fn new(mut r: R) -> Result<Self, WireError> {
        let mut header = [0u8; 7];
        read_exact_or(&mut r, &mut header, WireError::Truncated { chunk: 0 })?;
        if header[..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if !version_supported(version) {
            return Err(WireError::UnsupportedVersion { version });
        }
        Ok(ChunkedReader {
            r,
            core: CoreId::new(header[6]),
            chunk: Vec::new(),
            pos: 0,
            state: DeltaState::default(),
            chunk_index: 0,
            eof: false,
        })
    }

    /// Loads the next chunk into the buffer. `Ok(false)` at a clean end of
    /// stream.
    fn load_chunk(&mut self) -> Result<bool, WireError> {
        let chunk = self.chunk_index;
        let mut len_bytes = [0u8; 4];
        match self.r.read(&mut len_bytes) {
            Ok(0) => return Ok(false), // clean EOF at a chunk boundary
            Ok(n) => {
                read_exact_or(
                    &mut self.r,
                    &mut len_bytes[n..],
                    WireError::Truncated { chunk },
                )?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                read_exact_or(&mut self.r, &mut len_bytes, WireError::Truncated { chunk })?;
            }
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        self.chunk.resize(len, 0);
        read_exact_or(&mut self.r, &mut self.chunk, WireError::Truncated { chunk })?;
        let mut crc_bytes = [0u8; 4];
        read_exact_or(&mut self.r, &mut crc_bytes, WireError::Truncated { chunk })?;
        let stored = u32::from_le_bytes(crc_bytes);
        let computed = crc32(&self.chunk);
        if stored != computed {
            return Err(WireError::CrcMismatch {
                chunk,
                stored,
                computed,
            });
        }
        self.pos = 0;
        Ok(true)
    }
}

fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], on_eof: WireError) -> Result<(), WireError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(on_eof),
        Err(e) => Err(e.into()),
    }
}

impl<R: Read> LogSource for ChunkedReader<R> {
    fn core(&self) -> CoreId {
        self.core
    }

    fn next_entry(&mut self) -> Result<Option<LogEntry>, WireError> {
        if self.eof {
            return Ok(None);
        }
        while self.pos >= self.chunk.len() {
            match self.load_chunk() {
                Ok(true) => {}
                Ok(false) => {
                    self.eof = true;
                    return Ok(None);
                }
                Err(e) => {
                    self.eof = true;
                    return Err(e);
                }
            }
        }
        let entry = decode_entry(
            &self.chunk,
            &mut self.pos,
            &mut self.state,
            self.chunk_index,
        );
        if self.pos >= self.chunk.len() {
            // Chunk fully consumed; the next read starts the next one.
            self.chunk_index += 1;
            self.chunk.clear();
            self.pos = 0;
        }
        match entry {
            Ok(e) => Ok(Some(e)),
            Err(e) => {
                self.eof = true;
                Err(e)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-log helpers
// ---------------------------------------------------------------------------

/// Encodes a whole log as one chunked `.rrlog` byte stream.
#[must_use]
pub fn encode_chunked(log: &IntervalLog) -> Vec<u8> {
    encode_chunked_with(log, DEFAULT_CHUNK_BYTES)
}

/// As [`encode_chunked`] with an explicit chunk payload target.
///
/// # Panics
///
/// Never panics: writing to a `Vec<u8>` cannot fail.
#[must_use]
pub fn encode_chunked_with(log: &IntervalLog, chunk_bytes: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(log.entries.len() * 3 + 16);
    let mut w = ChunkedWriter::with_chunk_bytes(&mut out, log.core, chunk_bytes)
        .expect("Vec<u8> writes cannot fail");
    for e in &log.entries {
        w.emit(e).expect("Vec<u8> writes cannot fail");
    }
    w.close().expect("Vec<u8> writes cannot fail");
    out
}

/// Decodes a chunked `.rrlog` byte stream, requiring it intact end to end.
///
/// # Errors
///
/// Returns the first [`WireError`]; use [`decode_chunked_recover`] to also
/// obtain the entries recovered before the failure point.
pub fn decode_chunked(bytes: &[u8]) -> Result<IntervalLog, WireError> {
    let mut reader = ChunkedReader::new(bytes)?;
    read_log(&mut reader)
}

/// Decodes as much of a (possibly truncated or corrupted) `.rrlog` stream
/// as possible: every entry up to the last intact chunk boundary, plus the
/// error that stopped decoding (`None` if the stream was whole).
///
/// Header failures recover an empty log for core 0.
#[must_use]
pub fn decode_chunked_recover(bytes: &[u8]) -> (IntervalLog, Option<WireError>) {
    let mut reader = match ChunkedReader::new(bytes) {
        Ok(r) => r,
        Err(e) => return (IntervalLog::new(CoreId::new(0)), Some(e)),
    };
    let mut log = IntervalLog::new(reader.core());
    loop {
        match reader.next_entry() {
            Ok(Some(e)) => log.entries.push(e),
            Ok(None) => return (log, None),
            Err(e) => return (log, Some(e)),
        }
    }
}

/// One chunk's position and health inside an `.rrlog` stream, as reported
/// by [`chunk_map`] — the basis of `rr-inspect stat`'s chunk table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Chunk index (0-based), matching the indices in [`WireError`]s.
    pub index: usize,
    /// Byte offset of the chunk's 4-byte length prefix within the stream.
    pub offset: usize,
    /// Payload bytes (excluding the length prefix and trailing CRC).
    pub payload_bytes: usize,
    /// Entries decoded from the payload (0 if the CRC failed — a corrupt
    /// payload is never entry-decoded).
    pub entries: usize,
    /// Whether the stored CRC32 matched the payload as read.
    pub crc_ok: bool,
}

/// Walks an `.rrlog` byte stream chunk by chunk, reporting each chunk's
/// offset, size, entry count, and CRC health without requiring the stream
/// to be intact: a CRC mismatch marks that chunk `crc_ok: false` and the
/// walk continues at the next length-prefixed boundary, so one flipped
/// byte does not hide the chunks after it.
///
/// Returns the recorded core, the per-chunk map, and the first error that
/// made further *entry decoding* unreliable (`None` for a clean stream;
/// truncation ends the walk, a CRC mismatch or malformed entry is noted
/// and the walk continues).
///
/// # Errors
///
/// Returns a [`WireError`] only if the 7-byte header itself is missing,
/// foreign, or version-skewed — with no header there is nothing to map.
pub fn chunk_map(bytes: &[u8]) -> Result<(CoreId, Vec<ChunkInfo>, Option<WireError>), WireError> {
    if bytes.len() < 7 {
        return Err(WireError::Truncated { chunk: 0 });
    }
    if bytes[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if !version_supported(version) {
        return Err(WireError::UnsupportedVersion { version });
    }
    let core = CoreId::new(bytes[6]);

    let mut map = Vec::new();
    let mut first_err = None;
    let note = |e: WireError, slot: &mut Option<WireError>| {
        if slot.is_none() {
            *slot = Some(e);
        }
    };
    let mut state = DeltaState::default();
    let mut pos = 7usize;
    let mut index = 0usize;
    while pos < bytes.len() {
        let offset = pos;
        let Some(len_bytes) = bytes.get(pos..pos + 4) else {
            note(WireError::Truncated { chunk: index }, &mut first_err);
            break;
        };
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        pos += 4;
        let Some(payload) = bytes.get(pos..pos + len) else {
            note(WireError::Truncated { chunk: index }, &mut first_err);
            break;
        };
        pos += len;
        let Some(crc_bytes) = bytes.get(pos..pos + 4) else {
            note(WireError::Truncated { chunk: index }, &mut first_err);
            break;
        };
        pos += 4;
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let computed = crc32(payload);
        let crc_ok = stored == computed;
        let mut entries = 0usize;
        if crc_ok {
            let mut p = 0usize;
            while p < payload.len() {
                match decode_entry(payload, &mut p, &mut state, index) {
                    Ok(_) => entries += 1,
                    Err(e) => {
                        note(e, &mut first_err);
                        break;
                    }
                }
            }
        } else {
            note(
                WireError::CrcMismatch {
                    chunk: index,
                    stored,
                    computed,
                },
                &mut first_err,
            );
        }
        map.push(ChunkInfo {
            index,
            offset,
            payload_bytes: len,
            entries,
            crc_ok,
        });
        index += 1;
    }
    Ok((core, map, first_err))
}

/// Writes `log` to `path` as an `.rrlog` file.
///
/// # Errors
///
/// Returns a [`WireError::Io`] on any filesystem failure.
pub fn write_rrlog(path: &Path, log: &IntervalLog) -> Result<(), WireError> {
    let file = std::fs::File::create(path)?;
    let mut w = ChunkedWriter::new(std::io::BufWriter::new(file), log.core)?;
    for e in &log.entries {
        w.emit(e)?;
    }
    w.close()
}

/// Reads an `.rrlog` file written by [`write_rrlog`] (or any
/// [`ChunkedWriter`]).
///
/// # Errors
///
/// Returns a [`WireError`] on I/O failure, truncation, or corruption.
pub fn read_rrlog(path: &Path) -> Result<IntervalLog, WireError> {
    let file = std::fs::File::open(path)?;
    let mut r = ChunkedReader::new(std::io::BufReader::new(file))?;
    read_log(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<LogEntry> {
        vec![
            LogEntry::InorderBlock { instrs: 2 },
            LogEntry::ReorderedLoad { value: 0xdead_beef },
            LogEntry::InorderBlock { instrs: 4096 },
            LogEntry::ReorderedStore {
                addr: 0x1_0000,
                value: 7,
                offset: 5,
            },
            LogEntry::ReorderedRmw {
                loaded: 1,
                addr: 0x200,
                stored: Some(u64::MAX),
                offset: 2,
            },
            LogEntry::ReorderedRmw {
                loaded: 9,
                addr: 0x208,
                stored: None,
                offset: 1,
            },
            LogEntry::IntervalFrame {
                cisn: 15,
                timestamp: 123_456,
            },
            LogEntry::InorderBlock { instrs: 1 },
            LogEntry::IntervalFrame {
                cisn: 16,
                timestamp: 123_490,
            },
        ]
    }

    fn sample_log() -> IntervalLog {
        IntervalLog {
            core: CoreId::new(3),
            entries: sample_entries(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varints_round_trip() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for v in values {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 11 continuation bytes cannot fit in a u64.
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn round_trip_is_lossless_and_byte_identical() {
        let log = sample_log();
        let bytes = encode_chunked(&log);
        let decoded = decode_chunked(&bytes).expect("decodes");
        assert_eq!(decoded, log);
        assert_eq!(encode_chunked(&decoded), bytes, "re-encode is identical");
    }

    #[test]
    fn empty_log_round_trips() {
        let log = IntervalLog::new(CoreId::new(7));
        let bytes = encode_chunked(&log);
        assert_eq!(bytes.len(), 7, "header only, no chunks");
        let decoded = decode_chunked(&bytes).expect("decodes");
        assert_eq!(decoded, log);
    }

    #[test]
    fn multi_chunk_streams_round_trip() {
        // Tiny chunks force many chunk boundaries.
        let log = sample_log();
        for chunk_bytes in [1, 2, 3, 8, 64] {
            let bytes = encode_chunked_with(&log, chunk_bytes);
            let decoded = decode_chunked(&bytes).expect("decodes");
            assert_eq!(decoded, log, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = encode_chunked(&sample_log());
        bytes[0] = b'X';
        assert_eq!(decode_chunked(&bytes), Err(WireError::BadMagic));

        let mut bytes = encode_chunked(&sample_log());
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_chunked(&bytes),
            Err(WireError::UnsupportedVersion { .. })
        ));
    }

    /// Byte offsets at which a cut leaves a *complete* stream: the end of
    /// the header and the end of each chunk's trailing CRC.
    fn chunk_boundaries(bytes: &[u8]) -> Vec<usize> {
        let mut boundaries = vec![7];
        let mut pos = 7usize;
        while pos < bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4 + len + 4;
            boundaries.push(pos);
        }
        boundaries
    }

    #[test]
    fn truncation_recovers_prior_chunks() {
        let log = sample_log();
        let bytes = encode_chunked_with(&log, 4); // several small chunks
        let boundaries = chunk_boundaries(&bytes);
        assert!(boundaries.len() > 3, "want several chunks");
        for cut in 0..bytes.len() {
            let (recovered, err) = decode_chunked_recover(&bytes[..cut]);
            if boundaries.contains(&cut) {
                assert!(err.is_none(), "cut at chunk boundary {cut}: {err:?}");
            } else {
                assert!(
                    matches!(err, Some(WireError::Truncated { .. })),
                    "cut mid-chunk at {cut} must yield Truncated, got {err:?}"
                );
            }
            assert_eq!(
                recovered.entries[..],
                log.entries[..recovered.entries.len()],
                "cut at {cut}: recovered entries must be an intact prefix"
            );
        }
        // Cutting the very last CRC byte still recovers all earlier chunks.
        let (recovered, err) = decode_chunked_recover(&bytes[..bytes.len() - 1]);
        assert!(matches!(err, Some(WireError::Truncated { .. })));
        assert!(!recovered.entries.is_empty());
    }

    #[test]
    fn every_payload_byte_flip_is_caught() {
        let log = sample_log();
        let bytes = encode_chunked(&log); // one chunk
                                          // Header is 7 bytes, then 4 length bytes; payload follows.
        let payload_start = 7 + 4;
        let payload_end = bytes.len() - 4; // CRC trails
        for i in payload_start..payload_end {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            match decode_chunked(&corrupted) {
                Err(WireError::CrcMismatch { chunk: 0, .. }) => {}
                other => panic!("flip at {i}: expected CrcMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn crc_flip_itself_is_caught() {
        let log = sample_log();
        let mut bytes = encode_chunked(&log);
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert!(matches!(
            decode_chunked(&bytes),
            Err(WireError::CrcMismatch { chunk: 0, .. })
        ));
    }

    #[test]
    fn sink_and_source_agree_with_vec_sink() {
        let log = sample_log();
        let mut sink = VecSink::default();
        for e in &log.entries {
            sink.emit(e).expect("vec sink");
        }
        sink.close().expect("vec sink");
        assert!(sink.closed);
        assert_eq!(sink.entries, log.entries);

        let mut src = MemorySource::new(&log);
        assert_eq!(src.core(), log.core);
        let round = read_log(&mut src).expect("memory source");
        assert_eq!(round, log);
    }

    #[test]
    fn chunk_map_reports_every_chunk_of_a_clean_stream() {
        let log = sample_log();
        let bytes = encode_chunked_with(&log, 4);
        let (core, map, err) = chunk_map(&bytes).expect("header ok");
        assert_eq!(core, log.core);
        assert!(err.is_none());
        assert!(map.len() > 3, "want several chunks");
        assert_eq!(
            map.iter().map(|c| c.entries).sum::<usize>(),
            log.entries.len()
        );
        assert!(map.iter().all(|c| c.crc_ok));
        // Offsets tile the stream exactly: header, then framed chunks.
        let mut pos = 7;
        for c in &map {
            assert_eq!(c.offset, pos);
            pos += 4 + c.payload_bytes + 4;
        }
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn chunk_map_survives_a_corrupt_middle_chunk() {
        let log = sample_log();
        let bytes = encode_chunked_with(&log, 4);
        let (_, clean, _) = chunk_map(&bytes).expect("header ok");
        assert!(clean.len() >= 3);
        // Flip a payload byte of the second chunk.
        let mut corrupted = bytes.clone();
        corrupted[clean[1].offset + 4] ^= 0x40;
        let (_, map, err) = chunk_map(&corrupted).expect("header ok");
        assert_eq!(map.len(), clean.len(), "later chunks still mapped");
        assert!(map[0].crc_ok && !map[1].crc_ok && map[2].crc_ok);
        assert_eq!(map[1].entries, 0, "corrupt payloads are not decoded");
        assert!(matches!(err, Some(WireError::CrcMismatch { chunk: 1, .. })));
    }

    #[test]
    fn chunk_map_flags_truncation_and_foreign_streams() {
        let log = sample_log();
        let bytes = encode_chunked(&log);
        let (_, map, err) = chunk_map(&bytes[..bytes.len() - 2]).expect("header ok");
        assert!(map.is_empty(), "the only chunk is cut short");
        assert!(matches!(err, Some(WireError::Truncated { chunk: 0 })));

        assert_eq!(chunk_map(b"RRL"), Err(WireError::Truncated { chunk: 0 }));
        assert_eq!(chunk_map(b"NOPEnope"), Err(WireError::BadMagic));
    }

    #[test]
    fn file_round_trip() {
        let log = sample_log();
        let dir = std::env::temp_dir().join("rr_wire_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("core3.rrlog");
        write_rrlog(&path, &log).expect("writes");
        let read = read_rrlog(&path).expect("reads");
        assert_eq!(read, log);
    }

    #[test]
    fn chunked_is_smaller_than_flat() {
        // A realistic mix: mostly InorderBlocks with small counts and
        // frames with small timestamp deltas.
        let mut log = IntervalLog::new(CoreId::new(0));
        for i in 0..1000u64 {
            log.entries.push(LogEntry::InorderBlock {
                instrs: 50 + (i % 100) as u32,
            });
            if i % 7 == 0 {
                log.entries.push(LogEntry::ReorderedLoad { value: i * 3 });
            }
            log.entries.push(LogEntry::IntervalFrame {
                cisn: (i % 65_536) as u16,
                timestamp: i * 900,
            });
        }
        let flat = log.encode_flat().len();
        let chunked = encode_chunked(&log).len();
        assert!(
            chunked * 2 < flat,
            "chunked ({chunked} B) should be well under half of flat ({flat} B)"
        );
    }
}
