//! The `.rrlog` streaming wire format: sinks, sources, and a chunked,
//! checksummed binary codec for interval logs.
//!
//! RelaxReplay's value proposition is a *compact, continuously produced*
//! log, so the on-disk format is built for streaming and durability rather
//! than one-shot serialization (the model of rr and other deployable
//! record/replay systems):
//!
//! * **Header** — magic `RRLG`, a format version, and the recorded core id.
//! * **Chunks** — length-prefixed runs of entries, each closed by a CRC32
//!   over the payload. Entries never span chunks, so a file truncated or
//!   corrupted anywhere still decodes to everything up to the last intact
//!   chunk boundary, with a typed [`WireError`] naming the failing chunk —
//!   never a panic.
//! * **Varint/delta entry encoding** — exploits the paper's Figure 6(c)
//!   field statistics: `InorderBlock` counts and `ReorderedStore` offsets
//!   are small, and frame timestamps are monotonically increasing, so
//!   LEB128 varints plus timestamp deltas shrink the log well below the
//!   flat fixed-width encoding.
//!
//! The [`LogSink`] / [`LogSource`] traits decouple producers from
//! consumers: a [`Recorder`](crate::Recorder) can emit entries into any
//! sink at interval boundaries (streaming mode), and the replay pipeline
//! can consume entries from memory ([`MemorySource`]) or from disk
//! ([`ChunkedReader`]) without knowing the difference.

use core::fmt;
use std::io::{Read, Write};
use std::path::Path;

use rr_mem::CoreId;

use crate::log::{IntervalLog, LogEntry};

/// File magic, first four bytes of every `.rrlog`.
pub const MAGIC: [u8; 4] = *b"RRLG";

/// Current wire-format version.
///
/// Version history:
/// * **1** — initial format; reordered-entry offsets capped at 16 bits.
/// * **2** — offsets widened to 32 bits so a perform-to-count distance
///   ≥ 65536 intervals round-trips exactly. Offsets were always
///   varint-encoded, so the byte stream is unchanged — only the decoder's
///   acceptance range grew, and v1 streams decode unmodified.
/// * **3** — chunk-independent delta coding: the frame-timestamp delta
///   state resets at every chunk boundary, so the first `IntervalFrame` of
///   each chunk carries its *absolute* timestamp. Chunks now decode in
///   isolation, which is what makes range-partitioned parallel decode
///   ([`decode_chunked_range`]) and exact post-damage salvage
///   ([`decode_chunked_skip`]) possible. v1/v2 streams still decode with
///   the old cross-chunk state; only the encoder moved.
pub const VERSION: u16 = 3;

/// First wire version whose chunks are self-contained (delta state resets
/// at every chunk boundary). Streams at or above this version can be
/// decoded chunk-by-chunk in any order.
pub const CHUNK_INDEPENDENT_VERSION: u16 = 3;

/// Oldest wire-format version this decoder still reads.
pub const MIN_VERSION: u16 = 1;

/// Whether this decoder understands header version `version`.
#[must_use]
pub fn version_supported(version: u16) -> bool {
    (MIN_VERSION..=VERSION).contains(&version)
}

/// Default chunk payload target in bytes: a chunk is closed at the first
/// entry boundary at or past this size.
pub const DEFAULT_CHUNK_BYTES: usize = 4096;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Slicing-by-16 lookup tables. `tables[0]` is the classic one-byte table;
/// `tables[k][i]` extends the CRC of byte `i` by `k` zero bytes, so sixteen
/// input bytes fold through `tables[15]..tables[0]` in one step.
const fn crc32_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    tables[0] = crc32_table();
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

const CRC32_TABLES: [[u32; 256]; 16] = crc32_tables();

/// CRC32 (IEEE) of `bytes` — the checksum closing every chunk.
///
/// Implemented with slicing-by-16: the hot loop consumes sixteen bytes per
/// iteration through sixteen precomputed tables (16 KiB, L1-resident)
/// instead of one byte through one table, breaking the byte-serial
/// dependency chain into four independent 32-bit lanes per step.
/// Bit-identical to [`crc32_reference`], which the differential tests pin
/// it against.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(16);
    for ch in &mut chunks {
        let a = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let b = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        let d = u32::from_le_bytes([ch[8], ch[9], ch[10], ch[11]]);
        let e = u32::from_le_bytes([ch[12], ch[13], ch[14], ch[15]]);
        c = t[15][(a & 0xFF) as usize]
            ^ t[14][((a >> 8) & 0xFF) as usize]
            ^ t[13][((a >> 16) & 0xFF) as usize]
            ^ t[12][(a >> 24) as usize]
            ^ t[11][(b & 0xFF) as usize]
            ^ t[10][((b >> 8) & 0xFF) as usize]
            ^ t[9][((b >> 16) & 0xFF) as usize]
            ^ t[8][(b >> 24) as usize]
            ^ t[7][(d & 0xFF) as usize]
            ^ t[6][((d >> 8) & 0xFF) as usize]
            ^ t[5][((d >> 16) & 0xFF) as usize]
            ^ t[4][(d >> 24) as usize]
            ^ t[3][(e & 0xFF) as usize]
            ^ t[2][((e >> 8) & 0xFF) as usize]
            ^ t[1][((e >> 16) & 0xFF) as usize]
            ^ t[0][(e >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The original one-byte-per-step CRC32, retained as the reference
/// implementation the sliced [`crc32`] is differentially tested against.
#[must_use]
pub fn crc32_reference(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

/// Appends `v` to `buf` as an unsigned LEB128 varint (1 byte for values
/// below 128 — the common case for block sizes and store offsets).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `buf` starting at `*pos`,
/// advancing `*pos`. Returns `None` on truncation or overflow past 64
/// bits.
#[must_use]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// SWAR payload-compaction step: packs the low 7 bits of each byte of a
/// little-endian varint word into one contiguous value. Three fold rounds
/// (1→2→4-byte lanes) plus a final merge place byte `i`'s payload at bits
/// `7*i`, exactly the OR-accumulation the byte-at-a-time loop performs.
#[inline(always)]
const fn compact7(x: u64) -> u64 {
    let x = x & 0x7F7F_7F7F_7F7F_7F7F;
    let x = (x & 0x007F_007F_007F_007F) | ((x & 0x7F00_7F00_7F00_7F00) >> 1);
    let x = (x & 0x0000_3FFF_0000_3FFF) | ((x & 0x3FFF_0000_3FFF_0000) >> 2);
    (x & 0x0FFF_FFFF) | ((x >> 4) & 0x00FF_FFFF_F000_0000)
}

/// Word-at-a-time (SWAR) varint read. The single- and two-byte cases
/// (block sizes, offsets, timestamp deltas, short addresses — the vast
/// majority of fields) exit after at most two bounds checks and two
/// compares, before any word-level work.
/// Longer varints load 8 bytes at once, find the first byte with a
/// clear continuation bit via `!word & 0x80…80`, and compact the 7-bit
/// payloads branchlessly with [`compact7`]; 9- and 10-byte encodings
/// (full 64-bit values) complete from the compacted low 56 bits plus one
/// or two tail bytes instead of re-running the byte loop. Reads within 8
/// bytes of the buffer end fall back to the byte loop, so
/// truncation/overflow semantics are bit-identical to [`read_varint`].
/// Differentially pinned to the reference decoder by the `prop_wire`
/// suite and the unit vectors below.
#[inline(always)]
fn read_varint_swar(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let p = *pos;
    let b = *buf.get(p)?;
    if b < 0x80 {
        *pos = p + 1;
        return Some(u64::from(b));
    }
    let b1 = *buf.get(p + 1)?;
    if b1 < 0x80 {
        *pos = p + 2;
        return Some(u64::from(b & 0x7F) | (u64::from(b1) << 7));
    }
    let Some(window) = buf.get(p..p + 8) else {
        // Fewer than 8 bytes left — the tail of the chunk payload. The
        // one-byte case was handled above, so go straight to the loop.
        return read_varint(buf, pos);
    };
    let word = u64::from_le_bytes(window.try_into().expect("8 bytes"));
    let stops = !word & 0x8080_8080_8080_8080;
    if stops == 0 {
        // All 8 bytes have continuation bits set: a 9- or 10-byte varint
        // (or an overlong/overflowing one). Complete it from the tail
        // bytes, mirroring `read_varint`'s overflow rules: byte 9 is the
        // final 7-bit group, byte 10 may only contribute bit 63.
        let low = compact7(word);
        let b8 = *buf.get(p + 8)?;
        if b8 < 0x80 {
            *pos = p + 9;
            return Some(low | (u64::from(b8) << 56));
        }
        let b9 = *buf.get(p + 9)?;
        if b9 > 1 {
            return None; // continuation past byte 10, or overflow past u64
        }
        *pos = p + 10;
        return Some(low | (u64::from(b8 & 0x7F) << 56) | (u64::from(b9) << 63));
    }
    let len = (stops.trailing_zeros() as usize >> 3) + 1; // 1..=8
    let keep = word & (u64::MAX >> ((8 - len) * 8));
    *pos = p + len;
    Some(compact7(keep))
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors from encoding or decoding the `.rrlog` wire format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// An underlying I/O operation failed (message carries the detail).
    Io(String),
    /// The stream does not start with the `RRLG` magic.
    BadMagic,
    /// The header's version is not one this decoder understands.
    UnsupportedVersion {
        /// The version found in the header.
        version: u16,
    },
    /// The stream ended mid-header or mid-chunk. Every chunk before
    /// `chunk` decoded intact.
    Truncated {
        /// Index of the chunk that could not be completed (0-based).
        chunk: usize,
    },
    /// A chunk's CRC32 did not match its payload. Every chunk before
    /// `chunk` decoded intact.
    CrcMismatch {
        /// Index of the corrupt chunk (0-based).
        chunk: usize,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload as read.
        computed: u32,
    },
    /// A chunk passed its CRC but contained an entry the decoder does not
    /// recognize — a version-skew bug, not random corruption.
    Corrupt {
        /// Index of the chunk holding the malformed entry (0-based).
        chunk: usize,
        /// Human-readable detail (offending tag, varint overflow, …).
        detail: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(msg) => write!(f, "i/o error: {msg}"),
            WireError::BadMagic => write!(f, "not an .rrlog stream (bad magic)"),
            WireError::UnsupportedVersion { version } => {
                write!(f, "unsupported .rrlog version {version}")
            }
            WireError::Truncated { chunk } => {
                write!(f, "stream truncated in chunk {chunk} (prior chunks intact)")
            }
            WireError::CrcMismatch {
                chunk,
                stored,
                computed,
            } => write!(
                f,
                "chunk {chunk} CRC mismatch (stored {stored:#010x}, computed {computed:#010x}; prior chunks intact)"
            ),
            WireError::Corrupt { chunk, detail } => {
                write!(f, "chunk {chunk} is malformed: {detail}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Sink / source traits
// ---------------------------------------------------------------------------

/// A consumer of log entries: where a recorder streams its log.
///
/// Entries arrive in counting order; [`LogSink::close`] is called exactly
/// once, after the final [`LogEntry::IntervalFrame`], and must flush any
/// buffered state.
pub trait LogSink {
    /// Accepts the next entry in counting order.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the entry could not be durably accepted
    /// (e.g. the backing writer failed).
    fn emit(&mut self, entry: &LogEntry) -> Result<(), WireError>;

    /// Flushes and finalizes the sink. Called once, after the last entry.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if flushing failed.
    fn close(&mut self) -> Result<(), WireError>;
}

/// A producer of log entries: what the patch/replay pipeline consumes.
///
/// Yields entries in counting order until exhausted (`Ok(None)`); the
/// recorded core's identity travels with the stream.
pub trait LogSource {
    /// The processor this log belongs to.
    fn core(&self) -> CoreId;

    /// The next entry, `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or corruption; entries
    /// yielded before the error are all intact.
    fn next_entry(&mut self) -> Result<Option<LogEntry>, WireError>;
}

/// Reads an entire source into an [`IntervalLog`].
///
/// # Errors
///
/// Propagates the first [`WireError`] from the source.
pub fn read_log(source: &mut dyn LogSource) -> Result<IntervalLog, WireError> {
    let mut log = IntervalLog::new(source.core());
    while let Some(e) = source.next_entry()? {
        log.entries.push(e);
    }
    Ok(log)
}

/// A [`LogSource`] over an in-memory [`IntervalLog`] — the adapter that
/// lets the slice-based record path feed the same streaming consumers as
/// the disk path.
#[derive(Debug)]
pub struct MemorySource<'a> {
    core: CoreId,
    entries: std::slice::Iter<'a, LogEntry>,
}

impl<'a> MemorySource<'a> {
    /// A source yielding `log`'s entries in order.
    #[must_use]
    pub fn new(log: &'a IntervalLog) -> Self {
        MemorySource {
            core: log.core,
            entries: log.entries.iter(),
        }
    }
}

impl LogSource for MemorySource<'_> {
    fn core(&self) -> CoreId {
        self.core
    }

    fn next_entry(&mut self) -> Result<Option<LogEntry>, WireError> {
        Ok(self.entries.next().copied())
    }
}

/// A [`LogSink`] that simply collects entries in memory (tests and
/// tooling; production streaming uses [`ChunkedWriter`]).
#[derive(Debug, Default)]
pub struct VecSink {
    /// Entries emitted so far, in counting order.
    pub entries: Vec<LogEntry>,
    /// Whether [`LogSink::close`] has been called.
    pub closed: bool,
}

impl LogSink for VecSink {
    fn emit(&mut self, entry: &LogEntry) -> Result<(), WireError> {
        self.entries.push(*entry);
        Ok(())
    }

    fn close(&mut self) -> Result<(), WireError> {
        self.closed = true;
        Ok(())
    }
}

/// A [`LogSink`] that accepts a fixed number of entries and then fails
/// every further emit with an injected I/O error — fault injection for the
/// recorder's poisoning path (rr-check's `sink-fault` pressure mode and
/// the mid-record-failure regression tests).
///
/// The accepted prefix is kept behind a shared handle
/// ([`FailingSink::handle`]) so callers can inspect what reached "disk"
/// after the sink was boxed away into a recorder, including from another
/// thread (the sweep engine records on worker threads).
#[derive(Debug)]
pub struct FailingSink {
    accepted: std::sync::Arc<std::sync::Mutex<Vec<LogEntry>>>,
    fail_after: usize,
}

impl FailingSink {
    /// A sink that accepts exactly `fail_after` entries before failing.
    #[must_use]
    pub fn new(fail_after: usize) -> Self {
        FailingSink {
            accepted: std::sync::Arc::default(),
            fail_after,
        }
    }

    /// A shared view of the entries accepted so far; clone before boxing
    /// the sink into a recorder.
    #[must_use]
    pub fn handle(&self) -> std::sync::Arc<std::sync::Mutex<Vec<LogEntry>>> {
        std::sync::Arc::clone(&self.accepted)
    }
}

impl LogSink for FailingSink {
    fn emit(&mut self, entry: &LogEntry) -> Result<(), WireError> {
        let mut accepted = self.accepted.lock().expect("sink lock");
        if accepted.len() >= self.fail_after {
            return Err(WireError::Io("injected sink fault".into()));
        }
        accepted.push(*entry);
        Ok(())
    }

    fn close(&mut self) -> Result<(), WireError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Entry codec (within a chunk payload)
// ---------------------------------------------------------------------------

const TAG_INORDER: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_RMW_STORED: u8 = 3;
const TAG_RMW_FAILED: u8 = 4;
const TAG_FRAME: u8 = 5;

/// Frame-timestamp delta-coding state: the previous frame timestamp
/// (frames are delta-encoded — timestamps are monotone cycle counts, so
/// deltas are small). Since wire v3 ([`CHUNK_INDEPENDENT_VERSION`]) this
/// state resets at every chunk boundary; v1/v2 streams carry it across
/// chunks, which is why their post-damage salvage is only approximate.
#[derive(Clone, Copy, Debug, Default)]
struct DeltaState {
    prev_timestamp: u64,
}

fn encode_entry(buf: &mut Vec<u8>, e: &LogEntry, state: &mut DeltaState) {
    match e {
        LogEntry::InorderBlock { instrs } => {
            buf.push(TAG_INORDER);
            write_varint(buf, u64::from(*instrs));
        }
        LogEntry::ReorderedLoad { value } => {
            buf.push(TAG_LOAD);
            write_varint(buf, *value);
        }
        LogEntry::ReorderedStore {
            addr,
            value,
            offset,
        } => {
            buf.push(TAG_STORE);
            write_varint(buf, *addr);
            write_varint(buf, *value);
            write_varint(buf, u64::from(*offset));
        }
        LogEntry::ReorderedRmw {
            loaded,
            addr,
            stored,
            offset,
        } => {
            buf.push(if stored.is_some() {
                TAG_RMW_STORED
            } else {
                TAG_RMW_FAILED
            });
            write_varint(buf, *loaded);
            write_varint(buf, *addr);
            if let Some(s) = stored {
                write_varint(buf, *s);
            }
            write_varint(buf, u64::from(*offset));
        }
        LogEntry::IntervalFrame { cisn, timestamp } => {
            buf.push(TAG_FRAME);
            write_varint(buf, u64::from(*cisn));
            write_varint(buf, timestamp.wrapping_sub(state.prev_timestamp));
            state.prev_timestamp = *timestamp;
        }
    }
}

fn decode_entry(
    buf: &[u8],
    pos: &mut usize,
    state: &mut DeltaState,
    chunk: usize,
) -> Result<LogEntry, WireError> {
    let corrupt = |detail| WireError::Corrupt { chunk, detail };
    let tag = *buf.get(*pos).ok_or(corrupt("entry tag missing"))?;
    *pos += 1;
    let varint =
        |pos: &mut usize| read_varint(buf, pos).ok_or(corrupt("varint truncated or overlong"));
    let entry = match tag {
        TAG_INORDER => LogEntry::InorderBlock {
            instrs: u32::try_from(varint(pos)?).map_err(|_| corrupt("block size exceeds u32"))?,
        },
        TAG_LOAD => LogEntry::ReorderedLoad {
            value: varint(pos)?,
        },
        TAG_STORE => LogEntry::ReorderedStore {
            addr: varint(pos)?,
            value: varint(pos)?,
            offset: u32::try_from(varint(pos)?).map_err(|_| corrupt("offset exceeds u32"))?,
        },
        TAG_RMW_STORED | TAG_RMW_FAILED => {
            let loaded = varint(pos)?;
            let addr = varint(pos)?;
            let stored = if tag == TAG_RMW_STORED {
                Some(varint(pos)?)
            } else {
                None
            };
            let offset = u32::try_from(varint(pos)?).map_err(|_| corrupt("offset exceeds u32"))?;
            LogEntry::ReorderedRmw {
                loaded,
                addr,
                stored,
                offset,
            }
        }
        TAG_FRAME => {
            let cisn = u16::try_from(varint(pos)?).map_err(|_| corrupt("cisn exceeds u16"))?;
            let delta = varint(pos)?;
            let timestamp = state.prev_timestamp.wrapping_add(delta);
            state.prev_timestamp = timestamp;
            LogEntry::IntervalFrame { cisn, timestamp }
        }
        _ => return Err(corrupt("unknown entry tag")),
    };
    Ok(entry)
}

/// Batched decode of a whole chunk payload into `out`.
///
/// This is the codec hot path: one tight loop over the payload with the
/// word-at-a-time SWAR varint reader, instead of a virtual `next_entry`
/// call per entry. On error the entries already decoded stay in `out` (they are an
/// intact prefix of the chunk) and the returned [`WireError`] carries
/// `chunk` — exactly the semantics of the per-entry reference decoder.
fn decode_chunk_entries(
    payload: &[u8],
    state: &mut DeltaState,
    chunk: usize,
    out: &mut Vec<LogEntry>,
) -> Result<(), WireError> {
    let corrupt = |detail| WireError::Corrupt { chunk, detail };
    let mut pos = 0usize;
    macro_rules! varint {
        () => {
            match read_varint_swar(payload, &mut pos) {
                Some(v) => v,
                None => return Err(corrupt("varint truncated or overlong")),
            }
        };
    }
    while pos < payload.len() {
        let tag = payload[pos];
        pos += 1;
        let entry = match tag {
            TAG_INORDER => LogEntry::InorderBlock {
                instrs: u32::try_from(varint!()).map_err(|_| corrupt("block size exceeds u32"))?,
            },
            TAG_LOAD => LogEntry::ReorderedLoad { value: varint!() },
            TAG_STORE => LogEntry::ReorderedStore {
                addr: varint!(),
                value: varint!(),
                offset: u32::try_from(varint!()).map_err(|_| corrupt("offset exceeds u32"))?,
            },
            TAG_RMW_STORED | TAG_RMW_FAILED => {
                let loaded = varint!();
                let addr = varint!();
                let stored = if tag == TAG_RMW_STORED {
                    Some(varint!())
                } else {
                    None
                };
                let offset = u32::try_from(varint!()).map_err(|_| corrupt("offset exceeds u32"))?;
                LogEntry::ReorderedRmw {
                    loaded,
                    addr,
                    stored,
                    offset,
                }
            }
            TAG_FRAME => {
                let cisn = u16::try_from(varint!()).map_err(|_| corrupt("cisn exceeds u16"))?;
                let delta = varint!();
                let timestamp = state.prev_timestamp.wrapping_add(delta);
                state.prev_timestamp = timestamp;
                LogEntry::IntervalFrame { cisn, timestamp }
            }
            _ => return Err(corrupt("unknown entry tag")),
        };
        out.push(entry);
    }
    Ok(())
}

/// Reusable decode scratch: the chunk payload buffer and the batched entry
/// buffer, kept allocated across chunks — and across whole files when a
/// caller decodes many logs back to back (the parallel ingest path hands
/// one scratch per worker). Steady-state decode then allocates nothing per
/// chunk.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    payload: Vec<u8>,
    entries: Vec<LogEntry>,
}

impl DecodeScratch {
    /// A fresh scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

// ---------------------------------------------------------------------------
// Chunked writer
// ---------------------------------------------------------------------------

/// Streams entries into a `Write` as the chunked `.rrlog` format.
///
/// The header is written on construction; entries accumulate into an
/// in-memory payload buffer that is framed (length prefix + CRC32) and
/// flushed whenever it reaches the chunk target. [`LogSink::close`]
/// flushes the final partial chunk.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
    buf: Vec<u8>,
    state: DeltaState,
    chunk_bytes: usize,
    chunks_written: usize,
    version: u16,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the `.rrlog` header for `core` and returns the sink.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError::Io`] if the header cannot be written.
    pub fn new(w: W, core: CoreId) -> Result<Self, WireError> {
        Self::with_chunk_bytes(w, core, DEFAULT_CHUNK_BYTES)
    }

    /// As [`ChunkedWriter::new`] with a custom chunk payload target
    /// (smaller chunks recover more of a damaged file; larger chunks
    /// amortize framing overhead).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError::Io`] if the header cannot be written.
    pub fn with_chunk_bytes(w: W, core: CoreId, chunk_bytes: usize) -> Result<Self, WireError> {
        Self::with_version(w, core, chunk_bytes, VERSION)
    }

    /// As [`ChunkedWriter::with_chunk_bytes`] but stamping (and encoding
    /// for) an explicit wire version — how the compat fixtures for older
    /// readers are produced. Versions below
    /// [`CHUNK_INDEPENDENT_VERSION`] keep the frame-timestamp delta state
    /// across chunk boundaries, exactly as those encoders did.
    ///
    /// # Errors
    ///
    /// [`WireError::UnsupportedVersion`] if `version` is outside
    /// [`MIN_VERSION`]..=[`VERSION`], or [`WireError::Io`] if the header
    /// cannot be written.
    pub fn with_version(
        mut w: W,
        core: CoreId,
        chunk_bytes: usize,
        version: u16,
    ) -> Result<Self, WireError> {
        if !version_supported(version) {
            return Err(WireError::UnsupportedVersion { version });
        }
        w.write_all(&MAGIC)?;
        w.write_all(&version.to_le_bytes())?;
        w.write_all(&[core.index() as u8])?;
        Ok(ChunkedWriter {
            w,
            buf: Vec::with_capacity(chunk_bytes + 64),
            state: DeltaState::default(),
            chunk_bytes: chunk_bytes.max(1),
            chunks_written: 0,
            version,
        })
    }

    /// Chunks written (closed) so far.
    #[must_use]
    pub fn chunks_written(&self) -> usize {
        self.chunks_written
    }

    fn flush_chunk(&mut self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let len = u32::try_from(self.buf.len())
            .map_err(|_| WireError::Io("chunk payload exceeds u32::MAX bytes".to_string()))?;
        self.w.write_all(&len.to_le_bytes())?;
        self.w.write_all(&self.buf)?;
        self.w.write_all(&crc32(&self.buf).to_le_bytes())?;
        self.buf.clear();
        self.chunks_written += 1;
        if self.version >= CHUNK_INDEPENDENT_VERSION {
            // v3 chunks are self-contained: the next chunk's first frame
            // carries its absolute timestamp.
            self.state = DeltaState::default();
        }
        Ok(())
    }
}

impl<W: Write> LogSink for ChunkedWriter<W> {
    fn emit(&mut self, entry: &LogEntry) -> Result<(), WireError> {
        encode_entry(&mut self.buf, entry, &mut self.state);
        if self.buf.len() >= self.chunk_bytes {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), WireError> {
        self.flush_chunk()?;
        self.w.flush()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Chunked reader
// ---------------------------------------------------------------------------

/// Streams entries out of a `Read` carrying the chunked `.rrlog` format.
///
/// Each chunk is read, CRC-verified, and batch-decoded wholesale into a
/// reusable [`DecodeScratch`]; [`LogSource::next_entry`] then drains the
/// decoded entries without touching the codec. A truncated or corrupt
/// chunk surfaces as a typed [`WireError`] *after* every entry decoded
/// before the failure point has been yielded intact — the same observable
/// sequence as the original entry-at-a-time reader.
#[derive(Debug)]
pub struct ChunkedReader<R: Read> {
    r: R,
    core: CoreId,
    scratch: DecodeScratch,
    /// Drain index into `scratch.entries`.
    next: usize,
    /// A decode error from the current chunk, surfaced once the decoded
    /// prefix has been drained.
    pending: Option<WireError>,
    state: DeltaState,
    version: u16,
    /// Index of the next chunk to be read from the stream.
    chunk_index: usize,
    eof: bool,
}

impl<R: Read> ChunkedReader<R> {
    /// Reads and validates the `.rrlog` header.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`]
    /// for foreign streams, [`WireError::Truncated`] if the header itself
    /// is cut short.
    pub fn new(r: R) -> Result<Self, WireError> {
        Self::with_scratch(r, DecodeScratch::new())
    }

    /// As [`ChunkedReader::new`], reusing a caller-provided scratch whose
    /// buffers survive from a previous stream — the zero-allocation path
    /// when decoding many `.rrlog` files back to back.
    ///
    /// # Errors
    ///
    /// As [`ChunkedReader::new`].
    pub fn with_scratch(mut r: R, mut scratch: DecodeScratch) -> Result<Self, WireError> {
        let mut header = [0u8; 7];
        read_exact_or(&mut r, &mut header, WireError::Truncated { chunk: 0 })?;
        if header[..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if !version_supported(version) {
            return Err(WireError::UnsupportedVersion { version });
        }
        scratch.payload.clear();
        scratch.entries.clear();
        Ok(ChunkedReader {
            r,
            core: CoreId::new(header[6]),
            scratch,
            next: 0,
            pending: None,
            state: DeltaState::default(),
            version,
            chunk_index: 0,
            eof: false,
        })
    }

    /// The wire-format version from the stream header.
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Recovers the scratch for reuse on the next stream.
    #[must_use]
    pub fn into_scratch(self) -> DecodeScratch {
        self.scratch
    }

    /// Reads the next chunk and batch-decodes it into the scratch.
    /// `Ok(false)` at a clean end of stream. A decode failure inside an
    /// otherwise intact chunk is stashed in `pending` so the decoded
    /// prefix drains first.
    fn load_chunk(&mut self) -> Result<bool, WireError> {
        let chunk = self.chunk_index;
        let mut len_bytes = [0u8; 4];
        match self.r.read(&mut len_bytes) {
            Ok(0) => return Ok(false), // clean EOF at a chunk boundary
            Ok(n) => {
                read_exact_or(
                    &mut self.r,
                    &mut len_bytes[n..],
                    WireError::Truncated { chunk },
                )?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                read_exact_or(&mut self.r, &mut len_bytes, WireError::Truncated { chunk })?;
            }
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        self.scratch.payload.resize(len, 0);
        read_exact_or(
            &mut self.r,
            &mut self.scratch.payload,
            WireError::Truncated { chunk },
        )?;
        let mut crc_bytes = [0u8; 4];
        read_exact_or(&mut self.r, &mut crc_bytes, WireError::Truncated { chunk })?;
        let stored = u32::from_le_bytes(crc_bytes);
        let computed = crc32(&self.scratch.payload);
        if stored != computed {
            return Err(WireError::CrcMismatch {
                chunk,
                stored,
                computed,
            });
        }
        self.scratch.entries.clear();
        self.next = 0;
        if self.version >= CHUNK_INDEPENDENT_VERSION {
            self.state = DeltaState::default();
        }
        self.pending = decode_chunk_entries(
            &self.scratch.payload,
            &mut self.state,
            chunk,
            &mut self.scratch.entries,
        )
        .err();
        self.chunk_index += 1;
        Ok(true)
    }
}

fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], on_eof: WireError) -> Result<(), WireError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(on_eof),
        Err(e) => Err(e.into()),
    }
}

impl<R: Read> LogSource for ChunkedReader<R> {
    fn core(&self) -> CoreId {
        self.core
    }

    fn next_entry(&mut self) -> Result<Option<LogEntry>, WireError> {
        loop {
            if self.next < self.scratch.entries.len() {
                let e = self.scratch.entries[self.next];
                self.next += 1;
                return Ok(Some(e));
            }
            if let Some(e) = self.pending.take() {
                self.eof = true;
                return Err(e);
            }
            if self.eof {
                return Ok(None);
            }
            match self.load_chunk() {
                Ok(true) => {}
                Ok(false) => {
                    self.eof = true;
                    return Ok(None);
                }
                Err(e) => {
                    self.eof = true;
                    return Err(e);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-log helpers
// ---------------------------------------------------------------------------

/// Encodes a whole log as one chunked `.rrlog` byte stream.
#[must_use]
pub fn encode_chunked(log: &IntervalLog) -> Vec<u8> {
    encode_chunked_with(log, DEFAULT_CHUNK_BYTES)
}

/// As [`encode_chunked`] with an explicit chunk payload target.
///
/// # Panics
///
/// Never panics: writing to a `Vec<u8>` cannot fail.
#[must_use]
pub fn encode_chunked_with(log: &IntervalLog, chunk_bytes: usize) -> Vec<u8> {
    encode_chunked_with_version(log, chunk_bytes, VERSION)
}

/// As [`encode_chunked_with`] but stamping an explicit wire version —
/// produces byte streams exactly as that version's encoder would (compat
/// fixtures, differential tests across framing generations).
///
/// # Panics
///
/// Panics if `version` is not supported by this build (the valid range is
/// [`MIN_VERSION`]..=[`VERSION`]).
#[must_use]
pub fn encode_chunked_with_version(log: &IntervalLog, chunk_bytes: usize, version: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(log.entries.len() * 3 + 16);
    let mut w = ChunkedWriter::with_version(&mut out, log.core, chunk_bytes, version)
        .expect("supported version; Vec<u8> writes cannot fail");
    for e in &log.entries {
        w.emit(e).expect("Vec<u8> writes cannot fail");
    }
    w.close().expect("Vec<u8> writes cannot fail");
    out
}

/// Parses and validates the 7-byte `.rrlog` header of an in-memory
/// stream, returning the recorded core and the wire version.
///
/// # Errors
///
/// [`WireError::Truncated`] if fewer than 7 bytes, [`WireError::BadMagic`]
/// for foreign streams, [`WireError::UnsupportedVersion`] on version skew.
pub fn parse_header(bytes: &[u8]) -> Result<(CoreId, u16), WireError> {
    if bytes.len() < 7 {
        return Err(WireError::Truncated { chunk: 0 });
    }
    if bytes[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if !version_supported(version) {
        return Err(WireError::UnsupportedVersion { version });
    }
    Ok((CoreId::new(bytes[6]), version))
}

/// One framed chunk of an in-memory stream, before CRC verification. The
/// payload is a zero-copy slice of the input.
struct RawChunk<'a> {
    payload: &'a [u8],
    stored_crc: u32,
}

/// Advances `*pos` over the next chunk frame. `None` at a clean end of
/// stream, `Some(Err(Truncated))` if the frame is cut short.
fn next_raw_chunk<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    index: usize,
) -> Option<Result<RawChunk<'a>, WireError>> {
    if *pos >= bytes.len() {
        return None;
    }
    let truncated = WireError::Truncated { chunk: index };
    let Some(len_bytes) = bytes.get(*pos..*pos + 4) else {
        return Some(Err(truncated));
    };
    let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    let Some(payload) = bytes.get(*pos + 4..*pos + 4 + len) else {
        return Some(Err(truncated));
    };
    let Some(crc_bytes) = bytes.get(*pos + 4 + len..*pos + 8 + len) else {
        return Some(Err(truncated));
    };
    *pos += 8 + len;
    Some(Ok(RawChunk {
        payload,
        stored_crc: u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")),
    }))
}

/// Decodes a chunked `.rrlog` byte stream, requiring it intact end to end.
///
/// This is the fast path: a zero-copy walk over the in-memory stream with
/// sliced CRC verification and batched whole-chunk entry decode straight
/// into the output log — no per-entry dispatch and no intermediate
/// buffers. Bit-identical to [`decode_chunked_reference`] on every input,
/// valid or not.
///
/// # Errors
///
/// Returns the first [`WireError`]; use [`decode_chunked_recover`] to also
/// obtain the entries recovered before the failure point.
pub fn decode_chunked(bytes: &[u8]) -> Result<IntervalLog, WireError> {
    let (log, err) = decode_chunked_recover(bytes);
    match err {
        None => Ok(log),
        Some(e) => Err(e),
    }
}

/// As [`decode_chunked`], decoding into a caller-owned log whose entry
/// buffer is reused — the steady-state path for decoding many streams (or
/// the same stream repeatedly) without re-faulting a multi-GB output
/// allocation each time. `log` is cleared (core re-stamped, entries
/// truncated but capacity kept) before decoding.
///
/// # Errors
///
/// Exactly the conditions of [`decode_chunked`]; on error `log` holds the
/// recovered prefix, as [`decode_chunked_recover`] would return it.
pub fn decode_chunked_into(bytes: &[u8], log: &mut IntervalLog) -> Result<(), WireError> {
    match decode_chunked_recover_into(bytes, log) {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Decodes as much of a (possibly truncated or corrupted) `.rrlog` stream
/// as possible: every entry up to the last intact chunk boundary, plus the
/// error that stopped decoding (`None` if the stream was whole).
///
/// Header failures recover an empty log for core 0.
#[must_use]
pub fn decode_chunked_recover(bytes: &[u8]) -> (IntervalLog, Option<WireError>) {
    let mut log = IntervalLog::new(CoreId::new(0));
    let err = decode_chunked_recover_into(bytes, &mut log);
    (log, err)
}

/// Output-reservation policy for the streaming decoders.
///
/// Entry width varies 2..10+ bytes with the reordered mix, so a fixed
/// guess is always wrong somewhere, and extrapolating the *first* chunk's
/// entry density across a multi-GB stream over-reserves wildly when the
/// stream is front-loaded with dense entries. Instead the decoders
/// re-extrapolate every [`RESERVE_CHECK_CHUNKS`] chunks from *cumulative*
/// observed density, clamped twice:
///
/// * by what the remaining bytes can physically hold (an entry is at
///   least [`MIN_ENTRY_WIRE_BYTES`] on the wire), and
/// * by 3× the entries decoded so far, so capacity never exceeds 4× the
///   high-water entry count no matter how skewed the density profile is.
const RESERVE_CHECK_CHUNKS: usize = 64;

/// Minimum wire footprint of one entry: a tag byte plus one 1-byte varint.
const MIN_ENTRY_WIRE_BYTES: usize = 2;

#[inline]
fn reserve_for_remainder(
    entries: &mut Vec<LogEntry>,
    decoded_payload_bytes: usize,
    remaining_stream_bytes: usize,
) {
    let decoded = entries.len();
    if decoded == 0 || decoded_payload_bytes == 0 {
        return;
    }
    let extrapolated = ((decoded as u128 * remaining_stream_bytes as u128)
        / decoded_payload_bytes as u128) as usize;
    let additional = extrapolated
        .min(remaining_stream_bytes / MIN_ENTRY_WIRE_BYTES)
        .min(3 * decoded);
    if entries.capacity() < decoded + additional {
        entries.reserve(additional);
    }
}

/// [`decode_chunked_recover`] into a reused log (see
/// [`decode_chunked_into`] for the reuse contract).
#[must_use]
pub fn decode_chunked_recover_into(bytes: &[u8], log: &mut IntervalLog) -> Option<WireError> {
    log.entries.clear();
    log.core = CoreId::new(0);
    let (core, version) = match parse_header(bytes) {
        Ok(h) => h,
        Err(e) => return Some(e),
    };
    log.core = core;
    // Seed capacity for the first chunk only (~3 payload bytes per
    // entry); reserve_for_remainder grows it as density is observed.
    let seed = bytes.len().min(DEFAULT_CHUNK_BYTES + 16) / 3;
    if log.entries.capacity() < seed {
        log.entries.reserve(seed);
    }
    let mut state = DeltaState::default();
    let mut pos = 7usize;
    let mut index = 0usize;
    let mut payload_seen = 0usize;
    while let Some(raw) = next_raw_chunk(bytes, &mut pos, index) {
        let raw = match raw {
            Ok(r) => r,
            Err(e) => return Some(e),
        };
        let computed = crc32(raw.payload);
        if raw.stored_crc != computed {
            return Some(WireError::CrcMismatch {
                chunk: index,
                stored: raw.stored_crc,
                computed,
            });
        }
        if version >= CHUNK_INDEPENDENT_VERSION {
            state = DeltaState::default();
        }
        if let Err(e) = decode_chunk_entries(raw.payload, &mut state, index, &mut log.entries) {
            return Some(e);
        }
        payload_seen += raw.payload.len();
        if index.is_multiple_of(RESERVE_CHECK_CHUNKS) {
            reserve_for_remainder(&mut log.entries, payload_seen, bytes.len() - pos);
        }
        index += 1;
    }
    None
}

/// [`decode_chunked`] with per-phase wall-clock attribution: CRC
/// verification vs batched varint entry decode vs output-buffer
/// reservation, accumulated into `phases`.
///
/// This is a *separate* walk from the production decoder — the hot path
/// stays timer-free — and is differentially tested (and CI-gated via the
/// codec bench's `reference_check`) to return bit-identical logs and
/// errors. `rr-bench` uses it to decompose the large-stream decode cliff;
/// phase timings land in `BENCH_codec.json` rows.
///
/// # Errors
///
/// Exactly the conditions of [`decode_chunked`]. `phases` is filled with
/// whatever work happened before the error.
pub fn decode_chunked_profiled(
    bytes: &[u8],
    phases: &mut crate::prof::CodecPhases,
) -> Result<IntervalLog, WireError> {
    use std::time::Instant;
    let (core, version) = parse_header(bytes)?;
    let mut log = IntervalLog::new(core);
    let t = Instant::now();
    log.entries
        .reserve(bytes.len().min(DEFAULT_CHUNK_BYTES + 16) / 3);
    phases.reserve_ns += t.elapsed().as_nanos() as u64;
    let mut state = DeltaState::default();
    let mut pos = 7usize;
    let mut index = 0usize;
    let mut payload_seen = 0usize;
    while let Some(raw) = next_raw_chunk(bytes, &mut pos, index) {
        let raw = raw?;
        let t = Instant::now();
        let computed = crc32(raw.payload);
        phases.crc_ns += t.elapsed().as_nanos() as u64;
        if raw.stored_crc != computed {
            return Err(WireError::CrcMismatch {
                chunk: index,
                stored: raw.stored_crc,
                computed,
            });
        }
        if version >= CHUNK_INDEPENDENT_VERSION {
            state = DeltaState::default();
        }
        let t = Instant::now();
        decode_chunk_entries(raw.payload, &mut state, index, &mut log.entries)?;
        phases.entries_ns += t.elapsed().as_nanos() as u64;
        phases.chunks += 1;
        phases.payload_bytes += raw.payload.len() as u64;
        payload_seen += raw.payload.len();
        if index.is_multiple_of(RESERVE_CHECK_CHUNKS) {
            let t = Instant::now();
            reserve_for_remainder(&mut log.entries, payload_seen, bytes.len() - pos);
            phases.reserve_ns += t.elapsed().as_nanos() as u64;
        }
        index += 1;
    }
    Ok(log)
}

/// The original entry-at-a-time decoder, retained verbatim as the
/// reference implementation. Every release decode path is differentially
/// tested against it (proptest on arbitrary and corrupted streams, plus
/// the CI `bench-smoke` gate on checked-in sample logs); it is not used on
/// any hot path.
///
/// # Errors
///
/// As [`decode_chunked`].
pub fn decode_chunked_reference(bytes: &[u8]) -> Result<IntervalLog, WireError> {
    let (core, version) = parse_header(bytes)?;
    let mut log = IntervalLog::new(core);
    let mut state = DeltaState::default();
    let mut pos = 7usize;
    let mut index = 0usize;
    while let Some(raw) = next_raw_chunk(bytes, &mut pos, index) {
        let raw = raw?;
        let computed = crc32_reference(raw.payload);
        if raw.stored_crc != computed {
            return Err(WireError::CrcMismatch {
                chunk: index,
                stored: raw.stored_crc,
                computed,
            });
        }
        if version >= CHUNK_INDEPENDENT_VERSION {
            state = DeltaState::default();
        }
        let mut p = 0usize;
        while p < raw.payload.len() {
            log.entries
                .push(decode_entry(raw.payload, &mut p, &mut state, index)?);
        }
        index += 1;
    }
    Ok(log)
}

/// Result of a lenient [`decode_chunked_skip`] walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Salvage {
    /// Every entry from every chunk that passed its CRC.
    pub log: IntervalLog,
    /// The first error encountered (`None` for a clean stream).
    pub err: Option<WireError>,
    /// Entries decoded *after* the first damaged chunk whose frame
    /// timestamps may be wrong: on wire versions before
    /// [`CHUNK_INDEPENDENT_VERSION`] the delta-coding state is shared
    /// across chunks, so skipping a chunk leaves later timestamps anchored
    /// to stale context. Always 0 for v3+ streams — their chunks
    /// re-anchor on an absolute first-frame timestamp, so the salvaged
    /// suffix is exact.
    pub suspect: usize,
}

/// Lenient decode: every entry from every chunk that passes its CRC, with
/// damaged chunks *skipped* rather than ending the walk — the decoding
/// counterpart of [`chunk_map`], and guaranteed to agree with it: the
/// number of entries returned equals the sum of [`ChunkInfo::entries`]
/// over the map of the same stream.
///
/// Used by diagnostics (`rr-inspect stat`) that want density statistics
/// over everything salvageable. On v3+ streams the salvaged entries are
/// *exact* — chunks are self-contained, so damage cannot leak into later
/// timestamps. On v1/v2 streams, entries after the first damaged chunk
/// resume delta decoding with stale context; they are still returned (the
/// byte structure is unambiguous) but counted in [`Salvage::suspect`] so
/// callers surface them instead of trusting quietly-wrong timestamps.
/// Replay must **not** consume salvaged suffixes; the strict paths stop at
/// the first error instead.
///
/// Header failures return an empty log for core 0, as
/// [`decode_chunked_recover`] does.
#[must_use]
pub fn decode_chunked_skip(bytes: &[u8]) -> Salvage {
    let (core, version) = match parse_header(bytes) {
        Ok(h) => h,
        Err(e) => {
            return Salvage {
                log: IntervalLog::new(CoreId::new(0)),
                err: Some(e),
                suspect: 0,
            }
        }
    };
    let mut log = IntervalLog::new(core);
    let mut first_err = None;
    let mut suspect_from = None;
    let mut note = |e: WireError, at: usize, slot: &mut Option<WireError>| {
        if slot.is_none() {
            *slot = Some(e);
            if version < CHUNK_INDEPENDENT_VERSION {
                suspect_from = Some(at);
            }
        }
    };
    let mut state = DeltaState::default();
    let mut pos = 7usize;
    let mut index = 0usize;
    while let Some(raw) = next_raw_chunk(bytes, &mut pos, index) {
        let raw = match raw {
            Ok(r) => r,
            Err(e) => {
                note(e, log.entries.len(), &mut first_err);
                break;
            }
        };
        let computed = crc32(raw.payload);
        if raw.stored_crc != computed {
            note(
                WireError::CrcMismatch {
                    chunk: index,
                    stored: raw.stored_crc,
                    computed,
                },
                log.entries.len(),
                &mut first_err,
            );
        } else {
            if version >= CHUNK_INDEPENDENT_VERSION {
                state = DeltaState::default();
            }
            if let Err(e) = decode_chunk_entries(raw.payload, &mut state, index, &mut log.entries) {
                // The decoded prefix of the chunk stays (its timestamps
                // are sound); everything after it is suspect on v1/v2.
                note(e, log.entries.len(), &mut first_err);
            }
        }
        index += 1;
    }
    let suspect = suspect_from.map_or(0, |from| log.entries.len() - from);
    Salvage {
        log,
        err: first_err,
        suspect,
    }
}

/// One chunk's position and health inside an `.rrlog` stream, as reported
/// by [`chunk_map`] — the basis of `rr-inspect stat`'s chunk table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Chunk index (0-based), matching the indices in [`WireError`]s.
    pub index: usize,
    /// Byte offset of the chunk's 4-byte length prefix within the stream.
    pub offset: usize,
    /// Payload bytes (excluding the length prefix and trailing CRC).
    pub payload_bytes: usize,
    /// Entries decoded from the payload (0 if the CRC failed — a corrupt
    /// payload is never entry-decoded).
    pub entries: usize,
    /// Whether the stored CRC32 matched the payload as read.
    pub crc_ok: bool,
    /// Absolute timestamp of the first `IntervalFrame` decoded from this
    /// chunk (`None` if the chunk holds no frame or was not decoded).
    /// Exact for self-contained (v3+) chunks; on v1/v2 streams it reflects
    /// the delta context as decoded, i.e. it is only trustworthy up to the
    /// first damaged chunk.
    pub first_timestamp: Option<u64>,
}

/// Walks an `.rrlog` byte stream chunk by chunk, reporting each chunk's
/// offset, size, entry count, and CRC health without requiring the stream
/// to be intact: a CRC mismatch marks that chunk `crc_ok: false` and the
/// walk continues at the next length-prefixed boundary, so one flipped
/// byte does not hide the chunks after it.
///
/// Returns the recorded core, the per-chunk map, and the first error that
/// made further *entry decoding* unreliable (`None` for a clean stream;
/// truncation ends the walk, a CRC mismatch or malformed entry is noted
/// and the walk continues).
///
/// # Errors
///
/// Returns a [`WireError`] only if the 7-byte header itself is missing,
/// foreign, or version-skewed — with no header there is nothing to map.
pub fn chunk_map(bytes: &[u8]) -> Result<(CoreId, Vec<ChunkInfo>, Option<WireError>), WireError> {
    chunk_map_with(bytes, &mut DecodeScratch::new())
}

/// As [`chunk_map`], reusing a caller-provided [`DecodeScratch`] so that
/// mapping many streams (a whole `--save-logs` directory) allocates no
/// per-chunk buffers.
///
/// Entry counts agree with [`decode_chunked_skip`] by construction: both
/// walk the same framing, skip the same damaged chunks, and batch-decode
/// the same payloads.
///
/// # Errors
///
/// As [`chunk_map`].
pub fn chunk_map_with(
    bytes: &[u8],
    scratch: &mut DecodeScratch,
) -> Result<(CoreId, Vec<ChunkInfo>, Option<WireError>), WireError> {
    let (core, version) = parse_header(bytes)?;

    let mut map = Vec::new();
    let mut first_err = None;
    let note = |e: WireError, slot: &mut Option<WireError>| {
        if slot.is_none() {
            *slot = Some(e);
        }
    };
    let mut state = DeltaState::default();
    let mut pos = 7usize;
    let mut index = 0usize;
    loop {
        let offset = pos;
        let Some(raw) = next_raw_chunk(bytes, &mut pos, index) else {
            break;
        };
        let raw = match raw {
            Ok(r) => r,
            Err(e) => {
                note(e, &mut first_err);
                break;
            }
        };
        let computed = crc32(raw.payload);
        let crc_ok = raw.stored_crc == computed;
        let mut entries = 0usize;
        let mut first_timestamp = None;
        if crc_ok {
            if version >= CHUNK_INDEPENDENT_VERSION {
                state = DeltaState::default();
            }
            scratch.entries.clear();
            match decode_chunk_entries(raw.payload, &mut state, index, &mut scratch.entries) {
                Ok(()) => entries = scratch.entries.len(),
                Err(e) => {
                    entries = scratch.entries.len();
                    note(e, &mut first_err);
                }
            }
            first_timestamp = scratch.entries.iter().find_map(|e| match e {
                LogEntry::IntervalFrame { timestamp, .. } => Some(*timestamp),
                _ => None,
            });
        } else {
            note(
                WireError::CrcMismatch {
                    chunk: index,
                    stored: raw.stored_crc,
                    computed,
                },
                &mut first_err,
            );
        }
        map.push(ChunkInfo {
            index,
            offset,
            payload_bytes: raw.payload.len(),
            entries,
            crc_ok,
            first_timestamp,
        });
        index += 1;
    }
    Ok((core, map, first_err))
}

/// One chunk's frame position inside an `.rrlog` stream, from the cheap
/// [`chunk_spans`] walk — offsets only, no CRC or payload work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkSpan {
    /// Byte offset of the chunk's 4-byte length prefix within the stream.
    pub offset: usize,
    /// Payload bytes (excluding the length prefix and trailing CRC).
    pub payload_bytes: usize,
}

/// Walks only the chunk *framing* of an `.rrlog` stream — hopping
/// length prefixes without touching payloads or CRCs — and returns the
/// recorded core, the wire version, every complete chunk's span, and
/// whether the stream ended mid-frame (`Some(Truncated)`).
///
/// This is the O(chunks) pre-pass that lets
/// [`decode_chunked_range`] partition a self-contained (v3+) stream
/// across workers without a sequential decode.
///
/// # Errors
///
/// Returns a [`WireError`] only if the 7-byte header itself is missing,
/// foreign, or version-skewed.
#[allow(clippy::type_complexity)]
pub fn chunk_spans(
    bytes: &[u8],
) -> Result<(CoreId, u16, Vec<ChunkSpan>, Option<WireError>), WireError> {
    let (core, version) = parse_header(bytes)?;
    let mut spans = Vec::new();
    let mut pos = 7usize;
    let mut truncated = None;
    while pos < bytes.len() {
        let index = spans.len();
        let Some(len_bytes) = bytes.get(pos..pos + 4) else {
            truncated = Some(WireError::Truncated { chunk: index });
            break;
        };
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if pos + 8 + len > bytes.len() {
            truncated = Some(WireError::Truncated { chunk: index });
            break;
        }
        spans.push(ChunkSpan {
            offset: pos,
            payload_bytes: len,
        });
        pos += 8 + len;
    }
    Ok((core, version, spans, truncated))
}

/// Decodes a contiguous run of chunks of a *self-contained* (v3+) stream
/// into `out`: `spans` are the chunks to decode (as returned by
/// [`chunk_spans`]) and `first_index` is the stream-wide index of
/// `spans[0]`, so errors carry the same chunk numbers a sequential decode
/// would report. Each chunk decodes with fresh delta state — on v3
/// streams this is bit-identical to the sequential walk, which is exactly
/// what lets `decode_logs_parallel` range-partition one large log.
///
/// Callers must not hand this spans of a v1/v2 stream (their chunks share
/// delta state); [`chunk_spans`] reports the version to check.
///
/// # Errors
///
/// The first [`WireError`] in the range; entries decoded before it stay
/// in `out`.
pub fn decode_chunked_range(
    bytes: &[u8],
    spans: &[ChunkSpan],
    first_index: usize,
    out: &mut Vec<LogEntry>,
) -> Result<(), WireError> {
    // One reservation up front instead of doubling through hundreds of
    // reallocations: the recorder's entry mix runs ~4-6 payload bytes per
    // entry, so a quarter of the payload over-reserves mildly; a denser
    // stream (2 bytes/entry) costs at most one doubling.
    let total_payload: usize = spans.iter().map(|s| s.payload_bytes).sum();
    out.reserve(total_payload / 4);
    for (i, span) in spans.iter().enumerate() {
        let index = first_index + i;
        let payload_start = span.offset + 4;
        let payload = bytes
            .get(payload_start..payload_start + span.payload_bytes)
            .ok_or(WireError::Truncated { chunk: index })?;
        let crc_bytes = bytes
            .get(payload_start + span.payload_bytes..payload_start + span.payload_bytes + 4)
            .ok_or(WireError::Truncated { chunk: index })?;
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let computed = crc32(payload);
        if stored != computed {
            return Err(WireError::CrcMismatch {
                chunk: index,
                stored,
                computed,
            });
        }
        let mut state = DeltaState::default();
        decode_chunk_entries(payload, &mut state, index, out)?;
    }
    Ok(())
}

/// Writes `log` to `path` as an `.rrlog` file.
///
/// # Errors
///
/// Returns a [`WireError::Io`] on any filesystem failure.
pub fn write_rrlog(path: &Path, log: &IntervalLog) -> Result<(), WireError> {
    let file = std::fs::File::create(path)?;
    let mut w = ChunkedWriter::new(std::io::BufWriter::new(file), log.core)?;
    for e in &log.entries {
        w.emit(e)?;
    }
    w.close()
}

/// Reads an `.rrlog` file written by [`write_rrlog`] (or any
/// [`ChunkedWriter`]).
///
/// # Errors
///
/// Returns a [`WireError`] on I/O failure, truncation, or corruption.
pub fn read_rrlog(path: &Path) -> Result<IntervalLog, WireError> {
    // Mapping the file and decoding zero-copy beats both streaming
    // through a BufReader and a heap-staged fs::read: the batched
    // in-memory decoder is the fast path and multi-GB logs never get
    // copied into an intermediate buffer. Falls back to a plain read
    // where mmap is unavailable (see `mmapio`).
    let bytes = crate::mmapio::MappedBytes::open(path)?;
    decode_chunked(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<LogEntry> {
        vec![
            LogEntry::InorderBlock { instrs: 2 },
            LogEntry::ReorderedLoad { value: 0xdead_beef },
            LogEntry::InorderBlock { instrs: 4096 },
            LogEntry::ReorderedStore {
                addr: 0x1_0000,
                value: 7,
                offset: 5,
            },
            LogEntry::ReorderedRmw {
                loaded: 1,
                addr: 0x200,
                stored: Some(u64::MAX),
                offset: 2,
            },
            LogEntry::ReorderedRmw {
                loaded: 9,
                addr: 0x208,
                stored: None,
                offset: 1,
            },
            LogEntry::IntervalFrame {
                cisn: 15,
                timestamp: 123_456,
            },
            LogEntry::InorderBlock { instrs: 1 },
            LogEntry::IntervalFrame {
                cisn: 16,
                timestamp: 123_490,
            },
        ]
    }

    fn sample_log() -> IntervalLog {
        IntervalLog {
            core: CoreId::new(3),
            entries: sample_entries(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varints_round_trip() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for v in values {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 11 continuation bytes cannot fit in a u64.
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn round_trip_is_lossless_and_byte_identical() {
        let log = sample_log();
        let bytes = encode_chunked(&log);
        let decoded = decode_chunked(&bytes).expect("decodes");
        assert_eq!(decoded, log);
        assert_eq!(encode_chunked(&decoded), bytes, "re-encode is identical");
    }

    #[test]
    fn empty_log_round_trips() {
        let log = IntervalLog::new(CoreId::new(7));
        let bytes = encode_chunked(&log);
        assert_eq!(bytes.len(), 7, "header only, no chunks");
        let decoded = decode_chunked(&bytes).expect("decodes");
        assert_eq!(decoded, log);
    }

    #[test]
    fn multi_chunk_streams_round_trip() {
        // Tiny chunks force many chunk boundaries.
        let log = sample_log();
        for chunk_bytes in [1, 2, 3, 8, 64] {
            let bytes = encode_chunked_with(&log, chunk_bytes);
            let decoded = decode_chunked(&bytes).expect("decodes");
            assert_eq!(decoded, log, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = encode_chunked(&sample_log());
        bytes[0] = b'X';
        assert_eq!(decode_chunked(&bytes), Err(WireError::BadMagic));

        let mut bytes = encode_chunked(&sample_log());
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_chunked(&bytes),
            Err(WireError::UnsupportedVersion { .. })
        ));
    }

    /// Byte offsets at which a cut leaves a *complete* stream: the end of
    /// the header and the end of each chunk's trailing CRC.
    fn chunk_boundaries(bytes: &[u8]) -> Vec<usize> {
        let mut boundaries = vec![7];
        let mut pos = 7usize;
        while pos < bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4 + len + 4;
            boundaries.push(pos);
        }
        boundaries
    }

    #[test]
    fn truncation_recovers_prior_chunks() {
        let log = sample_log();
        let bytes = encode_chunked_with(&log, 4); // several small chunks
        let boundaries = chunk_boundaries(&bytes);
        assert!(boundaries.len() > 3, "want several chunks");
        for cut in 0..bytes.len() {
            let (recovered, err) = decode_chunked_recover(&bytes[..cut]);
            if boundaries.contains(&cut) {
                assert!(err.is_none(), "cut at chunk boundary {cut}: {err:?}");
            } else {
                assert!(
                    matches!(err, Some(WireError::Truncated { .. })),
                    "cut mid-chunk at {cut} must yield Truncated, got {err:?}"
                );
            }
            assert_eq!(
                recovered.entries[..],
                log.entries[..recovered.entries.len()],
                "cut at {cut}: recovered entries must be an intact prefix"
            );
        }
        // Cutting the very last CRC byte still recovers all earlier chunks.
        let (recovered, err) = decode_chunked_recover(&bytes[..bytes.len() - 1]);
        assert!(matches!(err, Some(WireError::Truncated { .. })));
        assert!(!recovered.entries.is_empty());
    }

    #[test]
    fn every_payload_byte_flip_is_caught() {
        let log = sample_log();
        let bytes = encode_chunked(&log); // one chunk
                                          // Header is 7 bytes, then 4 length bytes; payload follows.
        let payload_start = 7 + 4;
        let payload_end = bytes.len() - 4; // CRC trails
        for i in payload_start..payload_end {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            match decode_chunked(&corrupted) {
                Err(WireError::CrcMismatch { chunk: 0, .. }) => {}
                other => panic!("flip at {i}: expected CrcMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn crc_flip_itself_is_caught() {
        let log = sample_log();
        let mut bytes = encode_chunked(&log);
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert!(matches!(
            decode_chunked(&bytes),
            Err(WireError::CrcMismatch { chunk: 0, .. })
        ));
    }

    #[test]
    fn sink_and_source_agree_with_vec_sink() {
        let log = sample_log();
        let mut sink = VecSink::default();
        for e in &log.entries {
            sink.emit(e).expect("vec sink");
        }
        sink.close().expect("vec sink");
        assert!(sink.closed);
        assert_eq!(sink.entries, log.entries);

        let mut src = MemorySource::new(&log);
        assert_eq!(src.core(), log.core);
        let round = read_log(&mut src).expect("memory source");
        assert_eq!(round, log);
    }

    #[test]
    fn chunk_map_reports_every_chunk_of_a_clean_stream() {
        let log = sample_log();
        let bytes = encode_chunked_with(&log, 4);
        let (core, map, err) = chunk_map(&bytes).expect("header ok");
        assert_eq!(core, log.core);
        assert!(err.is_none());
        assert!(map.len() > 3, "want several chunks");
        assert_eq!(
            map.iter().map(|c| c.entries).sum::<usize>(),
            log.entries.len()
        );
        assert!(map.iter().all(|c| c.crc_ok));
        // Offsets tile the stream exactly: header, then framed chunks.
        let mut pos = 7;
        for c in &map {
            assert_eq!(c.offset, pos);
            pos += 4 + c.payload_bytes + 4;
        }
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn chunk_map_survives_a_corrupt_middle_chunk() {
        let log = sample_log();
        let bytes = encode_chunked_with(&log, 4);
        let (_, clean, _) = chunk_map(&bytes).expect("header ok");
        assert!(clean.len() >= 3);
        // Flip a payload byte of the second chunk.
        let mut corrupted = bytes.clone();
        corrupted[clean[1].offset + 4] ^= 0x40;
        let (_, map, err) = chunk_map(&corrupted).expect("header ok");
        assert_eq!(map.len(), clean.len(), "later chunks still mapped");
        assert!(map[0].crc_ok && !map[1].crc_ok && map[2].crc_ok);
        assert_eq!(map[1].entries, 0, "corrupt payloads are not decoded");
        assert!(matches!(err, Some(WireError::CrcMismatch { chunk: 1, .. })));
    }

    #[test]
    fn chunk_map_flags_truncation_and_foreign_streams() {
        let log = sample_log();
        let bytes = encode_chunked(&log);
        let (_, map, err) = chunk_map(&bytes[..bytes.len() - 2]).expect("header ok");
        assert!(map.is_empty(), "the only chunk is cut short");
        assert!(matches!(err, Some(WireError::Truncated { chunk: 0 })));

        assert_eq!(chunk_map(b"RRL"), Err(WireError::Truncated { chunk: 0 }));
        assert_eq!(chunk_map(b"NOPEnope"), Err(WireError::BadMagic));
    }

    #[test]
    fn file_round_trip() {
        let log = sample_log();
        let dir = std::env::temp_dir().join("rr_wire_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("core3.rrlog");
        write_rrlog(&path, &log).expect("writes");
        let read = read_rrlog(&path).expect("reads");
        assert_eq!(read, log);
    }

    #[test]
    fn chunked_is_smaller_than_flat() {
        // A realistic mix: mostly InorderBlocks with small counts and
        // frames with small timestamp deltas.
        let mut log = IntervalLog::new(CoreId::new(0));
        for i in 0..1000u64 {
            log.entries.push(LogEntry::InorderBlock {
                instrs: 50 + (i % 100) as u32,
            });
            if i % 7 == 0 {
                log.entries.push(LogEntry::ReorderedLoad { value: i * 3 });
            }
            log.entries.push(LogEntry::IntervalFrame {
                cisn: (i % 65_536) as u16,
                timestamp: i * 900,
            });
        }
        let flat = log.encode_flat().len();
        let chunked = encode_chunked(&log).len();
        assert!(
            chunked * 2 < flat,
            "chunked ({chunked} B) should be well under half of flat ({flat} B)"
        );
    }

    #[test]
    fn crc32_sliced_matches_reference_at_every_length() {
        // Cover the unaligned head/tail paths of the 8-byte slicing loop.
        let data: Vec<u8> = (0..100u32).map(|i| (i * 37 + 11) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "len={len}"
            );
        }
    }

    #[test]
    fn fast_decoder_matches_reference_on_clean_streams() {
        let log = sample_log();
        for chunk_bytes in [1, 2, 3, 8, 64, DEFAULT_CHUNK_BYTES] {
            let bytes = encode_chunked_with(&log, chunk_bytes);
            assert_eq!(
                decode_chunked(&bytes),
                decode_chunked_reference(&bytes),
                "chunk_bytes={chunk_bytes}"
            );
        }
    }

    #[test]
    fn profiled_decoder_matches_plain_and_attributes_phases() {
        let log = sample_log();
        for chunk_bytes in [1, 8, 64, DEFAULT_CHUNK_BYTES] {
            let bytes = encode_chunked_with(&log, chunk_bytes);
            let mut phases = crate::prof::CodecPhases::default();
            assert_eq!(
                decode_chunked_profiled(&bytes, &mut phases),
                decode_chunked(&bytes),
                "chunk_bytes={chunk_bytes}"
            );
            assert!(phases.chunks > 0, "chunk_bytes={chunk_bytes}");
            assert_eq!(
                phases.payload_bytes,
                (bytes.len() - 7 - 8 * phases.chunks as usize) as u64,
                "payload accounting, chunk_bytes={chunk_bytes}"
            );
        }
        // Error parity on corruption and truncation.
        let bytes = encode_chunked_with(&log, 4);
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x40;
            let mut phases = crate::prof::CodecPhases::default();
            assert_eq!(
                decode_chunked_profiled(&corrupted, &mut phases),
                decode_chunked(&corrupted),
                "flip at {i}"
            );
        }
        for cut in 0..bytes.len() {
            let mut phases = crate::prof::CodecPhases::default();
            assert_eq!(
                decode_chunked_profiled(&bytes[..cut], &mut phases),
                decode_chunked(&bytes[..cut]),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn fast_decoder_matches_reference_on_every_byte_flip() {
        let bytes = encode_chunked_with(&sample_log(), 4);
        for i in 0..bytes.len() {
            for mask in [0x01u8, 0x40, 0x80] {
                let mut corrupted = bytes.clone();
                corrupted[i] ^= mask;
                assert_eq!(
                    decode_chunked(&corrupted),
                    decode_chunked_reference(&corrupted),
                    "flip at {i} mask {mask:#04x}"
                );
            }
        }
    }

    #[test]
    fn fast_decoder_matches_reference_on_every_truncation() {
        let bytes = encode_chunked_with(&sample_log(), 4);
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_chunked(&bytes[..cut]),
                decode_chunked_reference(&bytes[..cut]),
                "cut at {cut}"
            );
        }
    }

    /// Builds a stream whose second chunk ends in an unknown entry tag but
    /// still carries a valid CRC (version-skew corruption, not bit rot).
    fn stream_with_corrupt_entry() -> (Vec<u8>, usize) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(3);
        let mut state = DeltaState::default();
        let chunk = |payload: &[u8], bytes: &mut Vec<u8>| {
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(payload);
            bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        };
        let mut p0 = Vec::new();
        encode_entry(&mut p0, &LogEntry::InorderBlock { instrs: 2 }, &mut state);
        chunk(&p0, &mut bytes);
        let mut p1 = Vec::new();
        encode_entry(&mut p1, &LogEntry::ReorderedLoad { value: 9 }, &mut state);
        let good_in_p1 = 1;
        p1.push(0xEE); // unknown tag
        chunk(&p1, &mut bytes);
        (bytes, 1 + good_in_p1)
    }

    #[test]
    fn corrupt_entry_surfaces_after_the_decoded_prefix() {
        let (bytes, good) = stream_with_corrupt_entry();
        let (log, err) = decode_chunked_recover(&bytes);
        assert_eq!(log.entries.len(), good);
        assert!(
            matches!(err, Some(WireError::Corrupt { chunk: 1, .. })),
            "got {err:?}"
        );
        // The streaming reader yields the same prefix, then the error.
        let mut r = ChunkedReader::new(&bytes[..]).expect("header");
        let mut yielded = 0;
        let err2 = loop {
            match r.next_entry() {
                Ok(Some(_)) => yielded += 1,
                Ok(None) => panic!("stream must end in an error"),
                Err(e) => break e,
            }
        };
        assert_eq!(yielded, good);
        assert!(matches!(err2, WireError::Corrupt { chunk: 1, .. }));
    }

    #[test]
    fn skip_decoder_agrees_with_chunk_map_on_a_corrupt_middle_chunk() {
        let log = sample_log();
        let bytes = encode_chunked_with(&log, 4);
        let (_, clean, _) = chunk_map(&bytes).expect("header ok");
        assert!(clean.len() >= 3);
        let mut corrupted = bytes.clone();
        corrupted[clean[1].offset + 4] ^= 0x40;

        let (_, map, map_err) = chunk_map(&corrupted).expect("header ok");
        let salvage = decode_chunked_skip(&corrupted);
        assert_eq!(
            salvage.log.entries.len(),
            map.iter().map(|c| c.entries).sum::<usize>(),
            "skip decode and chunk map must count the same entries"
        );
        assert!(
            salvage.log.entries.len() > clean[0].entries,
            "chunks after the corrupt one decode"
        );
        assert!(matches!(
            map_err,
            Some(WireError::CrcMismatch { chunk: 1, .. })
        ));
        assert_eq!(map_err, salvage.err);
        // decode_chunked_recover, by contrast, stops at the damage.
        let (prefix, _) = decode_chunked_recover(&corrupted);
        assert_eq!(prefix.entries[..], log.entries[..prefix.entries.len()]);
        assert!(prefix.entries.len() < salvage.log.entries.len());
    }

    #[test]
    fn skip_decoder_matches_strict_decode_on_clean_streams() {
        let log = sample_log();
        for chunk_bytes in [1, 4, 64] {
            let bytes = encode_chunked_with(&log, chunk_bytes);
            let salvage = decode_chunked_skip(&bytes);
            assert!(salvage.err.is_none());
            assert_eq!(salvage.suspect, 0);
            assert_eq!(salvage.log, log);
        }
    }

    /// Satellite regression (wire v3 salvage): a corrupt middle chunk of a
    /// current-version stream must salvage the suffix with *exact*
    /// timestamps and zero suspect entries — the chunks re-anchor on an
    /// absolute first-frame timestamp. The same damage on a v2 stream
    /// (cross-chunk delta state) must flag every salvaged-suffix entry as
    /// suspect instead of quietly emitting wrong timestamps.
    #[test]
    fn salvage_after_corrupt_chunk_is_exact_on_v3_and_suspect_on_v2() {
        // Frames with large distinct timestamps so stale delta context
        // produces visibly wrong values.
        let mut log = IntervalLog::new(CoreId::new(1));
        for i in 0..40u64 {
            log.entries.push(LogEntry::InorderBlock { instrs: 3 });
            log.entries.push(LogEntry::IntervalFrame {
                cisn: i as u16,
                timestamp: 1_000_000 + i * 10_007,
            });
        }
        for (version, want_suspect) in [(VERSION, false), (2u16, true)] {
            let bytes = encode_chunked_with_version(&log, 32, version);
            let (_, clean, _) = chunk_map(&bytes).expect("header ok");
            assert!(clean.len() >= 4, "want several chunks");
            let mut corrupted = bytes.clone();
            corrupted[clean[1].offset + 4] ^= 0x40;

            let salvage = decode_chunked_skip(&corrupted);
            assert!(matches!(
                salvage.err,
                Some(WireError::CrcMismatch { chunk: 1, .. })
            ));
            let lost = clean[1].entries;
            assert_eq!(salvage.log.entries.len(), log.entries.len() - lost);
            // The salvaged log is the original minus exactly chunk 1's
            // entries: prefix from chunk 0, suffix from chunks 2.. .
            let prefix = clean[0].entries;
            assert_eq!(salvage.log.entries[..prefix], log.entries[..prefix]);
            let suffix_ok = salvage.log.entries[prefix..] == log.entries[prefix + lost..];
            if want_suspect {
                assert_eq!(
                    salvage.suspect,
                    salvage.log.entries.len() - prefix,
                    "v{version}: every entry after the damage is suspect"
                );
                assert!(
                    !suffix_ok,
                    "v{version}: stale delta context must actually corrupt \
                     the suffix timestamps (else the flag is vacuous)"
                );
            } else {
                assert_eq!(salvage.suspect, 0, "v{version}: chunks re-anchor");
                assert!(
                    suffix_ok,
                    "v{version}: salvaged suffix timestamps must be exact"
                );
            }
        }
    }

    /// Satellite regression (reservation clamp): a stream whose first
    /// chunks are maximally dense (2-byte entries) and whose bulk is
    /// sparse (many-byte entries) must not reserve output capacity by
    /// extrapolating the dense prefix across the whole stream. The policy
    /// bounds capacity by 4× the decoded entry count.
    #[test]
    fn dense_then_sparse_stream_reserves_bounded_capacity() {
        let mut log = IntervalLog::new(CoreId::new(0));
        // ~4KB of 2-byte entries (one full default chunk), then ~1MB of
        // ~28-byte entries.
        for _ in 0..2048 {
            log.entries.push(LogEntry::InorderBlock { instrs: 1 });
        }
        for i in 0..40_000u64 {
            log.entries.push(LogEntry::ReorderedRmw {
                loaded: u64::MAX - i,
                addr: u64::MAX - 1,
                stored: Some(u64::MAX - 2),
                offset: u32::MAX,
            });
        }
        let bytes = encode_chunked(&log);
        let (decoded, err) = decode_chunked_recover(&bytes);
        assert!(err.is_none());
        assert_eq!(decoded, log);
        assert!(
            decoded.entries.capacity() <= 4 * decoded.entries.len(),
            "capacity {} must stay within 4x of {} entries",
            decoded.entries.capacity(),
            decoded.entries.len()
        );
    }

    #[test]
    fn decode_into_reuses_capacity_and_matches_fresh_decode() {
        let a = sample_log();
        let mut b = IntervalLog::new(CoreId::new(1));
        b.entries.push(LogEntry::InorderBlock { instrs: 7 });
        let bytes_a = encode_chunked_with(&a, 4);
        let bytes_b = encode_chunked(&b);

        let mut out = IntervalLog::new(CoreId::new(9));
        decode_chunked_into(&bytes_a, &mut out).expect("decodes");
        assert_eq!(out, a);
        let cap = out.entries.capacity();
        decode_chunked_into(&bytes_b, &mut out).expect("decodes");
        assert_eq!(out, b);
        assert!(out.entries.capacity() >= cap, "capacity is retained");
        // Error parity with the fresh-log path, including recovered prefix.
        let cut = &bytes_a[..bytes_a.len() - 1];
        let (fresh, fresh_err) = decode_chunked_recover(cut);
        let reused_err = decode_chunked_into(cut, &mut out).unwrap_err();
        assert_eq!(Some(reused_err), fresh_err);
        assert_eq!(out, fresh);
    }

    #[test]
    fn swar_varint_matches_reference_on_exhaustive_vectors() {
        // Every encoded length 1..=10, boundary values, and non-canonical
        // (overlong) encodings — the SWAR path and the byte loop must
        // agree on value, final position, and rejection.
        let mut cases: Vec<Vec<u8>> = Vec::new();
        for v in [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            0x001F_FFFF,
            0x0020_0000,
            0x0FFF_FFFF,
            0x1000_0000,
            u32::MAX as u64,
            (1u64 << 35) - 1,
            1u64 << 35,
            (1u64 << 42) - 1,
            (1u64 << 49) - 1,
            (1u64 << 56) - 1, // longest 8-byte varint: SWAR's edge
            1u64 << 56,       // 9 bytes: falls back
            u64::MAX,         // 10 bytes
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            cases.push(buf);
        }
        // Non-canonical: trailing zero-payload continuation bytes.
        cases.push(vec![0x80, 0x00]);
        cases.push(vec![0xFF, 0x80, 0x80, 0x00]);
        // Overlong / overflowing.
        cases.push(vec![0xFF; 11]);
        cases.push(vec![
            0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F,
        ]);
        for case in &cases {
            // With slack after (word loads see trailing bytes) and exactly
            // at the end of the buffer (bounds fallback).
            for pad in [0usize, 1, 7, 8] {
                let mut buf = case.clone();
                buf.extend(std::iter::repeat_n(0xA5, pad));
                let mut p_ref = 0usize;
                let mut p_swar = 0usize;
                let r = read_varint(&buf, &mut p_ref);
                let s = read_varint_swar(&buf, &mut p_swar);
                assert_eq!(r, s, "case {case:?} pad {pad}");
                if r.is_some() {
                    assert_eq!(p_ref, p_swar, "case {case:?} pad {pad}");
                }
            }
            // Every truncation of the encoding.
            for cut in 0..case.len() {
                let buf = &case[..cut];
                let mut p_ref = 0usize;
                let mut p_swar = 0usize;
                assert_eq!(
                    read_varint(buf, &mut p_ref),
                    read_varint_swar(buf, &mut p_swar),
                    "case {case:?} cut {cut}"
                );
            }
        }
    }

    #[test]
    fn compact7_places_every_payload_group() {
        // One bit set per 7-bit group, in each byte position.
        for i in 0..8u32 {
            let word = 1u64 << (8 * i);
            assert_eq!(compact7(word), 1u64 << (7 * i), "byte {i}");
        }
        assert_eq!(compact7(0x7F7F_7F7F_7F7F_7F7F), (1u64 << 56) - 1);
    }

    #[test]
    fn chunk_spans_tile_the_stream_and_flag_truncation() {
        let log = sample_log();
        let bytes = encode_chunked_with(&log, 4);
        let (core, version, spans, trunc) = chunk_spans(&bytes).expect("header");
        assert_eq!(core, log.core);
        assert_eq!(version, VERSION);
        assert!(trunc.is_none());
        let (_, map, _) = chunk_map(&bytes).expect("header");
        assert_eq!(spans.len(), map.len());
        for (s, c) in spans.iter().zip(&map) {
            assert_eq!((s.offset, s.payload_bytes), (c.offset, c.payload_bytes));
        }
        // Truncation mid-final-chunk: prior spans intact, truncation noted.
        let (_, _, cut_spans, cut_trunc) = chunk_spans(&bytes[..bytes.len() - 1]).expect("header");
        assert_eq!(cut_spans.len(), spans.len() - 1);
        assert!(matches!(cut_trunc, Some(WireError::Truncated { .. })));
    }

    #[test]
    fn range_decode_matches_sequential_on_v3_streams() {
        let mut log = IntervalLog::new(CoreId::new(2));
        for i in 0..200u64 {
            log.entries.push(LogEntry::InorderBlock {
                instrs: 2 + (i % 9) as u32,
            });
            log.entries.push(LogEntry::IntervalFrame {
                cisn: (i % 100) as u16,
                timestamp: i * 977,
            });
        }
        let bytes = encode_chunked_with(&log, 64);
        let (_, version, spans, _) = chunk_spans(&bytes).expect("header");
        assert_eq!(version, VERSION);
        assert!(spans.len() >= 4);
        // Decode in several splits; concatenation must equal sequential.
        for splits in [1usize, 2, 3, spans.len()] {
            let mut entries = Vec::new();
            let per = spans.len().div_ceil(splits);
            for (part, chunk_range) in spans.chunks(per).enumerate() {
                decode_chunked_range(&bytes, chunk_range, part * per, &mut entries)
                    .expect("range decodes");
            }
            assert_eq!(entries, log.entries, "splits={splits}");
        }
        // Error indices match the sequential decoder's numbering.
        let mut corrupted = bytes.clone();
        corrupted[spans[2].offset + 4] ^= 0x01;
        let mut out = Vec::new();
        let err = decode_chunked_range(&corrupted, &spans[2..], 2, &mut out).unwrap_err();
        assert!(matches!(err, WireError::CrcMismatch { chunk: 2, .. }));
    }

    #[test]
    fn v1_and_v2_streams_decode_with_cross_chunk_deltas() {
        // The same log encoded at every supported version decodes to the
        // same entries, and the v1/v2 byte streams differ from v3 only in
        // the header version and the per-chunk re-anchored frame deltas.
        let mut log = IntervalLog::new(CoreId::new(4));
        for i in 0..50u64 {
            log.entries.push(LogEntry::IntervalFrame {
                cisn: i as u16,
                timestamp: 500 + i * 37,
            });
        }
        for version in MIN_VERSION..=VERSION {
            let bytes = encode_chunked_with_version(&log, 16, version);
            assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), version);
            let decoded = decode_chunked(&bytes).expect("decodes");
            assert_eq!(decoded, log, "v{version}");
            assert_eq!(
                decode_chunked_reference(&bytes).expect("reference decodes"),
                log,
                "v{version} reference"
            );
        }
        // v1 and v2 share byte-identical payload encoding.
        let v1 = encode_chunked_with_version(&log, 16, 1);
        let v2 = encode_chunked_with_version(&log, 16, 2);
        assert_eq!(v1[7..], v2[7..]);
    }

    #[test]
    fn scratch_reuses_cleanly_across_streams() {
        let a = sample_log();
        let mut b = IntervalLog::new(CoreId::new(1));
        b.entries.push(LogEntry::InorderBlock { instrs: 7 });
        b.entries.push(LogEntry::IntervalFrame {
            cisn: 0,
            timestamp: 42,
        });
        let bytes_a = encode_chunked_with(&a, 4);
        let bytes_b = encode_chunked(&b);

        let mut scratch = DecodeScratch::new();
        for (bytes, want) in [(&bytes_a, &a), (&bytes_b, &b), (&bytes_a, &a)] {
            let mut r = ChunkedReader::with_scratch(&bytes[..], scratch).expect("header");
            let got = read_log(&mut r).expect("decodes");
            assert_eq!(&got, want);
            scratch = r.into_scratch();
        }

        let (_, map_a, _) = chunk_map_with(&bytes_a, &mut scratch).expect("header");
        let (_, map_b, _) = chunk_map_with(&bytes_b, &mut scratch).expect("header");
        assert_eq!(
            map_a.iter().map(|c| c.entries).sum::<usize>(),
            a.entries.len()
        );
        assert_eq!(
            map_b.iter().map(|c| c.entries).sum::<usize>(),
            b.entries.len()
        );
    }
}
