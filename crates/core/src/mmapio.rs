//! Zero-copy file access for multi-GB `.rrlog` streams: a read-only
//! `mmap` wrapper with a plain-read fallback.
//!
//! The in-memory chunked decoder ([`decode_chunked`](crate::wire::decode_chunked))
//! is the codec fast path, but staging a multi-GB log through
//! `std::fs::read` first copies every byte into a heap buffer and commits
//! that much RSS before decoding starts. [`MappedBytes`] maps the file
//! instead, so the kernel pages bytes in on demand and the page cache is
//! shared across concurrent readers — the decoder walks the file as one
//! `&[u8]` either way.
//!
//! Fallback rules (in order):
//!
//! 1. Empty files are served from an empty heap buffer — POSIX `mmap`
//!    rejects zero-length mappings.
//! 2. On non-Unix targets, or if the `mmap` syscall fails for any reason
//!    (file on a filesystem without mmap support, address-space
//!    exhaustion), the file is read into a heap buffer. Behaviour is
//!    identical either way; only residency and copy cost differ.
//!
//! No external crates: the two syscalls are declared directly and the
//! mapping is `munmap`ped on drop. The mapping is `PROT_READ |
//! MAP_PRIVATE`, so the underlying file is never written through it.
//!
//! [`MappedSource`] adapts a mapped file to the streaming
//! [`LogSource`](crate::wire::LogSource) consumers.

// The one module allowed to use unsafe: syscall FFI plus the mapped-slice
// lifetime juggling, each with its invariants documented inline.
#![allow(unsafe_code)]

use std::fs::File;
use std::path::Path;

use rr_mem::CoreId;

use crate::log::LogEntry;
use crate::wire::{ChunkedReader, DecodeScratch, LogSource, WireError};

#[cfg(unix)]
mod sys {
    //! Minimal hand-declared bindings for read-only file mappings.
    //! `PROT_READ` and `MAP_PRIVATE` have the same values on every Unix
    //! we target (Linux, macOS, the BSDs).

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }
}

/// A read-only `mmap` of an entire file. Unmapped on drop.
#[cfg(unix)]
#[derive(Debug)]
pub struct MappedFile {
    ptr: *const u8,
    len: usize,
}

#[cfg(unix)]
impl MappedFile {
    /// Maps `file` (which must be non-empty) read-only in its entirety.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the metadata query or the `mmap` syscall
    /// fails — callers fall back to a plain read.
    pub fn map(file: &File) -> Result<Self, WireError> {
        use std::os::unix::io::AsRawFd;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| WireError::Io("file exceeds the address space".to_string()))?;
        if len == 0 {
            return Err(WireError::Io("cannot mmap an empty file".to_string()));
        }
        // SAFETY: a fresh read-only private mapping of `len` bytes backed
        // by an open fd; we only ever read through it and unmap on drop.
        let ptr = unsafe {
            sys::mmap(
                core::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void*)-1.
        if ptr.is_null() || ptr as isize == -1 {
            return Err(WireError::Io(format!(
                "mmap of {len} bytes failed: {}",
                std::io::Error::last_os_error()
            )));
        }
        Ok(MappedFile {
            ptr: ptr.cast::<u8>().cast_const(),
            len,
        })
    }

    /// The mapped bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: the mapping is valid for `len` bytes until drop. A
        // concurrent truncation of the underlying file could fault reads
        // past the new EOF; `.rrlog` files are write-once, and the same
        // hazard exists for any reader of a file being rewritten.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for MappedFile {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from a successful mmap and are unmapped
        // exactly once. Failure is ignorable: the mapping dies with the
        // process anyway.
        unsafe {
            let _ = sys::munmap(self.ptr.cast_mut().cast(), self.len);
        }
    }
}

// SAFETY: the mapping is read-only and the raw pointer is never aliased
// mutably; sending or sharing it across threads is as safe as sharing a
// `&[u8]` (the parallel ingest path decodes one mapping from many
// workers).
#[cfg(unix)]
unsafe impl Send for MappedFile {}
#[cfg(unix)]
unsafe impl Sync for MappedFile {}

/// A whole file as contiguous bytes: memory-mapped where possible, heap
/// read otherwise. Dereferences to `&[u8]`, so every in-memory decoder
/// accepts it directly.
#[derive(Debug)]
pub enum MappedBytes {
    /// A live read-only mapping (Unix, non-empty file, mmap succeeded).
    #[cfg(unix)]
    Mapped(MappedFile),
    /// Heap fallback: empty files, non-Unix targets, or mmap failure.
    Heap(Vec<u8>),
}

impl MappedBytes {
    /// Opens `path` for zero-copy reading, applying the module-level
    /// fallback rules.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the file cannot be opened or read at all
    /// (mmap failure alone falls back to a plain read instead).
    pub fn open(path: &Path) -> Result<Self, WireError> {
        #[cfg(unix)]
        {
            if let Ok(file) = File::open(path) {
                if let Ok(mapped) = MappedFile::map(&file) {
                    return Ok(MappedBytes::Mapped(mapped));
                }
            }
            // Fall through: open error surfaces from fs::read with the
            // path-appropriate message; empty files land here by design.
        }
        Ok(MappedBytes::Heap(std::fs::read(path)?))
    }

    /// The file contents.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            MappedBytes::Mapped(m) => m.as_slice(),
            MappedBytes::Heap(v) => v,
        }
    }

    /// Whether the bytes come from a live mapping (false = heap fallback).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            MappedBytes::Mapped(_) => true,
            MappedBytes::Heap(_) => false,
        }
    }
}

impl std::ops::Deref for MappedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for MappedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A streaming [`LogSource`] over a memory-mapped `.rrlog` file — the
/// zero-copy counterpart of [`ChunkedReader`] for consumers that want
/// entry-at-a-time iteration without staging the file on the heap.
///
/// Internally this *is* a [`ChunkedReader`] over the mapped bytes (the
/// reader's chunk staging reuses one scratch, so per-entry cost is a
/// bounds-checked copy from the decoded batch), which keeps its error
/// semantics bit-identical to every other decode path.
#[derive(Debug)]
pub struct MappedSource {
    bytes: &'static [u8],
    /// The reader iterates a synthetic `'static` slice into `_backing`;
    /// the box keeps the backing address stable across moves of `self`,
    /// and nothing dereferences the slice after `self` is dropped.
    reader: ChunkedReader<&'static [u8]>,
    _backing: Box<MappedBytes>,
}

impl MappedSource {
    /// Opens `path` (mmap with heap fallback) and validates the header.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the file cannot be opened;
    /// [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] /
    /// [`WireError::Truncated`] for foreign or cut-short headers.
    pub fn open(path: &Path) -> Result<Self, WireError> {
        Self::with_scratch(path, DecodeScratch::new())
    }

    /// As [`MappedSource::open`], reusing decode scratch from a previous
    /// stream.
    ///
    /// # Errors
    ///
    /// As [`MappedSource::open`].
    pub fn with_scratch(path: &Path, scratch: DecodeScratch) -> Result<Self, WireError> {
        let backing = Box::new(MappedBytes::open(path)?);
        // SAFETY: the slice borrows the boxed mapping, which is owned by
        // the same struct and never moved out or dropped while `reader`
        // is alive; the box keeps the backing address stable.
        let bytes: &'static [u8] =
            unsafe { std::slice::from_raw_parts(backing.as_slice().as_ptr(), backing.len()) };
        let reader = ChunkedReader::with_scratch(bytes, scratch)?;
        Ok(MappedSource {
            bytes,
            reader,
            _backing: backing,
        })
    }

    /// The whole underlying byte stream (header included) — for callers
    /// that mix streaming with whole-stream operations such as
    /// [`wire::chunk_map`].
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        self.bytes
    }

    /// The wire-format version from the stream header.
    #[must_use]
    pub fn version(&self) -> u16 {
        self.reader.version()
    }

    /// Recovers the decode scratch for reuse on the next stream.
    #[must_use]
    pub fn into_scratch(self) -> DecodeScratch {
        self.reader.into_scratch()
    }
}

impl LogSource for MappedSource {
    fn core(&self) -> CoreId {
        self.reader.core()
    }

    fn next_entry(&mut self) -> Result<Option<LogEntry>, WireError> {
        self.reader.next_entry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::IntervalLog;
    use crate::wire::{self, read_log, write_rrlog};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rr_mmapio_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    fn sample_log() -> IntervalLog {
        let mut log = IntervalLog::new(CoreId::new(5));
        for i in 0..500u64 {
            log.entries.push(LogEntry::InorderBlock {
                instrs: 1 + (i % 13) as u32,
            });
            if i % 3 == 0 {
                log.entries.push(LogEntry::ReorderedLoad { value: i * 7 });
            }
            log.entries.push(LogEntry::IntervalFrame {
                cisn: (i % 100) as u16,
                timestamp: i * 211,
            });
        }
        log
    }

    #[test]
    fn mapped_bytes_match_fs_read() {
        let path = temp_path("bytes.rrlog");
        let log = sample_log();
        write_rrlog(&path, &log).expect("writes");
        let mapped = MappedBytes::open(&path).expect("opens");
        assert_eq!(&*mapped, std::fs::read(&path).expect("reads").as_slice());
        #[cfg(unix)]
        assert!(mapped.is_mapped(), "non-empty file on unix maps");
    }

    #[test]
    fn empty_file_uses_heap_fallback() {
        let path = temp_path("empty.rrlog");
        std::fs::write(&path, b"").expect("writes");
        let mapped = MappedBytes::open(&path).expect("opens");
        assert!(!mapped.is_mapped());
        assert!(mapped.is_empty());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = temp_path("does-not-exist.rrlog");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(MappedBytes::open(&path), Err(WireError::Io(_))));
    }

    #[test]
    fn mapped_source_streams_the_whole_log() {
        let path = temp_path("source.rrlog");
        let log = sample_log();
        write_rrlog(&path, &log).expect("writes");
        let mut src = MappedSource::open(&path).expect("opens");
        assert_eq!(src.core(), log.core);
        assert_eq!(src.version(), wire::VERSION);
        let round = read_log(&mut src).expect("streams");
        assert_eq!(round, log);
    }

    #[test]
    fn mapped_source_surfaces_corruption_like_the_memory_decoder() {
        let path = temp_path("corrupt.rrlog");
        let log = sample_log();
        let mut bytes = wire::encode_chunked_with(&log, 64);
        // Flip a payload byte in a middle chunk.
        let (_, map, _) = wire::chunk_map(&bytes).expect("header");
        assert!(map.len() >= 3);
        bytes[map[1].offset + 4] ^= 0x20;
        std::fs::write(&path, &bytes).expect("writes");

        let want = wire::decode_chunked(&bytes).unwrap_err();
        let mut src = MappedSource::open(&path).expect("opens");
        let mut yielded = 0usize;
        let got = loop {
            match src.next_entry() {
                Ok(Some(_)) => yielded += 1,
                Ok(None) => panic!("stream must end in an error"),
                Err(e) => break e,
            }
        };
        assert_eq!(got, want);
        let (prefix, _) = wire::decode_chunked_recover(&bytes);
        assert_eq!(yielded, prefix.entries.len());
    }

    #[test]
    fn mapped_source_scratch_reuses_across_files() {
        let log = sample_log();
        let path_a = temp_path("reuse_a.rrlog");
        let path_b = temp_path("reuse_b.rrlog");
        write_rrlog(&path_a, &log).expect("writes");
        let mut small = IntervalLog::new(CoreId::new(0));
        small.entries.push(LogEntry::InorderBlock { instrs: 1 });
        write_rrlog(&path_b, &small).expect("writes");

        let mut scratch = DecodeScratch::new();
        for (path, want) in [(&path_a, &log), (&path_b, &small), (&path_a, &log)] {
            let mut src = MappedSource::with_scratch(path, scratch).expect("opens");
            let got = read_log(&mut src).expect("streams");
            assert_eq!(&got, want);
            scratch = src.into_scratch();
        }
    }
}
