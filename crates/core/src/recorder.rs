use rr_cpu::{CoreObserver, PerformRecord};
use rr_mem::{AccessKind, CoreId, LineAddr};

use crate::log::{IntervalLog, LogEntry};
use crate::signature::Signature;
use crate::snoop_table::SnoopTable;
use crate::trace::{CloseReason, CountVerdict, TraceEvent, TraceRing};
use crate::traq::{Traq, TraqEntry, TraqKind};
use crate::wire::{LogSink, WireError};

/// Which RelaxReplay design the recorder implements (paper §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Design {
    /// RelaxReplay_Base: an access whose perform and counting events fall
    /// in different intervals (PISN ≠ CISN) is always logged as reordered.
    Base,
    /// RelaxReplay_Opt: additionally consults the Snoop Table, logging the
    /// access as reordered only if a conflicting coherence transaction was
    /// actually observed between the two events.
    Opt,
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Design::Base => write!(f, "Base"),
            Design::Opt => write!(f, "Opt"),
        }
    }
}

/// Why an interval terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Termination {
    Conflict,
    MaxSize,
    Final,
    /// Externally forced (rr-check pressure injection).
    Forced,
}

/// A per-processor partial order of intervals, recorded alongside the
/// total-order timestamps (the Cyrus-style pairing the paper's §3.6
/// describes: "RelaxReplay can be paired with any chunk-based MRR scheme";
/// a scheme that records a partial order admits **parallel replay**).
///
/// For each interval (by ordinal, matching the log's frame order):
///
/// * `preds` — intervals of *other* cores that must replay first. An edge
///   is created whenever this core's coherence transaction was observed by
///   another core: the observer replies with its latest closed interval
///   (the conflicting one if the snoop terminated it, conservatively the
///   previous one otherwise), exactly the information Cyrus piggybacks on
///   coherence replies.
/// * `barrier` — the interval was closed by a dirty eviction (directory
///   mode): after it, this core stops observing the line, so the interval
///   must conservatively precede every later-timestamped interval.
/// * `timestamps` — the frame timestamps, for barrier ordering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalOrdering {
    /// Cross-core predecessor sets, one per interval.
    pub preds: Vec<Vec<(CoreId, u64)>>,
    /// Barrier flags, one per interval.
    pub barriers: Vec<bool>,
    /// Frame timestamps, one per interval.
    pub timestamps: Vec<u64>,
}

/// Recorder configuration (paper Table 1, "RelaxReplay Parameters").
#[derive(Clone, Debug)]
pub struct RecorderConfig {
    /// Base or Opt design.
    pub design: Design,
    /// Maximum interval size in instructions (`None` = unbounded, the
    /// paper's "INF" configuration; `Some(4096)` is its "4K").
    pub max_interval_instrs: Option<u32>,
    /// TRAQ capacity (Table 1: 176).
    pub traq_entries: usize,
    /// Bloom banks per signature (Table 1: 4).
    pub sig_banks: usize,
    /// Bits per Bloom bank (Table 1: 256).
    pub sig_bits: u32,
    /// Counters per Snoop Table array (Table 1: 64). Only used by Opt.
    pub snoop_entries: usize,
    /// Maximum value of the NMI field (4 bits ⇒ 15).
    pub nmi_max: u32,
    /// TRAQ entries counted per cycle (Table 1: the TRAQ is read twice per
    /// cycle at counting events).
    pub count_per_cycle: usize,
    /// Seed for the H3 hash functions.
    pub seed: u64,
}

impl RecorderConfig {
    /// The paper's parameters for the given design and maximum interval
    /// size.
    #[must_use]
    pub fn splash_default(design: Design, max_interval_instrs: Option<u32>) -> Self {
        RecorderConfig {
            design,
            max_interval_instrs,
            traq_entries: 176,
            sig_banks: 4,
            sig_bits: 256,
            snoop_entries: 64,
            nmi_max: 15,
            count_per_cycle: 2,
            seed: 0x5e1a_c4e9_1a97_0001,
        }
    }
}

/// Counters the recorder accumulates, feeding Figures 9–12 and 14.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Memory-access instructions counted (loads).
    pub counted_loads: u64,
    /// Memory-access instructions counted (stores).
    pub counted_stores: u64,
    /// Memory-access instructions counted (RMWs).
    pub counted_rmws: u64,
    /// Total instructions counted (including non-memory ones via NMI).
    pub counted_instrs: u64,
    /// Loads logged as reordered.
    pub reordered_loads: u64,
    /// Stores logged as reordered.
    pub reordered_stores: u64,
    /// RMWs logged as reordered.
    pub reordered_rmws: u64,
    /// Accesses whose perform event was moved **across intervals** to the
    /// counting event (PISN ≠ CISN but declared in order — Opt only).
    pub moved_across_intervals: u64,
    /// Interval terminations due to a conflicting snoop.
    pub term_conflict: u64,
    /// Interval terminations due to the maximum interval size.
    pub term_max_size: u64,
    /// The final termination at thread end.
    pub term_final: u64,
    /// Interval terminations forced externally (rr-check pressure modes).
    pub term_forced: u64,
    /// Accesses conservatively declared reordered because ≥ `u16::MAX`
    /// coherence transactions were observed between their perform and
    /// counting events — enough for the 16-bit Snoop Table counters to
    /// have wrapped all the way around to the sampled value (Opt only).
    pub snoop_wrap_conservative: u64,
    /// Errors the streaming sink reported (the log is poisoned after the
    /// first one).
    pub sink_errors: u64,
    /// Sum of TRAQ occupancy over all samples (for the average).
    pub traq_occupancy_sum: u64,
    /// Number of TRAQ occupancy samples.
    pub traq_samples: u64,
    /// Histogram of TRAQ occupancy in bins of 10 entries (Figure 12(b)).
    pub traq_hist: Vec<u64>,
    /// Highest TRAQ occupancy seen.
    pub traq_peak: usize,
}

impl RecorderStats {
    /// Memory-access instructions counted in total.
    #[must_use]
    pub fn counted_mem(&self) -> u64 {
        self.counted_loads + self.counted_stores + self.counted_rmws
    }

    /// Memory-access instructions logged as reordered.
    #[must_use]
    pub fn reordered(&self) -> u64 {
        self.reordered_loads + self.reordered_stores + self.reordered_rmws
    }

    /// Fraction of memory-access instructions logged as reordered
    /// (Figure 9's metric).
    #[must_use]
    pub fn reordered_fraction(&self) -> f64 {
        let mem = self.counted_mem();
        if mem == 0 {
            return 0.0;
        }
        self.reordered() as f64 / mem as f64
    }

    /// Average TRAQ occupancy (Figure 12(a)).
    #[must_use]
    pub fn traq_avg(&self) -> f64 {
        if self.traq_samples == 0 {
            return 0.0;
        }
        self.traq_occupancy_sum as f64 / self.traq_samples as f64
    }

    /// Every scalar counter as a `(name, value)` pair, for the metrics
    /// registry (`traq_hist` is exported separately as a histogram).
    ///
    /// Names are stable identifiers (they end up in JSONL sidecars that
    /// downstream tooling diffs across runs); add to this list, never
    /// rename.
    #[must_use]
    pub fn counter_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("counted_loads", self.counted_loads),
            ("counted_stores", self.counted_stores),
            ("counted_rmws", self.counted_rmws),
            ("counted_instrs", self.counted_instrs),
            ("reordered_loads", self.reordered_loads),
            ("reordered_stores", self.reordered_stores),
            ("reordered_rmws", self.reordered_rmws),
            ("moved_across_intervals", self.moved_across_intervals),
            ("term_conflict", self.term_conflict),
            ("term_max_size", self.term_max_size),
            ("term_final", self.term_final),
            ("term_forced", self.term_forced),
            ("snoop_wrap_conservative", self.snoop_wrap_conservative),
            ("sink_errors", self.sink_errors),
            ("traq_occupancy_sum", self.traq_occupancy_sum),
            ("traq_samples", self.traq_samples),
            ("traq_peak", self.traq_peak as u64),
        ]
    }
}

/// A per-processor RelaxReplay Memory Race Recorder (paper Figure 6(a)).
///
/// Attach it to a core as its [`CoreObserver`]; route coherence snoops from
/// the memory system through [`Recorder::on_snoop`] (and dirty evictions
/// through [`Recorder::on_dirty_eviction`] in directory mode); call
/// [`Recorder::tick`] once per cycle after the core's tick so counting
/// proceeds; call [`Recorder::finish`] when the thread completes. The
/// resulting [`IntervalLog`] replays with `rr-replay`.
///
/// The recorder is a pure observer: attaching several (Base/Opt × interval
/// sizes) to one execution records the same run under every design at once.
pub struct Recorder {
    cfg: RecorderConfig,
    cisn: u16,
    /// The *Current InorderBlock Size* count (instructions, not just
    /// memory accesses — eases replay; paper §3.3.3).
    block_size: u32,
    /// Instructions counted in the current interval (for max-size
    /// termination).
    instrs_in_interval: u32,
    /// Entries logged since the last frame (to know the final interval is
    /// non-empty).
    entries_since_frame: usize,
    read_sig: Signature,
    write_sig: Signature,
    snoop_table: Option<SnoopTable>,
    traq: Traq,
    /// Non-memory instructions dispatched since the last TRAQ allocation.
    nmi_pending: u32,
    /// Sequence number of the newest TRAQ allocation (or last counted
    /// entry), `-1` before any. Used to recompute `nmi_pending` after a
    /// squash.
    alloc_boundary: i64,
    /// Sequence number of the last counted entry.
    counted_up_to: i64,
    log: IntervalLog,
    ordering: IntervalOrdering,
    /// Cross-core predecessors accumulated for the interval currently
    /// being recorded.
    current_preds: Vec<(CoreId, u64)>,
    /// Set when the current interval is being closed by a dirty eviction.
    closing_is_barrier: bool,
    stats: RecorderStats,
    finished: bool,
    /// Event tracing: when attached, the recorder's decisions are captured
    /// into this bounded ring. Capture is a pure side channel — it never
    /// feeds back into recording, so logs are byte-identical with tracing
    /// on or off.
    tracer: Option<TraceRing>,
    /// Streaming mode: entries drain into this sink at every interval
    /// boundary instead of accumulating in `log`.
    sink: Option<Box<dyn LogSink>>,
    /// First sink failure, latched until [`Recorder::take_sink_error`].
    sink_error: Option<WireError>,
    /// Set on the first sink failure; once poisoned, nothing more is sent
    /// to the sink and un-emitted entries stay buffered for inspection.
    poisoned: bool,
    /// Entries streamed out through the sink so far (successful emits
    /// only).
    streamed_entries: u64,
    /// Total coherence transactions this recorder has observed (remote
    /// snoops, dirty evictions, and own store performs — every event that
    /// bumps the Snoop Table). Snapshotted into each TRAQ entry at perform
    /// time so counting can detect a full 16-bit counter wrap.
    snoops_seen: u64,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("core", &self.log.core)
            .field("design", &self.cfg.design)
            .field("cisn", &self.cisn)
            .field("traq_len", &self.traq.len())
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// Creates a recorder for `core`.
    #[must_use]
    pub fn new(core: CoreId, cfg: RecorderConfig) -> Self {
        let read_sig = Signature::new(cfg.sig_banks, cfg.sig_bits, cfg.seed ^ 0x0ead);
        let write_sig = Signature::new(cfg.sig_banks, cfg.sig_bits, cfg.seed ^ 0x317e);
        let snoop_table = match cfg.design {
            Design::Opt => Some(SnoopTable::new(cfg.snoop_entries, cfg.seed ^ 0x5009)),
            Design::Base => None,
        };
        let traq = Traq::new(cfg.traq_entries);
        Recorder {
            cisn: 0,
            block_size: 0,
            instrs_in_interval: 0,
            entries_since_frame: 0,
            read_sig,
            write_sig,
            snoop_table,
            traq,
            nmi_pending: 0,
            alloc_boundary: -1,
            counted_up_to: -1,
            log: IntervalLog::new(core),
            ordering: IntervalOrdering::default(),
            current_preds: Vec::new(),
            closing_is_barrier: false,
            stats: RecorderStats {
                traq_hist: vec![0; cfg.traq_entries / 10 + 1],
                ..RecorderStats::default()
            },
            finished: false,
            tracer: None,
            sink: None,
            sink_error: None,
            poisoned: false,
            streamed_entries: 0,
            snoops_seen: 0,
            cfg,
        }
    }

    /// Attaches an event-trace ring. The first interval's open event is
    /// emitted immediately (at cycle 0), so the timeline starts balanced.
    pub fn set_tracer(&mut self, ring: TraceRing) {
        self.tracer = Some(ring);
        let cisn = self.cisn;
        let ordinal = self.ordering.timestamps.len() as u64;
        self.trace(0, TraceEvent::IntervalOpen { cisn, ordinal });
    }

    /// Detaches and returns the trace ring, if any.
    pub fn take_tracer(&mut self) -> Option<TraceRing> {
        self.tracer.take()
    }

    /// Captures `event` if a tracer is attached (no-op otherwise).
    fn trace(&mut self, cycle: u64, event: TraceEvent) {
        if let Some(t) = &mut self.tracer {
            t.push(cycle, event);
        }
    }

    /// Switches the recorder into streaming mode: from now on, log entries
    /// drain into `sink` at every interval boundary instead of
    /// accumulating unboundedly in memory (the production shape — the log
    /// is a continuously produced artifact, not an in-memory value).
    ///
    /// In streaming mode [`Recorder::log`] / [`Recorder::into_log`] only
    /// see the entries of the not-yet-terminated interval; sink failures
    /// are latched and reported by [`Recorder::take_sink_error`] (the
    /// hardware-event entry points cannot propagate errors).
    pub fn set_sink(&mut self, sink: Box<dyn LogSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the sink, if any. The caller regains ownership
    /// (e.g. to inspect a [`VecSink`](crate::wire::VecSink)); the sink has
    /// already been closed if [`Recorder::finish`] ran.
    pub fn take_sink(&mut self) -> Option<Box<dyn LogSink>> {
        self.sink.take()
    }

    /// The first error the sink reported, if any, clearing it. The
    /// recorder stays [poisoned](Recorder::is_poisoned): a recording whose
    /// sink failed is incomplete and must be discarded.
    pub fn take_sink_error(&mut self) -> Option<WireError> {
        self.sink_error.take()
    }

    /// The first error the sink reported, if any, without clearing it.
    #[must_use]
    pub fn sink_error(&self) -> Option<&WireError> {
        self.sink_error.as_ref()
    }

    /// Whether a sink failure poisoned this recording. Once poisoned,
    /// nothing more is emitted; entries that never reached the sink stay
    /// buffered in [`Recorder::log`] and [`Recorder::streamed_entries`]
    /// counts only what the sink actually accepted.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Entries the sink actually accepted so far (streaming mode only).
    #[must_use]
    pub fn streamed_entries(&self) -> u64 {
        self.streamed_entries
    }

    /// Drains every buffered entry into the sink (streaming mode only).
    /// On a sink failure the recording is poisoned: the failed entry and
    /// everything after it stay buffered (nothing is silently dropped),
    /// the error is latched, and no further emits are attempted.
    fn drain_into_sink(&mut self) {
        let Some(sink) = &mut self.sink else {
            return;
        };
        if self.poisoned {
            return;
        }
        let mut emitted = 0usize;
        let mut failure = None;
        for e in &self.log.entries {
            match sink.emit(e) {
                Ok(()) => emitted += 1,
                Err(err) => {
                    failure = Some(err);
                    break;
                }
            }
        }
        self.streamed_entries += emitted as u64;
        self.log.entries.drain(..emitted);
        if let Some(err) = failure {
            self.stats.sink_errors += 1;
            if self.sink_error.is_none() {
                self.sink_error = Some(err);
            }
            self.poisoned = true;
        }
    }

    /// The recorder's configuration.
    #[must_use]
    pub fn config(&self) -> &RecorderConfig {
        &self.cfg
    }

    /// The log produced so far.
    #[must_use]
    pub fn log(&self) -> &IntervalLog {
        &self.log
    }

    /// Consumes the recorder, returning its log.
    ///
    /// # Panics
    ///
    /// Panics if [`Recorder::finish`] has not been called.
    #[must_use]
    pub fn into_log(self) -> IntervalLog {
        assert!(self.finished, "finish() must be called before into_log()");
        self.log
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &RecorderStats {
        &self.stats
    }

    /// Current TRAQ occupancy (entries in use).
    #[must_use]
    pub fn traq_len(&self) -> usize {
        self.traq.len()
    }

    /// Configured TRAQ capacity.
    #[must_use]
    pub fn traq_capacity(&self) -> usize {
        self.traq.capacity()
    }

    // ----- coherence-side events ----------------------------------------

    /// Reports a coherence transaction observed from another processor.
    ///
    /// Updates the Snoop Table (Opt) and terminates the current interval if
    /// the transaction conflicts with the read/write signatures: a remote
    /// write conflicts with both sets; a remote read conflicts with local
    /// writes only.
    pub fn on_snoop(&mut self, line: LineAddr, is_write: bool, cycle: u64) {
        self.snoops_seen += 1;
        if let Some(t) = &mut self.snoop_table {
            t.record(line);
            self.trace(
                cycle,
                TraceEvent::SnoopTableBump {
                    line: line.line_number(),
                },
            );
        }
        let conflict = if is_write {
            self.read_sig.test(line) || self.write_sig.test(line)
        } else {
            self.write_sig.test(line)
        };
        self.trace(
            cycle,
            TraceEvent::Snoop {
                line: line.line_number(),
                is_write,
                conflict,
            },
        );
        if conflict {
            self.terminate_interval(cycle, Termination::Conflict);
        }
    }

    /// Reports that this core's L1 evicted a dirty line (directory mode,
    /// paper §4.3). Two conservative actions keep recording sound once the
    /// core stops observing the line's coherence traffic:
    ///
    /// * the Snoop Table counters are bumped, so any performed-but-
    ///   uncounted access to the line is declared reordered (the paper's
    ///   fix), and
    /// * if the line is in the current interval's signatures, the interval
    ///   is terminated — otherwise an unobserved later remote write could
    ///   end up ordered *before* this interval even though this core's
    ///   accesses performed first (the interval-ordering side of §4.3,
    ///   which the paper delegates to a directory-aware chunk scheme).
    pub fn on_dirty_eviction(&mut self, line: LineAddr, cycle: u64) {
        self.snoops_seen += 1;
        if let Some(t) = &mut self.snoop_table {
            t.record(line);
            self.trace(
                cycle,
                TraceEvent::SnoopTableBump {
                    line: line.line_number(),
                },
            );
        }
        let conflict = self.read_sig.test(line) || self.write_sig.test(line);
        self.trace(
            cycle,
            TraceEvent::DirtyEviction {
                line: line.line_number(),
                conflict,
            },
        );
        if conflict {
            // For the partial order (parallel replay), an eviction-closed
            // interval must precede every later-timestamped interval: this
            // core stops observing the line, so no more edges can be
            // generated for it.
            self.closing_is_barrier = true;
            self.terminate_interval(cycle, Termination::Conflict);
        }
    }

    /// Records a cross-core ordering predecessor for the interval currently
    /// being recorded: this core's latest coherence transaction was
    /// observed by `src_core`, whose interval `src_interval` (an ordinal,
    /// not a wrapping CISN) must replay before this one. In hardware this
    /// is the ordering information Cyrus-style recorders piggyback on
    /// coherence replies (paper §2, §3.6); the simulator delivers it when
    /// it routes the snoop.
    pub fn on_predecessor(&mut self, src_core: CoreId, src_interval: u64) {
        self.current_preds.push((src_core, src_interval));
    }

    /// Number of intervals closed so far (the next frame gets this
    /// ordinal).
    #[must_use]
    pub fn intervals_completed(&self) -> u64 {
        self.ordering.timestamps.len() as u64
    }

    /// The recorded partial order of this core's intervals (parallel
    /// replay, paper §3.6). Parallel to the log's frames.
    #[must_use]
    pub fn ordering(&self) -> &IntervalOrdering {
        &self.ordering
    }

    // ----- counting ------------------------------------------------------

    /// Advances the counting machinery by one cycle: counts up to
    /// `count_per_cycle` ready TRAQ-head entries and samples TRAQ
    /// occupancy.
    pub fn tick(&mut self, cycle: u64) {
        let occupancy = self.traq.len();
        self.stats.traq_occupancy_sum += occupancy as u64;
        self.stats.traq_samples += 1;
        let bin = (occupancy / 10).min(self.stats.traq_hist.len() - 1);
        self.stats.traq_hist[bin] += 1;
        self.stats.traq_peak = self.stats.traq_peak.max(occupancy);
        for _ in 0..self.cfg.count_per_cycle {
            let Some(entry) = self.traq.pop_ready() else {
                break;
            };
            self.count_entry(entry, cycle);
        }
    }

    /// Flushes remaining state when the thread completes: groups any
    /// trailing non-memory instructions, drains the TRAQ and terminates the
    /// final interval.
    ///
    /// # Panics
    ///
    /// Panics if the core has not actually finished (some TRAQ entry is not
    /// ready to count).
    pub fn finish(&mut self, cycle: u64) {
        if self.finished {
            return;
        }
        if self.nmi_pending > 0 {
            let seq = (self.alloc_boundary + i64::from(self.nmi_pending)) as u64;
            let nmi = self.nmi_pending;
            self.push_traq(TraqEntry {
                seq,
                kind: TraqKind::Filler,
                nmi,
                pisn: None,
                perform_ordinal: None,
                snoops_at_perform: 0,
                performed: false,
                retired: true,
                addr: 0,
                line: LineAddr::containing(0),
                loaded: None,
                stored: None,
                sample: Default::default(),
            });
            self.nmi_pending = 0;
        }
        while let Some(entry) = self.traq.pop_ready() {
            self.count_entry(entry, cycle);
        }
        assert_eq!(
            self.traq.len(),
            0,
            "finish() on a core that is still executing"
        );
        if self.entries_since_frame > 0 || self.block_size > 0 {
            self.terminate_interval(cycle, Termination::Final);
        }
        if let Some(sink) = &mut self.sink {
            if let Err(err) = sink.close() {
                self.stats.sink_errors += 1;
                if self.sink_error.is_none() {
                    self.sink_error = Some(err);
                }
                self.poisoned = true;
            }
        }
        self.finished = true;
    }

    fn push_traq(&mut self, entry: TraqEntry) {
        self.alloc_boundary = entry.seq as i64;
        self.traq.push(entry);
    }

    fn count_entry(&mut self, entry: TraqEntry, cycle: u64) {
        self.counted_up_to = entry.seq as i64;
        match entry.kind {
            TraqKind::Filler => {
                self.block_size += entry.nmi;
                self.note_counted(entry.nmi, cycle);
            }
            TraqKind::Mem(kind) => {
                let pisn = entry.pisn.expect("counted access has performed");
                let perform_ordinal = entry.perform_ordinal.expect("counted access has performed");
                let current_ordinal = self.intervals_completed();
                // Classify on the exact (non-wrapping) interval ordinal,
                // not the 16-bit PISN/CISN pair: once perform and counting
                // drift ≥ 65536 intervals apart the hardware fields alias
                // and an old access would look freshly in-interval.
                let same_interval = perform_ordinal == current_ordinal;
                // Full-wrap guard for the Snoop Table (Opt): its 16-bit
                // counters return to the sampled value after exactly 65536
                // bumps, hiding a conflict. Total transactions observed
                // bound any single counter's increments, so if fewer than
                // u16::MAX happened between perform and counting no
                // counter can have wrapped and the table is trustworthy;
                // otherwise conservatively declare the access reordered.
                let snoop_wrap_possible =
                    self.snoops_seen - entry.snoops_at_perform >= u64::from(u16::MAX);
                let mut wrap_conservative = false;
                let reordered = if same_interval {
                    false
                } else {
                    match &self.snoop_table {
                        // Base: a different interval means reordered.
                        None => true,
                        // Opt: only if a conflicting transaction was seen
                        // (or could have been hidden by a full wrap).
                        Some(t) => {
                            let table_says = t.is_reordered(entry.line, entry.sample);
                            wrap_conservative = snoop_wrap_possible && !table_says;
                            table_says || snoop_wrap_possible
                        }
                    }
                };
                if wrap_conservative {
                    self.stats.snoop_wrap_conservative += 1;
                }
                match kind {
                    AccessKind::Load => self.stats.counted_loads += 1,
                    AccessKind::Store => self.stats.counted_stores += 1,
                    AccessKind::Rmw => self.stats.counted_rmws += 1,
                }
                if self.tracer.is_some() {
                    let verdict = if same_interval {
                        CountVerdict::InOrder
                    } else if !reordered {
                        CountVerdict::MovedAcross
                    } else if wrap_conservative {
                        CountVerdict::ReorderedSnoopWrap
                    } else if self.snoop_table.is_some() {
                        CountVerdict::ReorderedSnoopConflict
                    } else {
                        CountVerdict::ReorderedPisnMismatch
                    };
                    self.trace(
                        cycle,
                        TraceEvent::Count {
                            seq: entry.seq,
                            kind,
                            addr: entry.addr,
                            pisn,
                            cisn: self.cisn,
                            verdict,
                        },
                    );
                }
                if !reordered {
                    if !same_interval {
                        // The perform event moves across intervals to the
                        // counting event; re-insert the address into the
                        // current interval's signature so later conflicts
                        // still order intervals correctly (paper §4.2).
                        self.stats.moved_across_intervals += 1;
                        match kind {
                            AccessKind::Load => self.read_sig.insert(entry.line),
                            AccessKind::Store => self.write_sig.insert(entry.line),
                            AccessKind::Rmw => {
                                self.read_sig.insert(entry.line);
                                self.write_sig.insert(entry.line);
                            }
                        }
                    }
                    self.block_size += entry.nmi + 1;
                } else {
                    // The NMI instructions preceding the access are still
                    // in order; they close the current block.
                    self.block_size += entry.nmi;
                    self.flush_block();
                    // Exact interval distance; the 16-bit
                    // `cisn.wrapping_sub(pisn)` the hardware would compute
                    // aliases once the distance reaches 65536.
                    let offset = u32::try_from(current_ordinal - perform_ordinal)
                        .expect("perform-to-count distance exceeds u32");
                    debug_assert_eq!(offset as u16, self.cisn.wrapping_sub(pisn));
                    let log_entry = match kind {
                        AccessKind::Load => {
                            self.stats.reordered_loads += 1;
                            LogEntry::ReorderedLoad {
                                value: entry.loaded.expect("performed load has a value"),
                            }
                        }
                        AccessKind::Store => {
                            self.stats.reordered_stores += 1;
                            LogEntry::ReorderedStore {
                                addr: entry.addr,
                                value: entry.stored.expect("performed store has a value"),
                                offset,
                            }
                        }
                        AccessKind::Rmw => {
                            self.stats.reordered_rmws += 1;
                            LogEntry::ReorderedRmw {
                                loaded: entry.loaded.expect("performed RMW has a loaded value"),
                                addr: entry.addr,
                                stored: entry.stored,
                                offset,
                            }
                        }
                    };
                    self.log.entries.push(log_entry);
                    self.entries_since_frame += 1;
                }
                self.note_counted(entry.nmi + 1, cycle);
            }
        }
    }

    fn note_counted(&mut self, instrs: u32, cycle: u64) {
        self.stats.counted_instrs += u64::from(instrs);
        self.instrs_in_interval += instrs;
        if let Some(max) = self.cfg.max_interval_instrs {
            if self.instrs_in_interval >= max {
                self.terminate_interval(cycle, Termination::MaxSize);
            }
        }
    }

    fn flush_block(&mut self) {
        if self.block_size > 0 {
            self.log.entries.push(LogEntry::InorderBlock {
                instrs: self.block_size,
            });
            self.entries_since_frame += 1;
            self.block_size = 0;
        }
    }

    fn terminate_interval(&mut self, cycle: u64, why: Termination) {
        match why {
            Termination::Conflict => self.stats.term_conflict += 1,
            Termination::MaxSize => self.stats.term_max_size += 1,
            Termination::Final => self.stats.term_final += 1,
            Termination::Forced => self.stats.term_forced += 1,
        }
        if self.tracer.is_some() {
            let reason = match why {
                Termination::Conflict => CloseReason::Conflict,
                Termination::MaxSize => CloseReason::MaxSize,
                Termination::Final => CloseReason::Final,
                Termination::Forced => CloseReason::Forced,
            };
            let cisn = self.cisn;
            let ordinal = self.ordering.timestamps.len() as u64;
            let instrs = self.instrs_in_interval;
            self.trace(
                cycle,
                TraceEvent::IntervalClose {
                    cisn,
                    ordinal,
                    why: reason,
                    instrs,
                },
            );
        }
        self.flush_block();
        self.log.entries.push(LogEntry::IntervalFrame {
            cisn: self.cisn,
            timestamp: cycle,
        });
        self.ordering
            .preds
            .push(std::mem::take(&mut self.current_preds));
        self.ordering.barriers.push(self.closing_is_barrier);
        self.ordering.timestamps.push(cycle);
        self.closing_is_barrier = false;
        self.entries_since_frame = 0;
        self.cisn = self.cisn.wrapping_add(1);
        self.instrs_in_interval = 0;
        self.read_sig.clear();
        self.write_sig.clear();
        if self.tracer.is_some() {
            let cisn = self.cisn;
            let ordinal = self.ordering.timestamps.len() as u64;
            self.trace(cycle, TraceEvent::IntervalOpen { cisn, ordinal });
        }
        self.drain_into_sink();
    }

    // ----- pressure injection (rr-check) ---------------------------------

    /// Forces the current interval to close, as if a conflicting snoop had
    /// arrived. Sound — closing an interval early never loses ordering
    /// information, it only shortens the atomicity unit — so rr-check uses
    /// it to pressure interval-boundary paths (the replayed execution must
    /// still match).
    pub fn force_terminate(&mut self, cycle: u64) {
        debug_assert!(!self.finished, "force_terminate after finish()");
        self.terminate_interval(cycle, Termination::Forced);
    }

    /// Closes `n` empty intervals up front, pre-advancing the interval
    /// counter so a short workload executes near (or across) the 16-bit
    /// CISN wrap at 65536. rr-check's `cisn-wrap` pressure mode calls this
    /// before the first instruction dispatches.
    pub fn pre_advance_intervals(&mut self, n: u64, cycle: u64) {
        debug_assert_eq!(
            self.intervals_completed(),
            0,
            "pre-advance must happen before recording starts"
        );
        for _ in 0..n {
            self.terminate_interval(cycle, Termination::Forced);
        }
    }
}

impl CoreObserver for Recorder {
    fn on_dispatch(&mut self, seq: u64, is_mem: bool) -> bool {
        debug_assert!(!self.finished, "dispatch after finish()");
        if is_mem {
            if self.traq.is_full() {
                return false;
            }
            let nmi = self.nmi_pending;
            self.nmi_pending = 0;
            self.push_traq(TraqEntry {
                seq,
                // The access kind is refined at perform time; dispatch only
                // needs a slot. Use Load as a placeholder.
                kind: TraqKind::Mem(AccessKind::Load),
                nmi,
                pisn: None,
                perform_ordinal: None,
                snoops_at_perform: 0,
                performed: false,
                retired: false,
                addr: 0,
                line: LineAddr::containing(0),
                loaded: None,
                stored: None,
                sample: Default::default(),
            });
            true
        } else {
            // After a squash, `nmi_pending` is recomputed and may exceed
            // `nmi_max`; the excess is simply absorbed by the next TRAQ
            // allocation (real hardware would emit extra fillers — the
            // block-size arithmetic is identical either way).
            if self.nmi_pending + 1 == self.cfg.nmi_max && self.traq.is_full() {
                return false; // need a filler slot; stall
            }
            self.nmi_pending += 1;
            if self.nmi_pending == self.cfg.nmi_max {
                let nmi = self.nmi_pending;
                self.push_traq(TraqEntry {
                    seq,
                    kind: TraqKind::Filler,
                    nmi,
                    pisn: None,
                    perform_ordinal: None,
                    snoops_at_perform: 0,
                    performed: false,
                    retired: false,
                    addr: 0,
                    line: LineAddr::containing(0),
                    loaded: None,
                    stored: None,
                    sample: Default::default(),
                });
                self.nmi_pending = 0;
            }
            true
        }
    }

    fn on_perform(&mut self, rec: &PerformRecord) {
        let cisn = self.cisn;
        self.trace(
            rec.cycle,
            TraceEvent::Perform {
                seq: rec.seq,
                kind: rec.kind,
                addr: rec.addr,
                pisn: cisn,
            },
        );
        // Soundness extension over the paper (see DESIGN.md §2.2): the
        // Snoop Table must also observe this core's *own* store performs.
        // Otherwise a load whose perform is moved across intervals can
        // slide past its own core's younger same-address store — the store
        // performs in the earlier interval and is patched to its end, so
        // replay would execute the (program-order-older) load after it.
        // Remote conflicts alone cannot reveal this local anti-dependence.
        // Recording before sampling keeps a store from flagging itself.
        if matches!(rec.kind, AccessKind::Store | AccessKind::Rmw) {
            if let Some(t) = &mut self.snoop_table {
                t.record(rec.line);
            }
            self.snoops_seen += 1;
        }
        let sample = self
            .snoop_table
            .as_ref()
            .map(|t| t.sample(rec.line))
            .unwrap_or_default();
        let perform_ordinal = self.intervals_completed();
        let snoops_at_perform = self.snoops_seen;
        let entry = self
            .traq
            .find_mut(rec.seq)
            .expect("perform for an instruction not in the TRAQ");
        entry.kind = TraqKind::Mem(rec.kind);
        entry.pisn = Some(cisn);
        entry.perform_ordinal = Some(perform_ordinal);
        entry.snoops_at_perform = snoops_at_perform;
        entry.performed = true;
        entry.addr = rec.addr;
        entry.line = rec.line;
        entry.loaded = rec.loaded;
        entry.stored = rec.stored;
        entry.sample = sample;
        // Insert the line into the current interval's signatures so
        // conflicting snoops terminate the interval (paper §4.1).
        match rec.kind {
            AccessKind::Load => self.read_sig.insert(rec.line),
            AccessKind::Store => self.write_sig.insert(rec.line),
            AccessKind::Rmw => {
                self.read_sig.insert(rec.line);
                self.write_sig.insert(rec.line);
            }
        }
    }

    fn on_retire(&mut self, seq: u64, _is_mem: bool, _cycle: u64) {
        // Both memory entries and fillers key retirement off their seq.
        if let Some(entry) = self.traq.find_mut(seq) {
            entry.retired = true;
        }
    }

    fn on_squash_after(&mut self, bseq: u64, cycle: u64) {
        self.trace(cycle, TraceEvent::Squash { after_seq: bseq });
        self.traq.squash_after(bseq);
        let boundary = self
            .traq
            .newest_seq()
            .map_or(self.counted_up_to, |s| (s as i64).max(self.counted_up_to));
        self.alloc_boundary = boundary;
        self.nmi_pending = (bseq as i64 - boundary).max(0) as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::VecSink;

    /// Drives a recorder through a synthetic access stream: dispatch,
    /// perform, retire, tick per access, touching enough distinct lines to
    /// cross interval boundaries via the max-size limit.
    fn drive(rec: &mut Recorder, accesses: u64) {
        for seq in 0..accesses {
            assert!(rec.on_dispatch(seq, true));
            rec.on_perform(&PerformRecord {
                seq,
                kind: AccessKind::Load,
                addr: (seq % 64) * 8,
                line: LineAddr::containing((seq % 64) * 8),
                loaded: Some(seq),
                stored: None,
                cycle: seq,
            });
            rec.on_retire(seq, true, seq);
            rec.tick(seq);
            if seq % 5 == 0 {
                // Remote write snoops terminate intervals on conflicts.
                rec.on_snoop(LineAddr::containing((seq % 64) * 8), true, seq);
            }
        }
        rec.finish(accesses);
    }

    #[test]
    fn streaming_recorder_matches_buffered_recorder() {
        let cfg = RecorderConfig::splash_default(Design::Base, Some(64));
        let mut buffered = Recorder::new(CoreId::new(0), cfg.clone());
        drive(&mut buffered, 500);
        let buffered_log = buffered.into_log();
        assert!(buffered_log.intervals() > 1, "want multiple intervals");

        let shared = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        struct SharedSink(std::rc::Rc<std::cell::RefCell<Vec<LogEntry>>>);
        impl LogSink for SharedSink {
            fn emit(&mut self, e: &LogEntry) -> Result<(), WireError> {
                self.0.borrow_mut().push(*e);
                Ok(())
            }
            fn close(&mut self) -> Result<(), WireError> {
                Ok(())
            }
        }
        let mut streaming = Recorder::new(CoreId::new(0), cfg);
        streaming.set_sink(Box::new(SharedSink(shared.clone())));
        drive(&mut streaming, 500);
        assert!(streaming.take_sink_error().is_none());
        assert_eq!(
            streaming.streamed_entries(),
            buffered_log.entries.len() as u64
        );
        assert_eq!(*shared.borrow(), buffered_log.entries);
        // Streaming mode leaves nothing buffered after finish().
        assert!(streaming.log().entries.is_empty());
    }

    #[test]
    fn vec_sink_collects_entries() {
        let cfg = RecorderConfig::splash_default(Design::Base, Some(64));
        let mut rec = Recorder::new(CoreId::new(0), cfg);
        rec.set_sink(Box::new(VecSink::default()));
        drive(&mut rec, 200);
        assert!(rec.take_sink_error().is_none());
        assert!(rec.streamed_entries() > 0);
        assert!(rec.take_sink().is_some());
    }

    /// Regression: a store that performs and then stays pending while more
    /// than 65536 intervals close must log its exact interval distance.
    /// Pre-fix, `offset = cisn.wrapping_sub(pisn)` into a 16-bit field
    /// aliased 65537 to 1, so replay would patch the store one interval
    /// back instead of 65537.
    #[test]
    fn offset_survives_cisn_wraparound() {
        let cfg = RecorderConfig::splash_default(Design::Base, None);
        let mut rec = Recorder::new(CoreId::new(0), cfg);
        assert!(rec.on_dispatch(0, true));
        rec.on_perform(&PerformRecord {
            seq: 0,
            kind: AccessKind::Store,
            addr: 8,
            line: LineAddr::containing(8),
            loaded: None,
            stored: Some(1),
            cycle: 0,
        });
        const INTERVALS: u64 = (u16::MAX as u64) + 2; // 65537
        for i in 0..INTERVALS {
            rec.force_terminate(i);
        }
        rec.on_retire(0, true, INTERVALS);
        rec.tick(INTERVALS);
        rec.finish(INTERVALS + 1);
        assert_eq!(rec.stats().reordered_stores, 1);
        let log = rec.into_log();
        let offset = log
            .entries
            .iter()
            .find_map(|e| match e {
                LogEntry::ReorderedStore { offset, .. } => Some(*offset),
                _ => None,
            })
            .expect("pending store must be logged as reordered");
        assert_eq!(offset, u32::try_from(INTERVALS).unwrap());
    }

    /// Regression: exactly 65536 same-line remote *read* snoops between a
    /// load's perform and counting wrap the 16-bit Snoop Table counters
    /// back to the sampled value. Pre-fix, Opt trusted the table and
    /// counted the load as merely moved-across; the recorder must fall
    /// back to the total-transaction count and conservatively declare it
    /// reordered.
    #[test]
    fn full_snoop_counter_wrap_is_conservatively_reordered() {
        let cfg = RecorderConfig::splash_default(Design::Opt, None);
        let mut rec = Recorder::new(CoreId::new(0), cfg);
        let line = LineAddr::containing(0x40);
        assert!(rec.on_dispatch(0, true));
        rec.on_perform(&PerformRecord {
            seq: 0,
            kind: AccessKind::Load,
            addr: 0x40,
            line,
            loaded: Some(7),
            stored: None,
            cycle: 0,
        });
        // Remote reads conflict only with the write signature, so the
        // interval stays open while the counters make a full lap.
        let laps = 1u64 << 16;
        for i in 0..laps {
            rec.on_snoop(line, false, i);
        }
        rec.force_terminate(laps);
        rec.on_retire(0, true, laps);
        rec.tick(laps);
        rec.finish(laps + 1);
        assert_eq!(rec.stats().reordered_loads, 1);
        assert_eq!(rec.stats().snoop_wrap_conservative, 1);
        assert_eq!(rec.stats().moved_across_intervals, 0);
    }

    /// Regression: a sink failure mid-record must poison the recording and
    /// keep the un-emitted entries buffered. Pre-fix, the drain dropped
    /// every buffered entry on the floor and counted them all as streamed.
    #[test]
    fn sink_failure_poisons_and_keeps_unsent_entries() {
        let cfg = RecorderConfig::splash_default(Design::Base, Some(64));
        let mut buffered = Recorder::new(CoreId::new(0), cfg.clone());
        drive(&mut buffered, 500);
        let reference = buffered.into_log();
        assert!(reference.entries.len() > 3);

        let mut rec = Recorder::new(CoreId::new(0), cfg);
        let sink = crate::wire::FailingSink::new(3);
        let accepted = sink.handle();
        rec.set_sink(Box::new(sink));
        drive(&mut rec, 500);
        assert!(rec.is_poisoned());
        assert_eq!(rec.stats().sink_errors, 1);
        assert_eq!(rec.streamed_entries(), 3, "only accepted emits count");
        assert!(
            !rec.log().entries.is_empty(),
            "un-emitted entries stay buffered, not silently dropped"
        );
        assert!(matches!(rec.sink_error(), Some(WireError::Io(_))));
        let accepted = accepted.lock().expect("lock");
        assert_eq!(accepted[..], reference.entries[..3]);
        // Everything the sink accepted plus everything still buffered is a
        // prefix of the reference log: nothing was lost or reordered.
        let recovered: Vec<_> = accepted
            .iter()
            .chain(rec.log().entries.iter())
            .copied()
            .collect();
        assert_eq!(recovered[..], reference.entries[..recovered.len()]);
        assert!(rec.take_sink_error().is_some());
    }
}
