//! # relaxreplay — memory race recording for relaxed-consistency multiprocessors
//!
//! A from-scratch reproduction of **RelaxReplay** (Nima Honarmand and Josep
//! Torrellas, *RelaxReplay: Record and Replay for Relaxed-Consistency
//! Multiprocessors*, ASPLOS 2014): the first complete hardware-assisted
//! memory race recorder that works for any relaxed-consistency memory model
//! with write atomicity.
//!
//! ## The idea
//!
//! Each memory instruction has a **perform** event (when it becomes globally
//! visible) and a post-completion, in-program-order **counting** event.
//! Execution is recorded as **intervals** — the periods between
//! inter-processor communications. For almost every access, the perform
//! event can be *logically moved* forward to its counting event because no
//! other processor observed the access in between; such accesses are logged
//! implicitly as part of a compact `InorderBlock` run. The rare access that
//! *was* observed in between is logged explicitly with its value
//! (`ReorderedLoad`) or its address/value/interval-offset
//! (`ReorderedStore`).
//!
//! Two designs are provided (paper §3.2):
//!
//! * [`Design::Base`] declares an access reordered whenever its perform and
//!   counting events fall in different intervals (PISN ≠ CISN);
//! * [`Design::Opt`] adds a [`SnoopTable`] that tracks observed coherence
//!   transactions, declaring the access reordered only on a genuine
//!   (possibly aliased) conflict — shrinking the log by an order of
//!   magnitude (paper Figure 11).
//!
//! ## Pieces
//!
//! * [`Recorder`] — the per-processor Memory Race Recorder: plugs into an
//!   `rr-cpu` core as its `CoreObserver`, watches coherence snoops, and
//!   emits an [`IntervalLog`].
//! * [`Traq`-backed tracking](Recorder) — the Tracking Queue that follows
//!   each access from dispatch to counting (paper Figure 3).
//! * [`Signature`] — Bloom-filter read/write sets for interval termination
//!   (QuickRec-style ordering with a global timestamp).
//! * [`SnoopTable`] — RelaxReplay_Opt's conflict filter.
//! * [`IntervalLog`] / [`LogEntry`] — the log format of paper Figure 6(c),
//!   with bit-exact size accounting and a binary codec.
//! * [`wire`] — the streaming `.rrlog` wire format: [`LogSink`] /
//!   [`LogSource`] traits plus a chunked, CRC32-checksummed, varint/delta
//!   codec that survives truncation and detects corruption.
//! * [`trace`] — structured event tracing: bounded per-core timelines of
//!   the recorder's internal decisions (interval opens/closes, perform and
//!   counting events with classification verdicts, coherence traffic),
//!   exportable as JSONL sidecars or Perfetto-loadable Chrome trace JSON.
//! * [`prof`] — self-profiling primitives: per-worker replay-engine span
//!   timelines, codec per-phase timings, and the `rr-prof/v1` sidecar
//!   schema. The trace layer observes the simulated machine; this layer
//!   observes the replayer and codec themselves.
//!
//! Deterministic replay of these logs lives in the `rr-replay` crate; the
//! full simulated machine (cores + coherence + recorders) in `rr-sim`.
//!
//! ```
//! use relaxreplay::{Design, Recorder, RecorderConfig};
//! use rr_mem::CoreId;
//!
//! let cfg = RecorderConfig::splash_default(Design::Opt, Some(4096));
//! let mut rec = Recorder::new(CoreId::new(0), cfg);
//! // ... attach to a core, run, then:
//! rec.finish(0);
//! let log = rec.into_log();
//! assert_eq!(log.intervals(), 0); // nothing was recorded here
//! ```

#![warn(missing_docs)]
// Unsafe is denied crate-wide; the single sanctioned exception is the
// `mmapio` module (raw `mmap`/`munmap` for zero-copy log reading), which
// opts back in locally and documents every invariant.
#![deny(unsafe_code)]

mod hash;
pub mod index;
mod log;
pub mod mmapio;
pub mod prof;
mod recorder;
mod signature;
mod snoop_table;
pub mod trace;
mod traq;
pub mod wire;

pub use trace::{
    CloseReason, CountVerdict, RunTrace, TraceConfig, TraceEvent, TraceLevel, TraceRecord,
    TraceRing,
};

pub use crate::log::{IntervalLog, LogDecodeError, LogEntry};
pub use crate::prof::{
    engine_chrome_trace, validate_prof_json, CodecPhases, EngineProf, Span, SpanKind, WorkerProf,
};
pub use hash::{rr_hash64, H3};
pub use index::{IndexChunk, IndexProvenance, SkipIndex};
pub use mmapio::{MappedBytes, MappedSource};
pub use recorder::{Design, IntervalOrdering, Recorder, RecorderConfig, RecorderStats};
pub use signature::Signature;
pub use snoop_table::{SnoopSample, SnoopTable};
pub use wire::{
    chunk_map, chunk_map_with, chunk_spans, decode_chunked_range, ChunkInfo, ChunkSpan,
    ChunkedReader, ChunkedWriter, DecodeScratch, FailingSink, LogSink, LogSource, MemorySource,
    Salvage, VecSink, WireError,
};
