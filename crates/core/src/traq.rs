use std::collections::VecDeque;

use rr_mem::{AccessKind, LineAddr};

use crate::snoop_table::SnoopSample;

/// What a TRAQ entry tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TraqKind {
    /// A memory-access instruction (load, store or RMW).
    Mem(AccessKind),
    /// A filler entry representing a group of non-memory instructions
    /// whose count exceeded the NMI field width (paper §4.1).
    Filler,
}

/// One entry of the Tracking Queue (paper Figure 6(b)): address, value,
/// PISN, Snoop Count sample, and the NMI (non-memory-instruction) count.
#[derive(Clone, Debug)]
pub(crate) struct TraqEntry {
    pub seq: u64,
    pub kind: TraqKind,
    /// Non-memory instructions dispatched since the previous memory-access
    /// instruction (≤ the NMI field maximum).
    pub nmi: u32,
    /// Interval in which the access performed (None until it performs).
    pub pisn: Option<u16>,
    /// Non-wrapping ordinal of the interval in which the access performed
    /// (None until it performs). The 16-bit PISN aliases once perform and
    /// counting drift ≥ 65536 intervals apart; classification and offset
    /// arithmetic use this exact ordinal instead.
    pub perform_ordinal: Option<u64>,
    /// Total coherence-transaction count observed by the recorder at
    /// perform time (for the Snoop Table full-wrap conservative check).
    pub snoops_at_perform: u64,
    pub performed: bool,
    pub retired: bool,
    pub addr: u64,
    pub line: LineAddr,
    pub loaded: Option<u64>,
    pub stored: Option<u64>,
    /// Snoop Table counters sampled at perform time (RelaxReplay_Opt).
    pub sample: SnoopSample,
}

impl TraqEntry {
    /// Whether the entry is ready to be counted at the TRAQ head:
    /// memory entries need to be both performed and retired (paper §3.3);
    /// fillers only need their covered instructions retired.
    pub fn ready_to_count(&self) -> bool {
        match self.kind {
            TraqKind::Mem(_) => self.performed && self.retired,
            TraqKind::Filler => self.retired,
        }
    }
}

/// The Tracking Queue (TRAQ): a circular FIFO, parallel to the ROB, holding
/// each memory-access instruction from dispatch until its in-order
/// **counting** (paper §3.3, Figure 3). Unlike the ROB it can hold both
/// non-retired and retired accesses — a retired store waits here until its
/// coherence transaction completes.
#[derive(Clone, Debug)]
pub(crate) struct Traq {
    entries: VecDeque<TraqEntry>,
    capacity: usize,
}

impl Traq {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TRAQ capacity must be positive");
        Traq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an entry (dispatch order = program order).
    ///
    /// # Panics
    ///
    /// Panics if the TRAQ is full (callers must check and stall dispatch)
    /// or if `seq` is not newer than the newest entry.
    pub fn push(&mut self, entry: TraqEntry) {
        assert!(!self.is_full(), "TRAQ overflow");
        if let Some(back) = self.entries.back() {
            assert!(back.seq < entry.seq, "TRAQ must stay seq-ordered");
        }
        self.entries.push_back(entry);
    }

    /// Finds the entry for `seq` (entries are seq-sorted, so this is a
    /// binary search).
    pub fn find_mut(&mut self, seq: u64) -> Option<&mut TraqEntry> {
        let i = self.entries.binary_search_by(|e| e.seq.cmp(&seq)).ok()?;
        self.entries.get_mut(i)
    }

    /// Pops the head if it is ready to be counted.
    pub fn pop_ready(&mut self) -> Option<TraqEntry> {
        if self.entries.front().is_some_and(TraqEntry::ready_to_count) {
            self.entries.pop_front()
        } else {
            None
        }
    }

    /// Discards all entries with `seq > bseq` (pipeline squash; paper §4.1:
    /// "if the ROB is flushed, then the TRAQ is also flushed accordingly").
    pub fn squash_after(&mut self, bseq: u64) {
        while self.entries.back().is_some_and(|e| e.seq > bseq) {
            self.entries.pop_back();
        }
    }

    /// Sequence number of the newest entry, if any.
    pub fn newest_seq(&self) -> Option<u64> {
        self.entries.back().map(|e| e.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_entry(seq: u64) -> TraqEntry {
        TraqEntry {
            seq,
            kind: TraqKind::Mem(AccessKind::Load),
            nmi: 0,
            pisn: None,
            perform_ordinal: None,
            snoops_at_perform: 0,
            performed: false,
            retired: false,
            addr: 0,
            line: LineAddr::containing(0),
            loaded: None,
            stored: None,
            sample: SnoopSample::default(),
        }
    }

    #[test]
    fn fifo_counting_requires_performed_and_retired() {
        let mut t = Traq::new(4);
        t.push(mem_entry(0));
        t.push(mem_entry(1));
        assert!(t.pop_ready().is_none());
        t.find_mut(0).expect("entry").performed = true;
        assert!(t.pop_ready().is_none(), "needs retired too");
        t.find_mut(0).expect("entry").retired = true;
        assert_eq!(t.pop_ready().expect("ready").seq, 0);
        assert!(t.pop_ready().is_none(), "head not ready");
    }

    #[test]
    fn capacity_enforced() {
        let mut t = Traq::new(2);
        t.push(mem_entry(0));
        t.push(mem_entry(1));
        assert!(t.is_full());
    }

    #[test]
    #[should_panic(expected = "TRAQ overflow")]
    fn overflow_panics() {
        let mut t = Traq::new(1);
        t.push(mem_entry(0));
        t.push(mem_entry(1));
    }

    #[test]
    fn squash_discards_suffix_only() {
        let mut t = Traq::new(8);
        for s in 0..5 {
            t.push(mem_entry(s));
        }
        t.squash_after(2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.newest_seq(), Some(2));
        assert!(t.find_mut(4).is_none());
        assert!(t.find_mut(1).is_some());
    }

    #[test]
    fn filler_counts_on_retire_alone() {
        let mut t = Traq::new(2);
        t.push(TraqEntry {
            kind: TraqKind::Filler,
            nmi: 15,
            ..mem_entry(7)
        });
        assert!(t.pop_ready().is_none());
        t.find_mut(7).expect("entry").retired = true;
        assert!(t.pop_ready().is_some());
    }
}
