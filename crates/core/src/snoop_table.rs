use rr_mem::LineAddr;

use crate::hash::H3;

/// A sample of a line's two Snoop Table counters, stored in the TRAQ entry's
/// *Snoop Count* field at perform time (paper §4.2, Figure 8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnoopSample {
    counters: [u16; 2],
}

/// RelaxReplay_Opt's Snoop Table (paper §4.2): two arrays of 16-bit
/// counters, indexed by independent hashes of the line address. Every
/// observed coherence transaction increments the line's counter in each
/// array. At perform time an access samples its two counters; at counting
/// time, if **both** counters changed, a conflicting transaction (or a
/// double aliasing coincidence) was observed between the two events and the
/// access is declared reordered. If neither or only one changed (single
/// aliasing), it is declared in order.
///
/// The detection is conservative: a true conflict always increments both of
/// the line's counters, so no reordering is ever missed. Counters wrap; the
/// paper sizes them (2 × 64 × 16 bits) so a full wrap-around between
/// perform and counting is not a practical concern.
#[derive(Clone, Debug)]
pub struct SnoopTable {
    arrays: [Vec<u16>; 2],
    hashes: [H3; 2],
}

impl SnoopTable {
    /// Creates a Snoop Table with two arrays of `entries` counters each.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize, seed: u64) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        let idx_bits = entries.trailing_zeros();
        SnoopTable {
            arrays: [vec![0u16; entries], vec![0u16; entries]],
            hashes: [
                H3::new(idx_bits, seed.wrapping_add(0x51)),
                H3::new(idx_bits, seed.wrapping_add(0xa3)),
            ],
        }
    }

    /// The paper's configuration: 2 × 64 × 16-bit (256 bytes total).
    #[must_use]
    pub fn splash_default(seed: u64) -> Self {
        SnoopTable::new(64, seed)
    }

    /// Records an observed coherence transaction (or, in directory mode, a
    /// dirty eviction — paper §4.3) for `line`.
    pub fn record(&mut self, line: LineAddr) {
        for (arr, h) in self.arrays.iter_mut().zip(&self.hashes) {
            let i = h.hash(line.line_number()) as usize;
            arr[i] = arr[i].wrapping_add(1);
        }
    }

    /// Samples the two counters for `line` (done at perform time).
    #[must_use]
    pub fn sample(&self, line: LineAddr) -> SnoopSample {
        SnoopSample {
            counters: [
                self.arrays[0][self.hashes[0].hash(line.line_number()) as usize],
                self.arrays[1][self.hashes[1].hash(line.line_number()) as usize],
            ],
        }
    }

    /// Compares the current counters against a perform-time sample
    /// (done at counting time). Returns `true` — *reordered* — only when
    /// both counters changed.
    #[must_use]
    pub fn is_reordered(&self, line: LineAddr, at_perform: SnoopSample) -> bool {
        let now = self.sample(line);
        now.counters[0] != at_perform.counters[0] && now.counters[1] != at_perform.counters[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn no_traffic_means_in_order() {
        let t = SnoopTable::splash_default(1);
        let s = t.sample(line(5));
        assert!(!t.is_reordered(line(5), s));
    }

    #[test]
    fn conflicting_snoop_is_always_detected() {
        // Conservative: a snoop on the same line increments both counters,
        // so detection can never be missed.
        for n in 0..500 {
            let mut t = SnoopTable::splash_default(2);
            let s = t.sample(line(n));
            t.record(line(n));
            assert!(t.is_reordered(line(n), s), "missed conflict on line {n}");
        }
    }

    #[test]
    fn single_array_alias_is_forgiven() {
        // Find two lines that collide in exactly one array; traffic on one
        // must not mark the other reordered.
        let t0 = SnoopTable::splash_default(3);
        let (a, b) = (0..4096u64)
            .flat_map(|a| ((a + 1)..4096).map(move |b| (a, b)))
            .find(|&(a, b)| {
                let ha = [
                    t0.hashes[0].hash(a) == t0.hashes[0].hash(b),
                    t0.hashes[1].hash(a) == t0.hashes[1].hash(b),
                ];
                ha[0] != ha[1]
            })
            .expect("some single-array alias pair exists");
        let mut t = SnoopTable::splash_default(3);
        let s = t.sample(line(a));
        t.record(line(b));
        assert!(
            !t.is_reordered(line(a), s),
            "single-array aliasing must be forgiven"
        );
    }

    #[test]
    fn counters_wrap_without_panicking() {
        let mut t = SnoopTable::new(2, 4);
        for _ in 0..70_000 {
            t.record(line(1));
        }
        let s = t.sample(line(1));
        t.record(line(1));
        assert!(t.is_reordered(line(1), s));
    }
}
