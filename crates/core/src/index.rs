//! The `.rridx` skip-index sidecar: a per-file chunk table (offset →
//! entry count / first timestamp / CRC health) built on the first full
//! walk of an `.rrlog` and persisted next to it, so later `rr-inspect
//! stat` / `chunk_map` consumers answer structural queries without
//! re-decoding entry payloads.
//!
//! The index is a pure cache and is **never trusted**: [`SkipIndex::load`]
//! verifies the sidecar's own magic, version, and trailing CRC32, and
//! [`SkipIndex::load_or_build`] additionally fingerprints the source
//! stream (length plus head/tail CRCs) against the values recorded when
//! the index was built. Any mismatch — corrupt sidecar, rewritten log,
//! version skew — silently rebuilds from the `.rrlog` itself and rewrites
//! the sidecar. Agreement with a fresh [`chunk_map`](crate::wire::chunk_map)
//! walk is a tested invariant, on clean and corrupt files alike.
//!
//! ## Sidecar format (`RRIX` version 1)
//!
//! ```text
//! "RRIX" | index version u16 LE | wire version u16 LE | core u8 | flags u8
//! source_len u64 LE | source head CRC32 u32 LE | source tail CRC32 u32 LE
//! chunk count (varint)
//! per chunk: payload_bytes varint | entries varint | flags u8
//!            | first_timestamp varint (iff flags bit 1)
//! CRC32 over all preceding bytes, u32 LE
//! ```
//!
//! Chunk offsets are not stored: chunk 0 starts at byte 7 and each chunk
//! occupies `payload_bytes + 8` framing bytes, so the table re-derives
//! them exactly. Head/tail CRCs cover the first and last
//! [`FINGERPRINT_BYTES`] of the source — enough to catch truncation,
//! appends, and header rewrites without re-reading a multi-GB file.

use std::path::{Path, PathBuf};

use rr_mem::CoreId;

use crate::wire::{
    self, chunk_map_with, crc32, read_varint, write_varint, ChunkInfo, DecodeScratch, WireError,
};

/// Sidecar magic, first four bytes of every `.rridx`.
pub const INDEX_MAGIC: [u8; 4] = *b"RRIX";

/// Current `.rridx` format version.
pub const INDEX_VERSION: u16 = 1;

/// Bytes of the source stream fingerprinted at each end.
pub const FINGERPRINT_BYTES: usize = 64;

/// The extension used for sidecars (`foo.rrlog` → `foo.rridx`).
pub const INDEX_EXTENSION: &str = "rridx";

const FLAG_CLEAN: u8 = 1;
const CHUNK_FLAG_CRC_OK: u8 = 1;
const CHUNK_FLAG_HAS_TS: u8 = 2;

/// One chunk's cached structural facts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexChunk {
    /// Byte offset of the chunk's 4-byte length prefix in the source.
    pub offset: usize,
    /// Payload bytes (excluding length prefix and trailing CRC).
    pub payload_bytes: usize,
    /// Entries decoded from the payload (0 if the CRC failed).
    pub entries: usize,
    /// Absolute timestamp of the chunk's first `IntervalFrame`, if any.
    pub first_timestamp: Option<u64>,
    /// Whether the stored CRC32 matched when the index was built.
    pub crc_ok: bool,
}

/// How [`SkipIndex::load_or_build`] obtained its answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexProvenance {
    /// A valid, fingerprint-matching sidecar was loaded.
    Loaded,
    /// No sidecar existed; the index was built and persisted.
    RebuiltMissing,
    /// A sidecar existed but failed its own integrity checks (magic,
    /// version, or CRC); it was rebuilt from the source.
    RebuiltCorrupt,
    /// A structurally valid sidecar described a different source stream
    /// (length or head/tail fingerprint mismatch); rebuilt.
    RebuiltStale,
}

impl IndexProvenance {
    /// Whether the index came from a fresh walk rather than the sidecar.
    #[must_use]
    pub fn rebuilt(&self) -> bool {
        !matches!(self, IndexProvenance::Loaded)
    }
}

/// A chunk table for one `.rrlog` stream plus the source fingerprint it
/// was built against. See the module docs for trust rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkipIndex {
    /// The recorded core from the source header.
    pub core: CoreId,
    /// The source's wire-format version.
    pub wire_version: u16,
    /// Source stream length in bytes when the index was built.
    pub source_len: u64,
    /// CRC32 of the source's first [`FINGERPRINT_BYTES`] bytes.
    pub head_crc: u32,
    /// CRC32 of the source's last [`FINGERPRINT_BYTES`] bytes.
    pub tail_crc: u32,
    /// Whether the walk saw no error (CRC failures, malformed entries,
    /// or a truncated tail all clear this).
    pub clean: bool,
    /// Per-chunk table, in stream order.
    pub chunks: Vec<IndexChunk>,
}

fn fingerprint(bytes: &[u8]) -> (u32, u32) {
    let head = &bytes[..bytes.len().min(FINGERPRINT_BYTES)];
    let tail = &bytes[bytes.len().saturating_sub(FINGERPRINT_BYTES)..];
    (crc32(head), crc32(tail))
}

impl SkipIndex {
    /// Builds the index from a full walk of `bytes` (the decoding walk of
    /// [`chunk_map`](wire::chunk_map), so entry counts agree with it by
    /// construction).
    ///
    /// # Errors
    ///
    /// A [`WireError`] only if the 7-byte source header is missing,
    /// foreign, or version-skewed — damaged chunks are indexed, not
    /// errors.
    pub fn build(bytes: &[u8]) -> Result<Self, WireError> {
        let mut scratch = DecodeScratch::new();
        let (core, map, first_err) = chunk_map_with(bytes, &mut scratch)?;
        let (_, wire_version) = wire::parse_header(bytes)?;
        let (head_crc, tail_crc) = fingerprint(bytes);
        // A trailing partial chunk is not in the map; detect it by tiling.
        let mapped_end = map.last().map_or(7, |c| c.offset + c.payload_bytes + 8);
        let chunks = map
            .iter()
            .map(|c| IndexChunk {
                offset: c.offset,
                payload_bytes: c.payload_bytes,
                entries: c.entries,
                first_timestamp: c.first_timestamp,
                crc_ok: c.crc_ok,
            })
            .collect();
        Ok(SkipIndex {
            core,
            wire_version,
            source_len: bytes.len() as u64,
            head_crc,
            tail_crc,
            clean: first_err.is_none() && mapped_end == bytes.len(),
            chunks,
        })
    }

    /// Whether this index describes `bytes` as they are *now*: same
    /// length, same head/tail fingerprint, same core and wire version.
    #[must_use]
    pub fn matches_source(&self, bytes: &[u8]) -> bool {
        if self.source_len != bytes.len() as u64 {
            return false;
        }
        let Ok((core, version)) = wire::parse_header(bytes) else {
            return false;
        };
        if core != self.core || version != self.wire_version {
            return false;
        }
        let (head, tail) = fingerprint(bytes);
        head == self.head_crc && tail == self.tail_crc
    }

    /// The chunk table as [`ChunkInfo`] rows — interchangeable with a
    /// fresh [`chunk_map`](wire::chunk_map) walk of the matching source.
    #[must_use]
    pub fn chunk_infos(&self) -> Vec<ChunkInfo> {
        self.chunks
            .iter()
            .enumerate()
            .map(|(index, c)| ChunkInfo {
                index,
                offset: c.offset,
                payload_bytes: c.payload_bytes,
                entries: c.entries,
                crc_ok: c.crc_ok,
                first_timestamp: c.first_timestamp,
            })
            .collect()
    }

    /// Total entries across all intact chunks.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.chunks.iter().map(|c| c.entries).sum()
    }

    /// Serializes the sidecar (format in the module docs).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.chunks.len() * 8);
        out.extend_from_slice(&INDEX_MAGIC);
        out.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        out.extend_from_slice(&self.wire_version.to_le_bytes());
        out.push(self.core.index() as u8);
        out.push(if self.clean { FLAG_CLEAN } else { 0 });
        out.extend_from_slice(&self.source_len.to_le_bytes());
        out.extend_from_slice(&self.head_crc.to_le_bytes());
        out.extend_from_slice(&self.tail_crc.to_le_bytes());
        write_varint(&mut out, self.chunks.len() as u64);
        for c in &self.chunks {
            write_varint(&mut out, c.payload_bytes as u64);
            write_varint(&mut out, c.entries as u64);
            let mut flags = 0u8;
            if c.crc_ok {
                flags |= CHUNK_FLAG_CRC_OK;
            }
            if c.first_timestamp.is_some() {
                flags |= CHUNK_FLAG_HAS_TS;
            }
            out.push(flags);
            if let Some(ts) = c.first_timestamp {
                write_varint(&mut out, ts);
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes a sidecar, verifying magic, version, structure, and
    /// the trailing CRC. `None` on *any* defect — a bad sidecar is
    /// indistinguishable from a missing one by design (rebuild, don't
    /// trust).
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 + 2 + 2 + 1 + 1 + 8 + 4 + 4 + 1 + 4 {
            return None;
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().ok()?);
        if crc32(body) != stored {
            return None;
        }
        if body[..4] != INDEX_MAGIC {
            return None;
        }
        if u16::from_le_bytes([body[4], body[5]]) != INDEX_VERSION {
            return None;
        }
        let wire_version = u16::from_le_bytes([body[6], body[7]]);
        let core = CoreId::new(body[8]);
        let clean = body[9] & FLAG_CLEAN != 0;
        let source_len = u64::from_le_bytes(body[10..18].try_into().ok()?);
        let head_crc = u32::from_le_bytes(body[18..22].try_into().ok()?);
        let tail_crc = u32::from_le_bytes(body[22..26].try_into().ok()?);
        let mut pos = 26usize;
        let count = usize::try_from(read_varint(body, &mut pos)?).ok()?;
        // Each chunk row is at least 3 bytes; reject absurd counts before
        // reserving.
        if count > body.len() {
            return None;
        }
        let mut chunks = Vec::with_capacity(count);
        let mut offset = 7usize;
        for _ in 0..count {
            let payload_bytes = usize::try_from(read_varint(body, &mut pos)?).ok()?;
            let entries = usize::try_from(read_varint(body, &mut pos)?).ok()?;
            let flags = *body.get(pos)?;
            pos += 1;
            let first_timestamp = if flags & CHUNK_FLAG_HAS_TS != 0 {
                Some(read_varint(body, &mut pos)?)
            } else {
                None
            };
            chunks.push(IndexChunk {
                offset,
                payload_bytes,
                entries,
                first_timestamp,
                crc_ok: flags & CHUNK_FLAG_CRC_OK != 0,
            });
            offset = offset.checked_add(payload_bytes.checked_add(8)?)?;
        }
        if pos != body.len() {
            return None; // trailing garbage inside a CRC-valid body
        }
        Some(SkipIndex {
            core,
            wire_version,
            source_len,
            head_crc,
            tail_crc,
            clean,
            chunks,
        })
    }

    /// The sidecar path for an `.rrlog` path (`foo.rrlog` → `foo.rridx`).
    #[must_use]
    pub fn sidecar_path(rrlog: &Path) -> PathBuf {
        rrlog.with_extension(INDEX_EXTENSION)
    }

    /// Loads and structurally validates the sidecar for `rrlog`. `None`
    /// if missing or defective. This does **not** check the index against
    /// the current source bytes — use [`SkipIndex::matches_source`] or
    /// [`SkipIndex::load_or_build`] for that.
    #[must_use]
    pub fn load(rrlog: &Path) -> Option<Self> {
        let bytes = std::fs::read(Self::sidecar_path(rrlog)).ok()?;
        Self::from_bytes(&bytes)
    }

    /// Persists the sidecar next to `rrlog`.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on filesystem failure.
    pub fn save(&self, rrlog: &Path) -> Result<(), WireError> {
        std::fs::write(Self::sidecar_path(rrlog), self.to_bytes())?;
        Ok(())
    }

    /// The one-call consumer API: returns a chunk index for `bytes` (the
    /// current contents of `rrlog`), loading the sidecar when it is valid
    /// *and* fingerprints the same source, and otherwise rebuilding from
    /// the stream and best-effort rewriting the sidecar (an unwritable
    /// sidecar degrades to building every time, never to a wrong answer).
    ///
    /// # Errors
    ///
    /// A [`WireError`] only if the source header itself is unusable, as
    /// [`SkipIndex::build`].
    pub fn load_or_build(rrlog: &Path, bytes: &[u8]) -> Result<(Self, IndexProvenance), WireError> {
        let sidecar = std::fs::read(Self::sidecar_path(rrlog)).ok();
        let provenance = match sidecar {
            None => IndexProvenance::RebuiltMissing,
            Some(raw) => match Self::from_bytes(&raw) {
                None => IndexProvenance::RebuiltCorrupt,
                Some(index) if index.matches_source(bytes) => {
                    return Ok((index, IndexProvenance::Loaded))
                }
                Some(_) => IndexProvenance::RebuiltStale,
            },
        };
        let index = Self::build(bytes)?;
        let _ = index.save(rrlog); // best-effort cache write
        Ok((index, provenance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{IntervalLog, LogEntry};
    use crate::wire::{chunk_map, encode_chunked_with};

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rr_index_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    fn sample_log() -> IntervalLog {
        let mut log = IntervalLog::new(CoreId::new(2));
        for i in 0..300u64 {
            log.entries.push(LogEntry::InorderBlock {
                instrs: 1 + (i % 7) as u32,
            });
            log.entries.push(LogEntry::IntervalFrame {
                cisn: (i % 50) as u16,
                timestamp: 10_000 + i * 93,
            });
        }
        log
    }

    fn assert_agrees_with_chunk_map(index: &SkipIndex, bytes: &[u8]) {
        let (core, map, err) = chunk_map(bytes).expect("header");
        assert_eq!(index.core, core);
        assert_eq!(index.chunk_infos(), map);
        assert_eq!(
            index.total_entries(),
            map.iter().map(|c| c.entries).sum::<usize>()
        );
        let mapped_end = map.last().map_or(7, |c| c.offset + c.payload_bytes + 8);
        assert_eq!(index.clean, err.is_none() && mapped_end == bytes.len());
    }

    #[test]
    fn index_round_trips_and_agrees_with_chunk_map() {
        let bytes = encode_chunked_with(&sample_log(), 128);
        let index = SkipIndex::build(&bytes).expect("builds");
        assert!(index.clean);
        assert!(index.matches_source(&bytes));
        assert_agrees_with_chunk_map(&index, &bytes);

        let round = SkipIndex::from_bytes(&index.to_bytes()).expect("parses");
        assert_eq!(round, index);
        // First timestamps are populated and absolute.
        assert!(index.chunks.iter().all(|c| c.first_timestamp.is_some()));
        assert_eq!(index.chunks[0].first_timestamp, Some(10_000));
    }

    #[test]
    fn index_agrees_with_chunk_map_on_corrupt_and_truncated_files() {
        let bytes = encode_chunked_with(&sample_log(), 128);
        let (_, clean_map, _) = chunk_map(&bytes).expect("header");
        assert!(clean_map.len() >= 4);

        let mut corrupted = bytes.clone();
        corrupted[clean_map[2].offset + 5] ^= 0x10;
        let index = SkipIndex::build(&corrupted).expect("builds");
        assert!(!index.clean);
        assert!(!index.chunks[2].crc_ok);
        assert_eq!(index.chunks[2].entries, 0);
        assert_agrees_with_chunk_map(&index, &corrupted);

        let truncated = &bytes[..bytes.len() - 3];
        let index = SkipIndex::build(truncated).expect("builds");
        assert!(!index.clean, "a cut tail is not a clean stream");
        assert_agrees_with_chunk_map(&index, truncated);
    }

    #[test]
    fn every_sidecar_byte_flip_is_rejected() {
        let bytes = encode_chunked_with(&sample_log(), 256);
        let sidecar = SkipIndex::build(&bytes).expect("builds").to_bytes();
        for i in 0..sidecar.len() {
            let mut bad = sidecar.clone();
            bad[i] ^= 0x01;
            assert!(
                SkipIndex::from_bytes(&bad).is_none(),
                "flip at byte {i} must invalidate the sidecar"
            );
        }
        for cut in 0..sidecar.len() {
            assert!(SkipIndex::from_bytes(&sidecar[..cut]).is_none());
        }
    }

    #[test]
    fn load_or_build_lifecycle_rebuilds_rather_than_trusts() {
        let path = temp_path("lifecycle.rrlog");
        let bytes = encode_chunked_with(&sample_log(), 128);
        std::fs::write(&path, &bytes).expect("writes");
        let _ = std::fs::remove_file(SkipIndex::sidecar_path(&path));

        // First touch: no sidecar → built and persisted.
        let (first, prov) = SkipIndex::load_or_build(&path, &bytes).expect("builds");
        assert_eq!(prov, IndexProvenance::RebuiltMissing);
        assert!(SkipIndex::sidecar_path(&path).exists());

        // Second touch: loaded, identical.
        let (second, prov) = SkipIndex::load_or_build(&path, &bytes).expect("loads");
        assert_eq!(prov, IndexProvenance::Loaded);
        assert_eq!(second, first);

        // Corrupt the sidecar: must be rebuilt, not trusted.
        let sidecar = SkipIndex::sidecar_path(&path);
        let mut raw = std::fs::read(&sidecar).expect("sidecar");
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&sidecar, &raw).expect("rewrites");
        let (third, prov) = SkipIndex::load_or_build(&path, &bytes).expect("rebuilds");
        assert_eq!(prov, IndexProvenance::RebuiltCorrupt);
        assert_eq!(third, first);

        // Change the source: a structurally valid sidecar goes stale.
        let mut longer = sample_log();
        longer.entries.push(LogEntry::InorderBlock { instrs: 9 });
        let new_bytes = encode_chunked_with(&longer, 128);
        std::fs::write(&path, &new_bytes).expect("rewrites source");
        let (fourth, prov) = SkipIndex::load_or_build(&path, &new_bytes).expect("rebuilds");
        assert_eq!(prov, IndexProvenance::RebuiltStale);
        assert!(fourth.matches_source(&new_bytes));
        assert_agrees_with_chunk_map(&fourth, &new_bytes);

        // A same-length in-place byte flip is caught by the fingerprint
        // (flip inside the tail window).
        let mut flipped = new_bytes.clone();
        let n = flipped.len();
        flipped[n - 10] ^= 0x08;
        assert!(!fourth.matches_source(&flipped));
    }
}
