//! Structured event tracing: per-core timelines of the recorder's (and
//! replayer's) internal decisions, captured into bounded ring buffers and
//! exportable as JSONL sidecars or Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`).
//!
//! The paper's entire argument rests on *event timing* — where each
//! access's perform event lands relative to its counting event, and which
//! intervals a coherence transaction splits. Aggregate counters
//! (`rr-sim`'s metrics) cannot show *which* event sequence caused a Base/
//! Opt disagreement or a replay divergence; this module records the
//! sequence itself:
//!
//! * [`TraceEvent`] — the compact event taxonomy: interval open/close with
//!   CISN, perform/counting events, reordered-access classification
//!   decisions (with the *why*: PISN ≠ CISN vs. Snoop Table conflict),
//!   coherence transactions, Snoop Table activity, replay patch
//!   waits/releases, and verify progress.
//! * [`TraceConfig`] — level + event mask. Tracing is **zero-cost when
//!   disabled**: a recorder without an attached ring does one `Option`
//!   check per hook, and trace capture never feeds back into recording
//!   decisions, so recorded logs are byte-identical with tracing on or
//!   off (pinned by an integration test).
//! * [`TraceRing`] — a bounded per-core ring buffer; when full, the oldest
//!   events are dropped (and counted), so tracing a long run keeps the
//!   most recent window — exactly what divergence forensics needs.
//! * [`RunTrace`] — one ring per core plus a machine-level coherence ring,
//!   with JSONL and Chrome trace-event exporters.
//! * [`json`] — a minimal JSON parser used to validate exported traces and
//!   to convert `trace.jsonl` sidecars back into Perfetto JSON
//!   (`rr-inspect trace`).

use core::fmt;
use std::collections::VecDeque;
use std::fmt::Write as _;

use rr_mem::{AccessKind, CoreId};

/// Event-category bits for [`TraceConfig::mask`].
pub mod kind {
    /// Interval open/close events.
    pub const INTERVAL: u32 = 1 << 0;
    /// Perform events and pipeline squashes.
    pub const ACCESS: u32 = 1 << 1;
    /// Counting events with their reordered-classification verdicts.
    pub const CLASSIFY: u32 = 1 << 2;
    /// Coherence transactions (machine-level and per-core snoops).
    pub const COHERENCE: u32 = 1 << 3;
    /// Snoop Table counter bumps (Opt's conflict filter).
    pub const SNOOP_TABLE: u32 = 1 << 4;
    /// Replay-side interval waits and releases.
    pub const REPLAY: u32 = 1 << 5;
    /// Verification progress and divergences.
    pub const VERIFY: u32 = 1 << 6;
    /// Every category.
    pub const ALL: u32 = 0x7F;
}

/// Coarse tracing levels, each a preset event mask.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceLevel {
    /// No tracing (the default; zero overhead).
    #[default]
    Off,
    /// Interval structure plus replay/verify milestones.
    Intervals,
    /// `Intervals` plus perform/counting/classification events.
    Accesses,
    /// Everything, including coherence and Snoop Table traffic.
    Full,
}

impl TraceLevel {
    /// The event mask this level enables.
    #[must_use]
    pub fn mask(self) -> u32 {
        match self {
            TraceLevel::Off => 0,
            TraceLevel::Intervals => kind::INTERVAL | kind::REPLAY | kind::VERIFY,
            TraceLevel::Accesses => TraceLevel::Intervals.mask() | kind::ACCESS | kind::CLASSIFY,
            TraceLevel::Full => kind::ALL,
        }
    }

    /// Parses a level name (`off`, `intervals`, `accesses`, `full`, or the
    /// digits `0`–`3`), as accepted by `--trace <level>` / `RR_TRACE`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(TraceLevel::Off),
            "intervals" | "1" => Some(TraceLevel::Intervals),
            "accesses" | "2" => Some(TraceLevel::Accesses),
            "full" | "3" => Some(TraceLevel::Full),
            _ => None,
        }
    }
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceLevel::Off => write!(f, "off"),
            TraceLevel::Intervals => write!(f, "intervals"),
            TraceLevel::Accesses => write!(f, "accesses"),
            TraceLevel::Full => write!(f, "full"),
        }
    }
}

/// Default per-core ring capacity (events retained per core).
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Tracing configuration: an event mask plus the per-core ring capacity.
///
/// The default is off. Capture is a pure side channel — enabling it must
/// never change simulation behavior or recorded log bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Bitwise OR of [`kind`] category bits; 0 disables tracing.
    pub mask: u32,
    /// Events retained per ring before the oldest are dropped.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Tracing disabled.
    #[must_use]
    pub fn off() -> Self {
        TraceConfig {
            mask: 0,
            capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// The preset mask for `level` with the default ring capacity.
    #[must_use]
    pub fn level(level: TraceLevel) -> Self {
        TraceConfig {
            mask: level.mask(),
            capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Everything enabled (the `full` level).
    #[must_use]
    pub fn full() -> Self {
        Self::level(TraceLevel::Full)
    }

    /// Same config with a different ring capacity (clamped to ≥ 1).
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Whether any category is enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.mask != 0
    }

    /// Whether all of `bits` are enabled.
    #[must_use]
    pub fn wants(&self, bits: u32) -> bool {
        self.mask & bits == bits
    }
}

/// Why an interval terminated (the public mirror of the recorder's
/// internal termination reasons).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// A conflicting coherence transaction (or dirty eviction).
    Conflict,
    /// The configured maximum interval size was reached.
    MaxSize,
    /// The final termination at thread end.
    Final,
    /// A pressure-injection hook forced the close (schedule-exploration
    /// harness; never emitted during normal recording).
    Forced,
}

impl CloseReason {
    /// Stable lower-case name (used in JSONL).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CloseReason::Conflict => "conflict",
            CloseReason::MaxSize => "max_size",
            CloseReason::Final => "final",
            CloseReason::Forced => "forced",
        }
    }
}

/// The recorder's verdict when an access reaches its counting event —
/// including *why* an access was declared reordered (paper §3.2: Base uses
/// the PISN ≠ CISN test alone; Opt additionally consults the Snoop Table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountVerdict {
    /// Perform and counting events fell in the same interval (PISN = CISN).
    InOrder,
    /// PISN ≠ CISN but no conflicting transaction was observed (Opt):
    /// the perform event moves across intervals to the counting event.
    MovedAcross,
    /// Reordered because PISN ≠ CISN (Base's test).
    ReorderedPisnMismatch,
    /// Reordered because the Snoop Table saw a conflicting transaction
    /// between the perform and counting events (Opt's test).
    ReorderedSnoopConflict,
    /// Conservatively reordered because ≥ u16::MAX coherence transactions
    /// were observed between perform and counting — enough for the 16-bit
    /// Snoop Table counters to have wrapped all the way around, blinding
    /// the both-changed test (Opt only).
    ReorderedSnoopWrap,
}

impl CountVerdict {
    /// Stable lower-case name (used in JSONL).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CountVerdict::InOrder => "in_order",
            CountVerdict::MovedAcross => "moved_across",
            CountVerdict::ReorderedPisnMismatch => "reordered_pisn_mismatch",
            CountVerdict::ReorderedSnoopConflict => "reordered_snoop_conflict",
            CountVerdict::ReorderedSnoopWrap => "reordered_snoop_wrap",
        }
    }

    /// Whether this verdict produced an explicit reordered log entry.
    #[must_use]
    pub fn is_reordered(self) -> bool {
        matches!(
            self,
            CountVerdict::ReorderedPisnMismatch
                | CountVerdict::ReorderedSnoopConflict
                | CountVerdict::ReorderedSnoopWrap
        )
    }
}

fn kind_name(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Load => "load",
        AccessKind::Store => "store",
        AccessKind::Rmw => "rmw",
    }
}

/// One traced event. Compact and `Copy`; the enclosing [`TraceRecord`]
/// carries the cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An interval opened (`ordinal` counts intervals from 0; `cisn` is the
    /// wrapping 16-bit interval sequence number).
    IntervalOpen {
        /// Wrapping interval sequence number.
        cisn: u16,
        /// Non-wrapping interval ordinal.
        ordinal: u64,
    },
    /// An interval closed.
    IntervalClose {
        /// Wrapping interval sequence number.
        cisn: u16,
        /// Non-wrapping interval ordinal.
        ordinal: u64,
        /// Why the interval terminated.
        why: CloseReason,
        /// Instructions counted into the interval so far.
        instrs: u32,
    },
    /// A memory access performed (became globally visible).
    Perform {
        /// Per-core sequence number.
        seq: u64,
        /// Load, store or RMW.
        kind: AccessKind,
        /// Byte address.
        addr: u64,
        /// The interval (CISN) current at perform time — the access's PISN.
        pisn: u16,
    },
    /// A memory access reached its counting event and was classified.
    Count {
        /// Per-core sequence number.
        seq: u64,
        /// Load, store or RMW.
        kind: AccessKind,
        /// Byte address.
        addr: u64,
        /// Interval current at perform time.
        pisn: u16,
        /// Interval current at counting time.
        cisn: u16,
        /// The classification decision and its reason.
        verdict: CountVerdict,
    },
    /// The pipeline squashed every instruction younger than `after_seq`.
    Squash {
        /// Last surviving sequence number.
        after_seq: u64,
    },
    /// A remote coherence transaction was observed by this core.
    Snoop {
        /// Line number (byte address / line size).
        line: u64,
        /// Remote write (true) or read (false).
        is_write: bool,
        /// Whether it conflicted with the current interval's signatures
        /// (conflicts terminate the interval).
        conflict: bool,
    },
    /// The Snoop Table counters covering `line` were bumped (Opt).
    SnoopTableBump {
        /// Line number.
        line: u64,
    },
    /// This core's L1 evicted a dirty line (directory mode).
    DirtyEviction {
        /// Line number.
        line: u64,
        /// Whether the line was in the current interval's signatures.
        conflict: bool,
    },
    /// A machine-level coherence transaction (the bus/directory view; one
    /// instant event per transaction, on the coherence track).
    Coherence {
        /// Requesting core.
        from: u8,
        /// Line number.
        line: u64,
        /// Write (true) or read (false) transaction.
        is_write: bool,
    },
    /// Replay: a thread's next interval had to wait for other threads'
    /// intervals (the patch/schedule order released them first).
    ReplayWait {
        /// The waiting thread.
        core: u8,
        /// Ordinal of the interval about to run.
        ordinal: u64,
        /// The interval's recorded timestamp.
        timestamp: u64,
    },
    /// Replay: an interval was released (executed to completion).
    ReplayRelease {
        /// The thread that ran.
        core: u8,
        /// Ordinal of the interval within its thread.
        ordinal: u64,
        /// The interval's recorded timestamp.
        timestamp: u64,
        /// Cumulative loads/RMWs this thread has replayed afterwards —
        /// forensics uses this to locate the interval containing a
        /// divergent load index.
        loads_done: u64,
    },
    /// Verification checked one thread's whole load trace.
    VerifyProgress {
        /// The verified thread.
        core: u8,
        /// Loads compared.
        loads_checked: u64,
    },
    /// Verification found a divergence.
    Divergence {
        /// The diverging thread.
        core: u8,
        /// Load index in program order.
        index: u64,
        /// Value during recording.
        recorded: u64,
        /// Value during replay.
        replayed: u64,
    },
}

impl TraceEvent {
    /// The [`kind`] category bit this event belongs to.
    #[must_use]
    pub fn kind_mask(&self) -> u32 {
        match self {
            TraceEvent::IntervalOpen { .. } | TraceEvent::IntervalClose { .. } => kind::INTERVAL,
            TraceEvent::Perform { .. } | TraceEvent::Squash { .. } => kind::ACCESS,
            TraceEvent::Count { .. } => kind::CLASSIFY,
            TraceEvent::Snoop { .. }
            | TraceEvent::DirtyEviction { .. }
            | TraceEvent::Coherence { .. } => kind::COHERENCE,
            TraceEvent::SnoopTableBump { .. } => kind::SNOOP_TABLE,
            TraceEvent::ReplayWait { .. } | TraceEvent::ReplayRelease { .. } => kind::REPLAY,
            TraceEvent::VerifyProgress { .. } | TraceEvent::Divergence { .. } => kind::VERIFY,
        }
    }

    /// Stable snake-case type name (the `"type"` field in JSONL).
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            TraceEvent::IntervalOpen { .. } => "interval_open",
            TraceEvent::IntervalClose { .. } => "interval_close",
            TraceEvent::Perform { .. } => "perform",
            TraceEvent::Count { .. } => "count",
            TraceEvent::Squash { .. } => "squash",
            TraceEvent::Snoop { .. } => "snoop",
            TraceEvent::SnoopTableBump { .. } => "snoop_table_bump",
            TraceEvent::DirtyEviction { .. } => "dirty_eviction",
            TraceEvent::Coherence { .. } => "coherence",
            TraceEvent::ReplayWait { .. } => "replay_wait",
            TraceEvent::ReplayRelease { .. } => "replay_release",
            TraceEvent::VerifyProgress { .. } => "verify_progress",
            TraceEvent::Divergence { .. } => "divergence",
        }
    }

    /// Appends this event's payload fields (no `type`, `core`, or `cycle`)
    /// as `"k":v` pairs to a JSON object under construction.
    fn write_json_fields(&self, out: &mut String) {
        match *self {
            TraceEvent::IntervalOpen { cisn, ordinal } => {
                let _ = write!(out, ",\"cisn\":{cisn},\"ordinal\":{ordinal}");
            }
            TraceEvent::IntervalClose {
                cisn,
                ordinal,
                why,
                instrs,
            } => {
                let _ = write!(
                    out,
                    ",\"cisn\":{cisn},\"ordinal\":{ordinal},\"why\":\"{}\",\"instrs\":{instrs}",
                    why.name()
                );
            }
            TraceEvent::Perform {
                seq,
                kind,
                addr,
                pisn,
            } => {
                let _ = write!(
                    out,
                    ",\"seq\":{seq},\"kind\":\"{}\",\"addr\":{addr},\"pisn\":{pisn}",
                    kind_name(kind)
                );
            }
            TraceEvent::Count {
                seq,
                kind,
                addr,
                pisn,
                cisn,
                verdict,
            } => {
                let _ = write!(
                    out,
                    ",\"seq\":{seq},\"kind\":\"{}\",\"addr\":{addr},\"pisn\":{pisn},\"cisn\":{cisn},\"verdict\":\"{}\"",
                    kind_name(kind),
                    verdict.name()
                );
            }
            TraceEvent::Squash { after_seq } => {
                let _ = write!(out, ",\"after_seq\":{after_seq}");
            }
            TraceEvent::Snoop {
                line,
                is_write,
                conflict,
            } => {
                let _ = write!(
                    out,
                    ",\"line\":{line},\"is_write\":{is_write},\"conflict\":{conflict}"
                );
            }
            TraceEvent::SnoopTableBump { line } => {
                let _ = write!(out, ",\"line\":{line}");
            }
            TraceEvent::DirtyEviction { line, conflict } => {
                let _ = write!(out, ",\"line\":{line},\"conflict\":{conflict}");
            }
            TraceEvent::Coherence {
                from,
                line,
                is_write,
            } => {
                let _ = write!(
                    out,
                    ",\"from\":{from},\"line\":{line},\"is_write\":{is_write}"
                );
            }
            TraceEvent::ReplayWait {
                core,
                ordinal,
                timestamp,
            } => {
                let _ = write!(
                    out,
                    ",\"core\":{core},\"ordinal\":{ordinal},\"timestamp\":{timestamp}"
                );
            }
            TraceEvent::ReplayRelease {
                core,
                ordinal,
                timestamp,
                loads_done,
            } => {
                let _ = write!(
                    out,
                    ",\"core\":{core},\"ordinal\":{ordinal},\"timestamp\":{timestamp},\"loads_done\":{loads_done}"
                );
            }
            TraceEvent::VerifyProgress {
                core,
                loads_checked,
            } => {
                let _ = write!(out, ",\"core\":{core},\"loads_checked\":{loads_checked}");
            }
            TraceEvent::Divergence {
                core,
                index,
                recorded,
                replayed,
            } => {
                let _ = write!(
                    out,
                    ",\"core\":{core},\"index\":{index},\"recorded\":{recorded},\"replayed\":{replayed}"
                );
            }
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::IntervalOpen { cisn, ordinal } => {
                write!(f, "interval #{ordinal} open (cisn {cisn})")
            }
            TraceEvent::IntervalClose {
                cisn,
                ordinal,
                why,
                instrs,
            } => write!(
                f,
                "interval #{ordinal} close (cisn {cisn}, {}, {instrs} instrs)",
                why.name()
            ),
            TraceEvent::Perform {
                seq,
                kind,
                addr,
                pisn,
            } => write!(
                f,
                "perform {} seq {seq} addr {addr:#x} (pisn {pisn})",
                kind_name(kind)
            ),
            TraceEvent::Count {
                seq,
                kind,
                addr,
                pisn,
                cisn,
                verdict,
            } => write!(
                f,
                "count {} seq {seq} addr {addr:#x} pisn {pisn} cisn {cisn} -> {}",
                kind_name(kind),
                verdict.name()
            ),
            TraceEvent::Squash { after_seq } => write!(f, "squash after seq {after_seq}"),
            TraceEvent::Snoop {
                line,
                is_write,
                conflict,
            } => write!(
                f,
                "snoop {} line {line:#x}{}",
                if is_write { "write" } else { "read" },
                if conflict { " (conflict)" } else { "" }
            ),
            TraceEvent::SnoopTableBump { line } => write!(f, "snoop-table bump line {line:#x}"),
            TraceEvent::DirtyEviction { line, conflict } => write!(
                f,
                "dirty eviction line {line:#x}{}",
                if conflict { " (conflict)" } else { "" }
            ),
            TraceEvent::Coherence {
                from,
                line,
                is_write,
            } => write!(
                f,
                "coherence {} from P{from} line {line:#x}",
                if is_write { "write" } else { "read" }
            ),
            TraceEvent::ReplayWait {
                core,
                ordinal,
                timestamp,
            } => write!(f, "replay wait P{core} interval #{ordinal} (ts {timestamp})"),
            TraceEvent::ReplayRelease {
                core,
                ordinal,
                timestamp,
                loads_done,
            } => write!(
                f,
                "replay release P{core} interval #{ordinal} (ts {timestamp}, {loads_done} loads done)"
            ),
            TraceEvent::VerifyProgress { core, loads_checked } => {
                write!(f, "verify P{core}: {loads_checked} loads checked")
            }
            TraceEvent::Divergence {
                core,
                index,
                recorded,
                replayed,
            } => write!(
                f,
                "DIVERGENCE P{core} load #{index}: recorded {recorded:#x}, replayed {replayed:#x}"
            ),
        }
    }
}

/// One captured event with its cycle (record side) or logical timestamp
/// (replay side).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle (or replay timestamp) at capture.
    pub cycle: u64,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Renders this record as one JSONL object with its owning core id.
    #[must_use]
    pub fn to_json(&self, core: u8) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"core\":{core},\"cycle\":{},\"type\":\"{}\"",
            self.cycle,
            self.event.type_name()
        );
        self.event.write_json_fields(&mut out);
        out.push('}');
        out
    }
}

/// The pseudo core id used for rings that are not tied to one core (the
/// coherence ring and the replay ring).
pub const MACHINE_CORE: u8 = u8::MAX;

/// A bounded ring buffer of trace records for one core (or for the
/// machine/replay pseudo-core [`MACHINE_CORE`]).
///
/// Pushing past capacity drops the oldest record and counts it in
/// [`TraceRing::dropped`] — tracing never grows unboundedly and always
/// retains the most recent window.
#[derive(Clone, Debug)]
pub struct TraceRing {
    core: CoreId,
    mask: u32,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl TraceRing {
    /// An empty ring for `core` under `cfg`'s mask and capacity.
    #[must_use]
    pub fn new(core: CoreId, cfg: &TraceConfig) -> Self {
        TraceRing {
            core,
            mask: cfg.mask,
            capacity: cfg.capacity.max(1),
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The ring's core.
    #[must_use]
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Whether the ring captures events in all of `bits` categories.
    #[must_use]
    pub fn wants(&self, bits: u32) -> bool {
        self.mask & bits == bits
    }

    /// Captures `event` at `cycle` if its category is enabled, evicting
    /// the oldest record when the ring is full.
    pub fn push(&mut self, cycle: u64, event: TraceEvent) {
        if self.mask & event.kind_mask() == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { cycle, event });
    }

    /// Records currently held, oldest first.
    #[must_use]
    pub fn records(&self) -> &VecDeque<TraceRecord> {
        &self.records
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends this ring's records as JSONL lines to `out`.
    pub fn write_jsonl(&self, out: &mut String) {
        let core = self.core.index() as u8;
        for r in &self.records {
            out.push_str(&r.to_json(core));
            out.push('\n');
        }
    }
}

/// Everything one traced run captured: a ring per core plus a machine-level
/// coherence ring.
#[derive(Clone, Debug)]
pub struct RunTrace {
    /// Per-core rings, index = core id.
    pub cores: Vec<TraceRing>,
    /// Machine-level coherence transactions (core = [`MACHINE_CORE`]).
    pub coherence: TraceRing,
}

impl RunTrace {
    /// An empty trace for `num_cores` cores under `cfg`.
    #[must_use]
    pub fn new(num_cores: usize, cfg: &TraceConfig) -> Self {
        RunTrace {
            cores: (0..num_cores)
                .map(|i| TraceRing::new(CoreId::new(i as u8), cfg))
                .collect(),
            coherence: TraceRing::new(CoreId::new(MACHINE_CORE), cfg),
        }
    }

    /// Total records held across all rings.
    #[must_use]
    pub fn total_records(&self) -> usize {
        self.cores.iter().map(TraceRing::len).sum::<usize>() + self.coherence.len()
    }

    /// Renders every ring as JSONL, one object per line. When `run` is
    /// non-empty each line is prefixed with a `"run"` identity field, so
    /// sidecars aggregating several runs stay self-describing.
    #[must_use]
    pub fn to_jsonl(&self, run: &str) -> String {
        let mut body = String::new();
        for ring in self.cores.iter().chain(std::iter::once(&self.coherence)) {
            ring.write_jsonl(&mut body);
        }
        if run.is_empty() {
            return body;
        }
        let mut out = String::with_capacity(body.len() + 32 * self.total_records());
        let prefix = format!("{{\"run\":{},", json::escape(run));
        for line in body.lines() {
            out.push_str(&prefix);
            out.push_str(&line[1..]); // replace the opening '{'
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event (Perfetto) export
// ---------------------------------------------------------------------------

/// Exports one or more named run traces as Chrome trace-event JSON (the
/// "JSON object format": `{"traceEvents":[...]}`), loadable in Perfetto or
/// `chrome://tracing`.
///
/// Layout: one *process* per run, one *thread* (track) per core, plus a
/// dedicated coherence track. Intervals become complete (`"X"`) duration
/// events paired by ordinal — robust against ring eviction dropping an
/// open while keeping its close — and everything else becomes an instant
/// (`"i"`) event with its payload under `args`.
#[must_use]
pub fn chrome_trace(runs: &[(String, &RunTrace)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    for (pid, (name, trace)) in runs.iter().enumerate() {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
                json::escape(name)
            ),
            &mut out,
            &mut first,
        );
        for ring in trace.cores.iter().chain(std::iter::once(&trace.coherence)) {
            let tid = ring.core().index();
            let track = if tid == MACHINE_CORE as usize {
                "coherence".to_string()
            } else {
                format!("core {tid}")
            };
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                    json::escape(&track)
                ),
                &mut out,
                &mut first,
            );
            // Pair interval opens and closes by ordinal.
            let mut open_at: std::collections::BTreeMap<u64, u64> =
                std::collections::BTreeMap::new();
            for r in ring.records() {
                match r.event {
                    TraceEvent::IntervalOpen { ordinal, .. } => {
                        open_at.insert(ordinal, r.cycle);
                    }
                    TraceEvent::IntervalClose {
                        cisn,
                        ordinal,
                        why,
                        instrs,
                    } => {
                        let ts = open_at.remove(&ordinal).unwrap_or(r.cycle);
                        let dur = r.cycle.saturating_sub(ts);
                        push(
                            format!(
                                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                                 \"name\":\"interval {ordinal}\",\"args\":{{\"cisn\":{cisn},\"why\":\"{}\",\"instrs\":{instrs}}}}}",
                                why.name()
                            ),
                            &mut out,
                            &mut first,
                        );
                    }
                    ev => {
                        let mut args = String::from("{\"detail\":");
                        args.push_str(&json::escape(&ev.to_string()));
                        args.push('}');
                        push(
                            format!(
                                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
                                 \"name\":\"{}\",\"args\":{args}}}",
                                r.cycle,
                                ev.type_name()
                            ),
                            &mut out,
                            &mut first,
                        );
                    }
                }
            }
            // An interval left open (no close captured) still gets a mark.
            for (ordinal, ts) in open_at {
                push(
                    format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
                         \"name\":\"interval {ordinal} (unclosed)\",\"args\":{{}}}}"
                    ),
                    &mut out,
                    &mut first,
                );
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Summary of a validated Chrome trace (see [`validate_chrome_trace`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChromeStats {
    /// Total events in `traceEvents` (metadata included).
    pub events: usize,
    /// Distinct processes (runs).
    pub processes: usize,
    /// Distinct `(pid, tid)` tracks.
    pub tracks: usize,
    /// Every `thread_name` metadata value, sorted.
    pub track_names: Vec<String>,
}

/// Parses `s` as Chrome trace-event JSON and checks the schema: a top-level
/// object with a `traceEvents` array whose every element is an object with
/// a string `ph`, numeric `pid`/`tid`, and (for non-metadata phases) a
/// numeric `ts`.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_chrome_trace(s: &str) -> Result<ChromeStats, String> {
    let v = json::parse(s)?;
    let obj = v.as_object().ok_or("top level is not a JSON object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing \"traceEvents\"")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut tracks = std::collections::BTreeSet::new();
    let mut processes = std::collections::BTreeSet::new();
    let mut track_names = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ev = ev
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let field = |name: &str| {
            ev.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("event {i} missing \"{name}\""))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"ph\" is not a string"))?
            .to_string();
        let pid = field("pid")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: \"pid\" is not a number"))?;
        let tid = field("tid")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: \"tid\" is not a number"))?;
        processes.insert(pid);
        if ph == "M" {
            let name = field("name")?
                .as_str()
                .ok_or_else(|| format!("event {i}: metadata \"name\" is not a string"))?;
            if name == "thread_name" {
                tracks.insert((pid, tid));
                if let Some(args) = ev.iter().find(|(k, _)| k == "args") {
                    if let Some(n) = args
                        .1
                        .as_object()
                        .and_then(|a| a.iter().find(|(k, _)| k == "name"))
                        .and_then(|(_, v)| v.as_str())
                    {
                        track_names.push(n.to_string());
                    }
                }
            }
            continue;
        }
        field("ts")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: \"ts\" is not a number"))?;
        if ph == "X" {
            field("dur")?
                .as_u64()
                .ok_or_else(|| format!("event {i}: \"dur\" is not a number"))?;
        }
        if !matches!(ph.as_str(), "X" | "i" | "B" | "E" | "C") {
            return Err(format!("event {i}: unexpected phase {ph:?}"));
        }
    }
    track_names.sort();
    Ok(ChromeStats {
        events: events.len(),
        processes: processes.len(),
        tracks: tracks.len(),
        track_names,
    })
}

/// Rebuilds a [`TraceRecord`] (plus its run and core identity) from one
/// `trace.jsonl` line, for tooling that converts sidecars back into
/// Perfetto JSON. Returns `(run, core, record)`; `run` is empty when the
/// line carries no `"run"` field.
///
/// # Errors
///
/// Returns a description of the first malformed or unknown field.
pub fn record_from_jsonl(line: &str) -> Result<(String, u8, TraceRecord), String> {
    let v = json::parse(line)?;
    let obj = v.as_object().ok_or("line is not a JSON object")?;
    let get = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let num = |name: &str| {
        get(name)
            .and_then(json::Value::as_u64)
            .ok_or_else(|| format!("missing or non-numeric \"{name}\""))
    };
    let string = |name: &str| {
        get(name)
            .and_then(json::Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing or non-string \"{name}\""))
    };
    let boolean = |name: &str| {
        get(name)
            .and_then(json::Value::as_bool)
            .ok_or_else(|| format!("missing or non-bool \"{name}\""))
    };
    let run = get("run")
        .and_then(json::Value::as_str)
        .unwrap_or("")
        .to_string();
    let core = u8::try_from(num("core")?).map_err(|_| "core exceeds u8".to_string())?;
    let cycle = num("cycle")?;
    let ty = string("type")?;
    let access_kind = |name: &str| -> Result<AccessKind, String> {
        match string(name)?.as_str() {
            "load" => Ok(AccessKind::Load),
            "store" => Ok(AccessKind::Store),
            "rmw" => Ok(AccessKind::Rmw),
            other => Err(format!("unknown access kind {other:?}")),
        }
    };
    let u16_of = |name: &str| -> Result<u16, String> {
        u16::try_from(num(name)?).map_err(|_| format!("\"{name}\" exceeds u16"))
    };
    let event = match ty.as_str() {
        "interval_open" => TraceEvent::IntervalOpen {
            cisn: u16_of("cisn")?,
            ordinal: num("ordinal")?,
        },
        "interval_close" => TraceEvent::IntervalClose {
            cisn: u16_of("cisn")?,
            ordinal: num("ordinal")?,
            why: match string("why")?.as_str() {
                "conflict" => CloseReason::Conflict,
                "max_size" => CloseReason::MaxSize,
                "final" => CloseReason::Final,
                "forced" => CloseReason::Forced,
                other => return Err(format!("unknown close reason {other:?}")),
            },
            instrs: u32::try_from(num("instrs")?).map_err(|_| "instrs exceeds u32".to_string())?,
        },
        "perform" => TraceEvent::Perform {
            seq: num("seq")?,
            kind: access_kind("kind")?,
            addr: num("addr")?,
            pisn: u16_of("pisn")?,
        },
        "count" => TraceEvent::Count {
            seq: num("seq")?,
            kind: access_kind("kind")?,
            addr: num("addr")?,
            pisn: u16_of("pisn")?,
            cisn: u16_of("cisn")?,
            verdict: match string("verdict")?.as_str() {
                "in_order" => CountVerdict::InOrder,
                "moved_across" => CountVerdict::MovedAcross,
                "reordered_pisn_mismatch" => CountVerdict::ReorderedPisnMismatch,
                "reordered_snoop_conflict" => CountVerdict::ReorderedSnoopConflict,
                "reordered_snoop_wrap" => CountVerdict::ReorderedSnoopWrap,
                other => return Err(format!("unknown verdict {other:?}")),
            },
        },
        "squash" => TraceEvent::Squash {
            after_seq: num("after_seq")?,
        },
        "snoop" => TraceEvent::Snoop {
            line: num("line")?,
            is_write: boolean("is_write")?,
            conflict: boolean("conflict")?,
        },
        "snoop_table_bump" => TraceEvent::SnoopTableBump { line: num("line")? },
        "dirty_eviction" => TraceEvent::DirtyEviction {
            line: num("line")?,
            conflict: boolean("conflict")?,
        },
        "coherence" => TraceEvent::Coherence {
            from: u8::try_from(num("from")?).map_err(|_| "from exceeds u8".to_string())?,
            line: num("line")?,
            is_write: boolean("is_write")?,
        },
        "replay_wait" => TraceEvent::ReplayWait {
            core: u8::try_from(num("core")?).unwrap_or(MACHINE_CORE),
            ordinal: num("ordinal")?,
            timestamp: num("timestamp")?,
        },
        "replay_release" => TraceEvent::ReplayRelease {
            core: u8::try_from(num("core")?).unwrap_or(MACHINE_CORE),
            ordinal: num("ordinal")?,
            timestamp: num("timestamp")?,
            loads_done: num("loads_done")?,
        },
        "verify_progress" => TraceEvent::VerifyProgress {
            core: u8::try_from(num("core")?).unwrap_or(MACHINE_CORE),
            loads_checked: num("loads_checked")?,
        },
        "divergence" => TraceEvent::Divergence {
            core: u8::try_from(num("core")?).unwrap_or(MACHINE_CORE),
            index: num("index")?,
            recorded: num("recorded")?,
            replayed: num("replayed")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok((run, core, TraceRecord { cycle, event }))
}

// Caveat for replay_wait/replay_release/verify_progress/divergence above:
// their "core" payload field collides with the envelope "core" field only
// in name; both carry the same value on the replay ring, so reusing the
// envelope value is lossless.

/// Converts a `trace.jsonl` sidecar (as written by [`RunTrace::to_jsonl`])
/// back into Chrome trace-event JSON — the `rr-inspect trace` conversion.
///
/// Lines are grouped by their `"run"` field (first-seen order); records on
/// [`MACHINE_CORE`] land on each run's coherence/replay track. Blank lines
/// are skipped.
///
/// # Errors
///
/// Returns `line <n>: <detail>` for the first malformed line.
pub fn chrome_trace_from_jsonl(input: &str) -> Result<String, String> {
    let mut parsed: Vec<(String, u8, TraceRecord)> = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        parsed.push(record_from_jsonl(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    let cfg = TraceConfig::full().with_capacity(parsed.len().max(1));
    let mut order: Vec<String> = Vec::new();
    for (run, _, _) in &parsed {
        if !order.iter().any(|r| r == run) {
            order.push(run.clone());
        }
    }
    let mut traces: Vec<RunTrace> = Vec::new();
    for run in &order {
        let cores = parsed
            .iter()
            .filter(|(r, c, _)| r == run && *c != MACHINE_CORE)
            .map(|(_, c, _)| *c as usize + 1)
            .max()
            .unwrap_or(0);
        let mut t = RunTrace::new(cores, &cfg);
        for (r, c, rec) in &parsed {
            if r != run {
                continue;
            }
            if *c == MACHINE_CORE {
                t.coherence.push(rec.cycle, rec.event);
            } else {
                t.cores[*c as usize].push(rec.cycle, rec.event);
            }
        }
        traces.push(t);
    }
    let pairs: Vec<(String, &RunTrace)> = order.into_iter().zip(traces.iter()).collect();
    Ok(chrome_trace(&pairs))
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (validation + sidecar conversion; no external deps)
// ---------------------------------------------------------------------------

/// A small recursive-descent JSON parser — just enough to validate Chrome
/// traces and read back `trace.jsonl` sidecars without external crates.
///
/// Integers that fit `u64` are preserved exactly ([`Value::UInt`]); other
/// numbers fall back to `f64`.
pub mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A non-negative integer that fits `u64`, preserved exactly.
        UInt(u64),
        /// Any other number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, as key/value pairs in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The value as a `u64`, if it is a non-negative integer.
        #[must_use]
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::UInt(n) => Some(*n),
                Value::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                    Some(*f as u64)
                }
                _ => None,
            }
        }

        /// The value as a string slice, if it is a string.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as a bool, if it is one.
        #[must_use]
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The value's fields, if it is an object.
        #[must_use]
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }

        /// The value's elements, if it is an array.
        #[must_use]
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// Looks up a key, if the value is an object.
        #[must_use]
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }
    }

    /// Escapes `s` as a JSON string literal (with quotes).
    #[must_use]
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    use std::fmt::Write as _;
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    /// Parses one complete JSON value from `s` (trailing whitespace
    /// allowed, trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a description with a byte offset on malformed input.
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn err(&self, what: &str) -> String {
            format!("{what} at byte {}", self.pos)
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected {:?}", b as char)))
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(self.err("invalid literal"))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(self.err("unexpected character")),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let v = self.value()?;
                fields.push((key, v));
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.bytes.get(self.pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                // Surrogates degrade to the replacement char;
                                // trace strings never contain them.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            _ => return Err(self.err("bad escape")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                        let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.bytes.get(self.pos) == Some(&b'-') {
                self.pos += 1;
            }
            let mut is_integer = true;
            while let Some(&b) = self.bytes.get(self.pos) {
                match b {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        is_integer = false;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("bad number"))?;
            if is_integer && !text.starts_with('-') {
                if let Ok(n) = text.parse::<u64>() {
                    return Ok(Value::UInt(n));
                }
            }
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_full() -> TraceConfig {
        TraceConfig::full()
    }

    #[test]
    fn levels_nest() {
        assert_eq!(TraceLevel::Off.mask(), 0);
        let i = TraceLevel::Intervals.mask();
        let a = TraceLevel::Accesses.mask();
        let f = TraceLevel::Full.mask();
        assert_eq!(i & a, i, "accesses includes intervals");
        assert_eq!(a & f, a, "full includes accesses");
        assert_eq!(f, kind::ALL);
        assert_eq!(TraceLevel::parse("Accesses"), Some(TraceLevel::Accesses));
        assert_eq!(TraceLevel::parse("2"), Some(TraceLevel::Accesses));
        assert_eq!(TraceLevel::parse("bogus"), None);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let cfg = cfg_full().with_capacity(3);
        let mut ring = TraceRing::new(CoreId::new(0), &cfg);
        for i in 0..10 {
            ring.push(i, TraceEvent::Squash { after_seq: i });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let cycles: Vec<u64> = ring.records().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9], "keeps the newest window");
    }

    #[test]
    fn mask_filters_categories() {
        let cfg = TraceConfig {
            mask: kind::INTERVAL,
            capacity: 16,
        };
        let mut ring = TraceRing::new(CoreId::new(0), &cfg);
        ring.push(1, TraceEvent::Squash { after_seq: 0 }); // ACCESS: filtered
        ring.push(
            2,
            TraceEvent::IntervalOpen {
                cisn: 0,
                ordinal: 0,
            },
        );
        assert_eq!(ring.len(), 1);
        assert!(ring.wants(kind::INTERVAL));
        assert!(!ring.wants(kind::ACCESS));
    }

    #[test]
    fn jsonl_lines_parse_and_round_trip() {
        let cfg = cfg_full();
        let mut trace = RunTrace::new(2, &cfg);
        trace.cores[0].push(
            5,
            TraceEvent::Count {
                seq: 9,
                kind: AccessKind::Rmw,
                addr: 0x208,
                pisn: 3,
                cisn: 4,
                verdict: CountVerdict::ReorderedSnoopConflict,
            },
        );
        trace.cores[1].push(
            6,
            TraceEvent::Perform {
                seq: 1,
                kind: AccessKind::Load,
                addr: u64::MAX,
                pisn: 0,
            },
        );
        trace.coherence.push(
            7,
            TraceEvent::Coherence {
                from: 1,
                line: 8,
                is_write: true,
            },
        );
        let jsonl = trace.to_jsonl("demo");
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            let (run, _core, rec) = record_from_jsonl(line).expect("parses");
            assert_eq!(run, "demo");
            // Find the original record and compare exactly (u64::MAX must
            // survive the JSON round trip).
            let all: Vec<TraceRecord> = trace
                .cores
                .iter()
                .chain(std::iter::once(&trace.coherence))
                .flat_map(|r| r.records().iter().copied())
                .collect();
            assert!(all.contains(&rec), "{line}");
        }
    }

    #[test]
    fn jsonl_sidecar_converts_to_a_valid_chrome_trace() {
        let cfg = cfg_full();
        let mut trace = RunTrace::new(2, &cfg);
        trace.cores[0].push(
            10,
            TraceEvent::IntervalOpen {
                cisn: 0,
                ordinal: 0,
            },
        );
        trace.cores[0].push(
            90,
            TraceEvent::IntervalClose {
                cisn: 0,
                ordinal: 0,
                why: CloseReason::Conflict,
                instrs: 64,
            },
        );
        trace.cores[1].push(15, TraceEvent::Squash { after_seq: 2 });
        trace.coherence.push(
            12,
            TraceEvent::Coherence {
                from: 0,
                line: 4,
                is_write: false,
            },
        );
        let jsonl = trace.to_jsonl("demo");
        let chrome = chrome_trace_from_jsonl(&jsonl).expect("converts");
        let stats = validate_chrome_trace(&chrome).expect("valid");
        // 2 core tracks + the coherence track.
        assert_eq!(stats.tracks, 3, "{chrome}");
        assert!(chrome_trace_from_jsonl("{\"nope\":1}\n").is_err());
    }

    #[test]
    fn chrome_export_validates_with_one_track_per_core() {
        let cfg = cfg_full();
        let mut trace = RunTrace::new(2, &cfg);
        for (c, ring) in trace.cores.iter_mut().enumerate() {
            ring.push(
                10,
                TraceEvent::IntervalOpen {
                    cisn: 0,
                    ordinal: 0,
                },
            );
            ring.push(
                90 + c as u64,
                TraceEvent::IntervalClose {
                    cisn: 0,
                    ordinal: 0,
                    why: CloseReason::MaxSize,
                    instrs: 80,
                },
            );
            ring.push(50, TraceEvent::Squash { after_seq: 3 });
        }
        trace.coherence.push(
            20,
            TraceEvent::Coherence {
                from: 0,
                line: 4,
                is_write: false,
            },
        );
        let json = chrome_trace(&[("run-a".to_string(), &trace)]);
        let stats = validate_chrome_trace(&json).expect("valid chrome trace");
        assert_eq!(stats.processes, 1);
        assert_eq!(stats.tracks, 3, "core 0, core 1, coherence");
        assert!(stats.track_names.contains(&"core 0".to_string()));
        assert!(stats.track_names.contains(&"core 1".to_string()));
        assert!(stats.track_names.contains(&"coherence".to_string()));
    }

    #[test]
    fn chrome_export_survives_evicted_interval_opens() {
        // Capacity 1: the close survives, its open was evicted.
        let cfg = cfg_full().with_capacity(1);
        let mut trace = RunTrace::new(1, &cfg);
        trace.cores[0].push(
            10,
            TraceEvent::IntervalOpen {
                cisn: 0,
                ordinal: 0,
            },
        );
        trace.cores[0].push(
            90,
            TraceEvent::IntervalClose {
                cisn: 0,
                ordinal: 0,
                why: CloseReason::Final,
                instrs: 5,
            },
        );
        let json = chrome_trace(&[("r".to_string(), &trace)]);
        validate_chrome_trace(&json).expect("still valid");
    }

    #[test]
    fn json_parser_handles_the_basics() {
        use json::Value;
        let v = json::parse(r#"{"a":[1,2.5,true,null,"x\n"],"b":18446744073709551615}"#)
            .expect("parses");
        assert_eq!(v.get("b").and_then(Value::as_u64), Some(u64::MAX));
        let arr = v.get("a").and_then(Value::as_array).expect("array");
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], Value::Num(2.5));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[4].as_str(), Some("x\n"));
        assert!(json::parse("{\"a\":}").is_err());
        assert!(json::parse("[1,2] tail").is_err());
    }
}
