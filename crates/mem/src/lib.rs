//! # rr-mem — cache hierarchy and coherence for the RelaxReplay reproduction
//!
//! Timing and coherence model of the simulated multicore's memory system
//! (paper §5.1, Table 1): private L1 caches kept coherent by a MESI protocol
//! over a ring-based snoopy bus, a shared L2, and main memory. A
//! directory-style filtering mode is also provided for the paper's §4.3
//! discussion (only sharers observe coherence transactions, and dirty
//! evictions are reported so the recorder's Snoop Table can compensate).
//!
//! This crate models **when** accesses perform and **which coherence events
//! each core observes**; data values live in `rr_isa::MemImage` and are
//! applied by the core model at perform time. That split cleanly encodes the
//! write-atomicity property RelaxReplay relies on (paper §3.2, Observation
//! 1): a store's value becomes visible to everyone at the single instant its
//! coherence transaction completes.
//!
//! Key guarantees of the model (asserted by tests):
//!
//! * **Per-line serialization** — a line with a transaction in flight is
//!   *busy*; later requests to it are deferred past its completion.
//! * **Snoop-before-completion** — invalidations/downgrades for a
//!   transaction are delivered to other cores no later than the requester's
//!   completion, so a store is globally visible only after all stale copies
//!   are gone.
//! * **SWMR** — at any instant a line has either one writer (M) or any
//!   number of readers (E/S); checked by [`invariants::check_swmr`].
//!
//! ```
//! use rr_mem::{AccessKind, CoreId, LineAddr, MemConfig, MemorySystem, Response};
//!
//! let mut mem = MemorySystem::new(MemConfig::splash_default(2));
//! // Core 0 load-misses: the request is queued and completes later.
//! let resp = mem.access(
//!     0,
//!     CoreId::new(0),
//!     AccessKind::Load,
//!     LineAddr::containing(0x1000),
//! );
//! assert!(matches!(resp, Response::Pending { .. }));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod config;
pub mod invariants;
mod line;
mod memory;
mod mesi;
mod stats;

pub use cache::SetAssocCache;
pub use config::{CoherenceMode, MemConfig};
pub use line::{CoreId, LineAddr};
pub use memory::{
    AccessKind, Completion, MemTickOutput, MemorySystem, ReqId, Response, SnoopEvent, SnoopScope,
};
pub use mesi::MesiState;
pub use stats::MemStats;
