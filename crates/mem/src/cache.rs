use crate::LineAddr;

#[derive(Clone, Debug)]
struct Way<T> {
    line: LineAddr,
    payload: T,
    last_used: u64,
}

/// A generic set-associative cache with true-LRU replacement, used for both
/// the per-core L1s (payload = [`MesiState`](crate::MesiState)) and the
/// shared L2 (payload = `()`).
///
/// ```
/// use rr_mem::{LineAddr, SetAssocCache};
/// let mut c: SetAssocCache<u32> = SetAssocCache::new(2, 2);
/// let l = LineAddr::from_line_number(5);
/// assert!(c.get(l).is_none());
/// assert!(c.insert(l, 7).is_none());
/// assert_eq!(c.get(l), Some(&7));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache<T> {
    sets: Vec<Vec<Way<T>>>,
    assoc: usize,
    clock: u64,
}

impl<T> SetAssocCache<T> {
    /// Creates a cache with `num_sets` sets of `assoc` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two or `assoc` is zero.
    #[must_use]
    pub fn new(num_sets: usize, assoc: usize) -> Self {
        assert!(
            num_sets.is_power_of_two(),
            "num_sets must be a power of two"
        );
        assert!(assoc > 0, "associativity must be positive");
        SetAssocCache {
            sets: (0..num_sets).map(|_| Vec::with_capacity(assoc)).collect(),
            assoc,
            clock: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.line_number() as usize) & (self.sets.len() - 1)
    }

    /// Looks up a line, updating LRU recency on hit.
    pub fn get(&mut self, line: LineAddr) -> Option<&T> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(line);
        self.sets[set].iter_mut().find(|w| w.line == line).map(|w| {
            w.last_used = clock;
            &w.payload
        })
    }

    /// Looks up a line mutably, updating LRU recency on hit.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(line);
        self.sets[set].iter_mut().find(|w| w.line == line).map(|w| {
            w.last_used = clock;
            &mut w.payload
        })
    }

    /// Looks up a line without touching LRU state (for snoops and
    /// invariant checks).
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> Option<&T> {
        let set = self.set_index(line);
        self.sets[set]
            .iter()
            .find(|w| w.line == line)
            .map(|w| &w.payload)
    }

    /// Whether the line is present.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line, evicting the LRU way of a full set.
    ///
    /// Returns the evicted `(line, payload)`, if any. Inserting a line that
    /// is already present replaces its payload (no eviction).
    pub fn insert(&mut self, line: LineAddr, payload: T) -> Option<(LineAddr, T)> {
        self.clock += 1;
        let clock = self.clock;
        let assoc = self.assoc;
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.line == line) {
            w.payload = payload;
            w.last_used = clock;
            return None;
        }
        let new_way = Way {
            line,
            payload,
            last_used: clock,
        };
        if set.len() < assoc {
            set.push(new_way);
            return None;
        }
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.last_used)
            .map(|(i, _)| i)
            .expect("full set has a victim");
        let victim = std::mem::replace(&mut set[victim_idx], new_way);
        Some((victim.line, victim.payload))
    }

    /// Removes a line, returning its payload if it was present.
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        let set = self.set_index(line);
        let pos = self.sets[set].iter().position(|w| w.line == line)?;
        Some(self.sets[set].swap_remove(pos).payload)
    }

    /// Iterates over all resident `(line, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|w| (w.line, &w.payload)))
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn insert_get_remove() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(4, 2);
        assert!(c.insert(line(1), 10).is_none());
        assert_eq!(c.get(line(1)), Some(&10));
        assert_eq!(c.remove(line(1)), Some(10));
        assert!(c.get(line(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One set (sets=1) of 2 ways: lines 0,1,2 all map to set 0.
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 2);
        c.insert(line(0), 0);
        c.insert(line(1), 1);
        c.get(line(0)); // make line 1 the LRU
        let evicted = c.insert(line(2), 2).expect("must evict");
        assert_eq!(evicted, (line(1), 1));
        assert!(c.contains(line(0)));
        assert!(c.contains(line(2)));
    }

    #[test]
    fn reinsert_updates_payload_without_eviction() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 1);
        c.insert(line(7), 1);
        assert!(c.insert(line(7), 2).is_none());
        assert_eq!(c.peek(line(7)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn sets_isolate_conflicts() {
        // 2 sets: even lines to set 0, odd to set 1.
        let mut c: SetAssocCache<u32> = SetAssocCache::new(2, 1);
        c.insert(line(0), 0);
        c.insert(line(1), 1);
        assert_eq!(c.len(), 2, "different sets must not conflict");
        let ev = c.insert(line(2), 2).expect("same-set eviction");
        assert_eq!(ev.0, line(0));
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 2);
        c.insert(line(0), 0);
        c.insert(line(1), 1);
        let _ = c.peek(line(0)); // must NOT refresh line 0
        let evicted = c.insert(line(2), 2).expect("must evict");
        assert_eq!(evicted.0, line(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _: SetAssocCache<()> = SetAssocCache::new(3, 1);
    }
}
