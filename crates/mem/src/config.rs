use crate::line::LINE_BYTES;

/// How coherence transactions are made visible to other cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoherenceMode {
    /// Ring-based snoopy protocol: every core observes every transaction
    /// (the paper's default configuration, Table 1). More observed traffic
    /// means more signature/Snoop-Table false positives as the core count
    /// grows (paper §5.5).
    Snoopy,
    /// Directory-style filtering: only cores whose L1 holds the line observe
    /// a transaction. Dirty evictions are reported to the evicting core so
    /// RelaxReplay_Opt's Snoop Table stays conservative (paper §4.3).
    Directory,
}

/// Configuration of the memory system, mirroring the paper's Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of cores sharing the memory system.
    pub num_cores: usize,
    /// Coherence visibility mode.
    pub mode: CoherenceMode,
    /// L1 capacity in bytes (Table 1: 64 KB).
    pub l1_bytes: usize,
    /// L1 associativity (Table 1: 4-way).
    pub l1_assoc: usize,
    /// L1 hit round-trip latency in cycles (Table 1: 2).
    pub l1_hit_latency: u64,
    /// Per-core L1 MSHR count (Table 1: 64).
    pub l1_mshrs: usize,
    /// Shared L2 capacity in bytes *per core* (Table 1: 512 KB per core).
    pub l2_bytes_per_core: usize,
    /// L2 associativity (Table 1: 16-way).
    pub l2_assoc: usize,
    /// Average L2 round-trip latency in cycles (Table 1: 12).
    pub l2_latency: u64,
    /// Main-memory round-trip latency from the L2 in cycles (Table 1: 150).
    pub memory_latency: u64,
    /// Per-hop ring delay in cycles (Table 1: 1-cycle hop).
    pub ring_hop_latency: u64,
    /// Cache-to-cache transfer cost added on top of the ring traversal.
    pub c2c_latency: u64,
}

impl MemConfig {
    /// The paper's default memory-system parameters (Table 1) for
    /// `num_cores` cores.
    #[must_use]
    pub fn splash_default(num_cores: usize) -> Self {
        MemConfig {
            num_cores,
            mode: CoherenceMode::Snoopy,
            l1_bytes: 64 * 1024,
            l1_assoc: 4,
            l1_hit_latency: 2,
            l1_mshrs: 64,
            l2_bytes_per_core: 512 * 1024,
            l2_assoc: 16,
            l2_latency: 12,
            memory_latency: 150,
            ring_hop_latency: 1,
            c2c_latency: 6,
        }
    }

    /// Number of sets in each L1.
    #[must_use]
    pub fn l1_sets(&self) -> usize {
        self.l1_bytes / (LINE_BYTES as usize * self.l1_assoc)
    }

    /// Number of sets in the shared L2.
    #[must_use]
    pub fn l2_sets(&self) -> usize {
        (self.l2_bytes_per_core * self.num_cores) / (LINE_BYTES as usize * self.l2_assoc)
    }

    /// Cycles for a transaction to traverse the whole ring (visit every
    /// core) — the time by which every snoop has been delivered.
    #[must_use]
    pub fn ring_traversal(&self) -> u64 {
        self.ring_hop_latency * self.num_cores as u64
    }

    /// Completion latency of a miss serviced by another core's L1
    /// (cache-to-cache transfer).
    #[must_use]
    pub fn c2c_total_latency(&self) -> u64 {
        self.ring_traversal() + self.c2c_latency
    }

    /// Completion latency of a miss serviced by the shared L2.
    #[must_use]
    pub fn l2_total_latency(&self) -> u64 {
        self.ring_traversal() + self.l2_latency
    }

    /// Completion latency of a miss serviced by main memory.
    #[must_use]
    pub fn memory_total_latency(&self) -> u64 {
        self.ring_traversal() + self.l2_latency + self.memory_latency
    }

    /// Completion latency of an upgrade (S→M): only the ring traversal, no
    /// data transfer.
    #[must_use]
    pub fn upgrade_latency(&self) -> u64 {
        self.ring_traversal()
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::splash_default(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometry() {
        let c = MemConfig::splash_default(8);
        assert_eq!(c.l1_sets(), 512); // 64KB / (32B * 4)
        assert_eq!(c.l2_sets(), 8192); // 4MB / (32B * 16)
        assert_eq!(c.ring_traversal(), 8);
        assert!(c.memory_total_latency() > c.l2_total_latency());
        assert!(c.l2_total_latency() > c.upgrade_latency());
    }

    #[test]
    fn default_is_8_cores_snoopy() {
        let c = MemConfig::default();
        assert_eq!(c.num_cores, 8);
        assert_eq!(c.mode, CoherenceMode::Snoopy);
    }
}
