use std::collections::{HashMap, VecDeque};

use crate::{
    cache::SetAssocCache, config::CoherenceMode, CoreId, LineAddr, MemConfig, MemStats, MesiState,
};

/// Identifier of an in-flight memory request, matched against
/// [`Completion::req`].
pub type ReqId = u64;

/// The kind of memory access a core issues.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load: needs a readable copy (GetS on miss).
    Load,
    /// A store: needs an exclusive copy (GetM/Upgrade on miss).
    Store,
    /// An atomic read-modify-write: like a store, but flagged so snoop
    /// events report it as a write.
    Rmw,
}

impl AccessKind {
    fn needs_write(self) -> bool {
        matches!(self, AccessKind::Store | AccessKind::Rmw)
    }
}

/// Result of [`MemorySystem::access`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Response {
    /// The access hit in the L1. **It performs now** (in the current
    /// cycle): the core must sample/update the functional memory image and
    /// notify the recorder immediately. The loaded value becomes available
    /// to dependent instructions after `latency` cycles.
    Hit {
        /// L1 hit latency in cycles.
        latency: u64,
    },
    /// The access missed; a [`Completion`] with this id will be delivered
    /// by a future [`MemorySystem::tick`]. The access performs at delivery.
    Pending {
        /// Request id to match against [`Completion::req`].
        req: ReqId,
    },
    /// The request could not be accepted (MSHRs exhausted); retry next
    /// cycle.
    Retry,
}

/// Notification that a pending request has completed. The access performs at
/// the cycle this is delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The requesting core.
    pub core: CoreId,
    /// The request id returned by [`MemorySystem::access`].
    pub req: ReqId,
    /// The line the request was for.
    pub line: LineAddr,
}

/// Which cores observe a coherence transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnoopScope {
    /// Snoopy mode: every core except the requester observes it.
    AllExcept(CoreId),
    /// Directory mode: only the listed cores observe it.
    Cores(Vec<CoreId>),
}

impl SnoopScope {
    /// Whether `core` observes a snoop with this scope.
    #[must_use]
    pub fn observes(&self, core: CoreId) -> bool {
        match self {
            SnoopScope::AllExcept(c) => *c != core,
            SnoopScope::Cores(cs) => cs.contains(&core),
        }
    }
}

/// A coherence transaction observed by other cores.
///
/// The recorder checks these against its read/write signatures (interval
/// termination) and Snoop Table (RelaxReplay_Opt reorder detection).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnoopEvent {
    /// The core whose transaction this is.
    pub from: CoreId,
    /// The line address of the transaction.
    pub line: LineAddr,
    /// `true` for GetM/Upgrade (a remote write), `false` for GetS (a
    /// remote read).
    pub is_write: bool,
    /// Which cores observe the event.
    pub scope: SnoopScope,
}

impl SnoopEvent {
    /// The transaction's coherence verb, for human-readable event labels
    /// (`"GetM"` for writes, `"GetS"` for reads).
    #[must_use]
    pub fn kind_str(&self) -> &'static str {
        if self.is_write {
            "GetM"
        } else {
            "GetS"
        }
    }
}

/// Everything the memory system produced in one cycle.
#[derive(Clone, Debug, Default)]
pub struct MemTickOutput {
    /// Requests that completed (and perform) this cycle.
    pub completions: Vec<Completion>,
    /// Coherence transactions delivered to observers this cycle.
    pub snoops: Vec<SnoopEvent>,
    /// Dirty L1 lines evicted this cycle, as `(evicting core, line)`.
    /// Used by RelaxReplay_Opt in directory mode (paper §4.3).
    pub dirty_evictions: Vec<(CoreId, LineAddr)>,
}

impl MemTickOutput {
    /// True when nothing happened this cycle.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty() && self.snoops.is_empty() && self.dirty_evictions.is_empty()
    }
}

#[derive(Clone, Debug)]
struct Pending {
    core: CoreId,
    kind: AccessKind,
    line: LineAddr,
    reqs: Vec<ReqId>,
    enqueued: u64,
}

#[derive(Clone, Debug)]
struct Inflight {
    core: CoreId,
    line: LineAddr,
    write: bool,
    complete_at: u64,
    reqs: Vec<ReqId>,
    install: MesiState,
}

#[derive(Clone, Debug)]
struct ScheduledSnoop {
    at: u64,
    ev: SnoopEvent,
}

/// The coherent memory system: per-core MESI L1s, a shared L2, and a
/// ring-based bus that serializes transactions and broadcasts snoops.
///
/// # Timing model and correctness invariants
///
/// * At most one *real* bus transaction is granted per cycle (round-robin
///   over queued requests); any number of *quick grants* (requests whose
///   permission already arrived by grant time) may resolve per cycle.
/// * A granted transaction marks its line **busy** until completion; later
///   requests to the line wait. This serializes same-line transactions,
///   which is how the model provides write atomicity.
/// * Snoops are delivered at `grant + snoop_delay` and the transaction
///   completes no earlier than `snoop_delay + l1_hit_latency + 1` cycles
///   after the grant, so every stale copy is invalidated strictly before
///   the requester's access performs.
/// * Within [`MemorySystem::tick`], snoops are processed before
///   completions, and grants last; cores must call
///   [`MemorySystem::access`] after `tick`. Together with perform-at-hit
///   semantics (see [`Response::Hit`]) this guarantees that any two
///   conflicting performs on different cores are separated by a snoop that
///   the earlier core observes *after* its perform — exactly the property
///   interval-based recording needs.
pub struct MemorySystem {
    cfg: MemConfig,
    l1s: Vec<SetAssocCache<MesiState>>,
    l2: SetAssocCache<()>,
    pending: VecDeque<Pending>,
    inflight: Vec<Inflight>,
    line_busy: HashMap<LineAddr, u64>,
    snoops: Vec<ScheduledSnoop>,
    next_req: ReqId,
    /// Directory mode: the sharer list the directory *believes* (clean
    /// evictions are silent, so stale sharers remain and keep receiving
    /// invalidations — only dirty evictions/writebacks remove a core).
    dir_sharers: HashMap<LineAddr, Vec<CoreId>>,
    stats: MemStats,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("cores", &self.cfg.num_cores)
            .field("pending", &self.pending.len())
            .field("inflight", &self.inflight.len())
            .finish_non_exhaustive()
    }
}

impl MemorySystem {
    /// Creates a memory system for `cfg.num_cores` cores.
    #[must_use]
    pub fn new(cfg: MemConfig) -> Self {
        let l1_sets = cfg.l1_sets();
        let l2_sets = cfg.l2_sets().next_power_of_two();
        MemorySystem {
            l1s: (0..cfg.num_cores)
                .map(|_| SetAssocCache::new(l1_sets, cfg.l1_assoc))
                .collect(),
            l2: SetAssocCache::new(l2_sets, cfg.l2_assoc),
            pending: VecDeque::new(),
            inflight: Vec::new(),
            line_busy: HashMap::new(),
            snoops: Vec::new(),
            next_req: 0,
            dir_sharers: HashMap::new(),
            stats: MemStats::default(),
            cfg,
        }
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The MESI state of `line` in `core`'s L1 (Invalid if absent).
    /// Exposed for tests and invariant checks.
    #[must_use]
    pub fn l1_state(&self, core: CoreId, line: LineAddr) -> MesiState {
        self.l1s[core.index()]
            .peek(line)
            .copied()
            .unwrap_or(MesiState::Invalid)
    }

    /// Iterates over all resident lines of `core`'s L1.
    pub fn l1_lines(&self, core: CoreId) -> impl Iterator<Item = (LineAddr, MesiState)> + '_ {
        self.l1s[core.index()].iter().map(|(l, s)| (l, *s))
    }

    /// Number of outstanding (pending + in-flight) transactions for `core`.
    #[must_use]
    pub fn outstanding(&self, core: CoreId) -> usize {
        self.pending.iter().filter(|p| p.core == core).count()
            + self.inflight.iter().filter(|t| t.core == core).count()
    }

    /// True when no request is queued or in flight.
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.pending.is_empty() && self.inflight.is_empty()
    }

    fn snoop_delay(&self) -> u64 {
        (self.cfg.ring_traversal() / 2).max(self.cfg.l1_hit_latency + 1)
    }

    fn min_txn_latency(&self) -> u64 {
        self.snoop_delay() + self.cfg.l1_hit_latency + 1
    }

    /// Issues an access for `core` to `line`.
    ///
    /// Must be called *after* this cycle's [`MemorySystem::tick`]. On
    /// [`Response::Hit`] the access performs immediately (see the type's
    /// docs); otherwise a [`Completion`] will be delivered later.
    pub fn access(
        &mut self,
        cycle: u64,
        core: CoreId,
        kind: AccessKind,
        line: LineAddr,
    ) -> Response {
        let l1 = &mut self.l1s[core.index()];
        if let Some(state) = l1.get_mut(line) {
            let hit = if kind.needs_write() {
                if state.writable() {
                    *state = MesiState::Modified;
                    true
                } else {
                    false
                }
            } else {
                state.readable()
            };
            if hit {
                self.stats.l1_hits += 1;
                return Response::Hit {
                    latency: self.cfg.l1_hit_latency,
                };
            }
        }
        // Miss path. Try to merge into an existing transaction or request.
        self.stats.l1_misses += 1;
        let req = self.next_req;
        if let Some(t) = self
            .inflight
            .iter_mut()
            .find(|t| t.core == core && t.line == line)
        {
            if t.write || !kind.needs_write() {
                t.reqs.push(req);
                self.next_req += 1;
                return Response::Pending { req };
            }
            // Read transaction in flight but we need write permission: fall
            // through to queue a separate request (deferred by line-busy).
        }
        if let Some(p) = self
            .pending
            .iter_mut()
            .find(|p| p.core == core && p.line == line)
        {
            if kind.needs_write() && !p.kind.needs_write() {
                p.kind = AccessKind::Store; // upgrade the queued request
            }
            p.reqs.push(req);
            self.next_req += 1;
            return Response::Pending { req };
        }
        if self.outstanding(core) >= self.cfg.l1_mshrs {
            self.stats.mshr_retries += 1;
            return Response::Retry;
        }
        self.next_req += 1;
        self.pending.push_back(Pending {
            core,
            kind,
            line,
            reqs: vec![req],
            enqueued: cycle,
        });
        Response::Pending { req }
    }

    /// Advances the memory system one cycle.
    ///
    /// Processing order (load-bearing for correctness, see the type docs):
    /// due snoops first, then due completions, then new grants.
    pub fn tick(&mut self, cycle: u64) -> MemTickOutput {
        let mut out = MemTickOutput::default();
        self.deliver_snoops(cycle, &mut out);
        self.deliver_completions(cycle, &mut out);
        self.grant(cycle, &mut out);
        out
    }

    fn deliver_snoops(&mut self, cycle: u64, out: &mut MemTickOutput) {
        let mut due = Vec::new();
        self.snoops.retain(|s| {
            if s.at == cycle {
                due.push(s.ev.clone());
                false
            } else {
                true
            }
        });
        for ev in due {
            // Update every observer's L1 state.
            for idx in 0..self.cfg.num_cores {
                let core = CoreId::new(idx as u8);
                if core == ev.from {
                    continue;
                }
                let l1 = &mut self.l1s[idx];
                if let Some(state) = l1.peek(ev.line).copied() {
                    if ev.is_write {
                        l1.remove(ev.line);
                    } else {
                        let new = state.after_remote_read();
                        if let Some(s) = l1.get_mut(ev.line) {
                            *s = new;
                        }
                    }
                }
                if ev.scope.observes(core) {
                    self.stats.snoops_delivered += 1;
                }
            }
            out.snoops.push(ev);
        }
    }

    fn deliver_completions(&mut self, cycle: u64, out: &mut MemTickOutput) {
        let mut done = Vec::new();
        self.inflight.retain(|t| {
            if t.complete_at == cycle {
                done.push(t.clone());
                false
            } else {
                true
            }
        });
        for t in done {
            self.line_busy.remove(&t.line);
            self.install(t.core, t.line, t.install, out);
            for req in &t.reqs {
                out.completions.push(Completion {
                    core: t.core,
                    req: *req,
                    line: t.line,
                });
            }
        }
    }

    fn install(&mut self, core: CoreId, line: LineAddr, state: MesiState, out: &mut MemTickOutput) {
        if let Some((victim_line, victim_state)) = self.l1s[core.index()].insert(line, state) {
            if victim_state.dirty() {
                self.stats.dirty_evictions += 1;
                out.dirty_evictions.push((core, victim_line));
                // The write-back installs the line in the L2 (timing of the
                // PutM itself is not modeled; see DESIGN.md). The directory
                // learns about the write-back and drops the owner.
                self.l2.insert(victim_line, ());
                if self.cfg.mode == CoherenceMode::Directory {
                    if let Some(sharers) = self.dir_sharers.get_mut(&victim_line) {
                        sharers.retain(|&c| c != core);
                    }
                }
            }
            // Clean evictions are silent: the directory keeps the stale
            // sharer.
        }
    }

    fn grant(&mut self, cycle: u64, out: &mut MemTickOutput) {
        // Resolve any number of quick grants (no bus occupancy), and at most
        // one real transaction per cycle.
        let mut granted_real = false;
        let mut i = 0;
        while i < self.pending.len() {
            let p = &self.pending[i];
            if self.line_busy.contains_key(&p.line) {
                i += 1;
                continue;
            }
            let state = self.l1_state(p.core, p.line);
            let quick = if p.kind.needs_write() {
                state.writable()
            } else {
                state.readable()
            };
            if quick {
                let p = self.pending.remove(i).expect("index in range");
                self.stats.quick_grants += 1;
                self.stats.queue_wait_cycles += cycle - p.enqueued;
                if p.kind.needs_write() {
                    if let Some(s) = self.l1s[p.core.index()].get_mut(p.line) {
                        *s = MesiState::Modified;
                    }
                }
                // Performs now, at the grant cycle (see type docs).
                for req in &p.reqs {
                    out.completions.push(Completion {
                        core: p.core,
                        req: *req,
                        line: p.line,
                    });
                }
                continue; // same index now holds the next element
            }
            if granted_real {
                i += 1;
                continue;
            }
            // A real transaction.
            let p = self.pending.remove(i).expect("index in range");
            granted_real = true;
            self.stats.queue_wait_cycles += cycle - p.enqueued;
            self.launch(cycle, p, state, out);
            // Keep scanning: later requests may still quick-grant.
        }
    }

    fn launch(&mut self, cycle: u64, p: Pending, state: MesiState, _out: &mut MemTickOutput) {
        let write = p.kind.needs_write();
        let upgrade = write && state == MesiState::Shared;
        // Who observes the transaction? In directory mode, the cores the
        // *directory* lists as sharers — a superset of the actual holders,
        // because clean evictions are silent (stale sharers still receive
        // invalidations; this over-approximation is what keeps interval
        // ordering and the Snoop Table sound without extra hardware).
        let scope = match self.cfg.mode {
            CoherenceMode::Snoopy => SnoopScope::AllExcept(p.core),
            CoherenceMode::Directory => {
                let sharers = self.dir_sharers.entry(p.line).or_default();
                let scope =
                    SnoopScope::Cores(sharers.iter().copied().filter(|&c| c != p.core).collect());
                // Directory update: a write leaves only the requester; a
                // read adds it.
                if write {
                    sharers.clear();
                }
                if !sharers.contains(&p.core) {
                    sharers.push(p.core);
                }
                scope
            }
        };
        // Data source and raw latency.
        let raw_latency = if upgrade {
            self.stats.upgrades += 1;
            self.cfg.upgrade_latency()
        } else {
            let other_has_m = (0..self.cfg.num_cores)
                .filter(|&i| i != p.core.index())
                .any(|i| self.l1s[i].peek(p.line) == Some(&MesiState::Modified));
            if write {
                self.stats.getm += 1;
            } else {
                self.stats.gets += 1;
            }
            if other_has_m {
                self.stats.src_c2c += 1;
                // The dirty data also reaches the L2 on the way.
                self.l2.insert(p.line, ());
                self.cfg.c2c_total_latency()
            } else if self.l2.get(p.line).is_some() {
                self.stats.src_l2 += 1;
                self.cfg.l2_total_latency()
            } else {
                self.stats.src_memory += 1;
                self.l2.insert(p.line, ());
                self.cfg.memory_total_latency()
            }
        };
        let latency = raw_latency.max(self.min_txn_latency());
        // Install state at completion.
        let install = if write {
            MesiState::Modified
        } else {
            let any_other = (0..self.cfg.num_cores)
                .filter(|&i| i != p.core.index())
                .any(|i| self.l1s[i].contains(p.line));
            if any_other {
                MesiState::Shared
            } else {
                MesiState::Exclusive
            }
        };
        self.snoops.push(ScheduledSnoop {
            at: cycle + self.snoop_delay(),
            ev: SnoopEvent {
                from: p.core,
                line: p.line,
                is_write: write,
                scope,
            },
        });
        self.line_busy.insert(p.line, cycle + latency);
        self.inflight.push(Inflight {
            core: p.core,
            line: p.line,
            write,
            complete_at: cycle + latency,
            reqs: p.reqs,
            install,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(cores: usize) -> MemorySystem {
        MemorySystem::new(MemConfig::splash_default(cores))
    }

    fn core(i: u8) -> CoreId {
        CoreId::new(i)
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    /// Runs ticks until the request with `req` completes, returning the
    /// completion cycle and all outputs seen.
    fn run_until_complete(
        m: &mut MemorySystem,
        start: u64,
        req: ReqId,
    ) -> (u64, Vec<MemTickOutput>) {
        let mut outs = Vec::new();
        for cycle in start..start + 10_000 {
            let out = m.tick(cycle);
            let done = out.completions.iter().any(|c| c.req == req);
            outs.push(out);
            if done {
                return (cycle, outs);
            }
        }
        panic!("request {req} never completed");
    }

    #[test]
    fn cold_load_misses_to_memory_then_hits() {
        let mut m = mem(2);
        let r = match m.access(0, core(0), AccessKind::Load, line(1)) {
            Response::Pending { req } => req,
            other => panic!("expected miss, got {other:?}"),
        };
        let (done_at, _) = run_until_complete(&mut m, 1, r);
        assert!(done_at >= m.config().memory_total_latency());
        assert_eq!(m.l1_state(core(0), line(1)), MesiState::Exclusive);
        // Second access hits.
        match m.access(done_at, core(0), AccessKind::Load, line(1)) {
            Response::Hit { latency } => assert_eq!(latency, 2),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(m.stats().src_memory, 1);
    }

    #[test]
    fn store_hit_on_exclusive_silently_upgrades() {
        let mut m = mem(2);
        let r = match m.access(0, core(0), AccessKind::Load, line(1)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (t, _) = run_until_complete(&mut m, 1, r);
        assert!(matches!(
            m.access(t, core(0), AccessKind::Store, line(1)),
            Response::Hit { .. }
        ));
        assert_eq!(m.l1_state(core(0), line(1)), MesiState::Modified);
        assert_eq!(m.stats().transactions(), 1, "no extra bus transaction");
    }

    #[test]
    fn second_sharer_installs_shared_and_l2_services() {
        let mut m = mem(2);
        let r0 = match m.access(0, core(0), AccessKind::Load, line(1)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (t, _) = run_until_complete(&mut m, 1, r0);
        let r1 = match m.access(t, core(1), AccessKind::Load, line(1)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (t2, _) = run_until_complete(&mut m, t + 1, r1);
        assert_eq!(m.l1_state(core(1), line(1)), MesiState::Shared);
        // Core 0 was downgraded by the read snoop.
        assert_eq!(m.l1_state(core(0), line(1)), MesiState::Shared);
        // Served by L2 (faster than memory).
        assert!(t2 - t <= m.config().l2_total_latency() + 2);
        assert_eq!(m.stats().src_l2, 1);
    }

    #[test]
    fn remote_write_invalidates_sharers_with_snoop_before_completion() {
        let mut m = mem(4);
        // Core 0 obtains the line.
        let r0 = match m.access(0, core(0), AccessKind::Load, line(9)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (t, _) = run_until_complete(&mut m, 1, r0);
        // Core 1 writes it.
        let r1 = match m.access(t, core(1), AccessKind::Store, line(9)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (t2, outs) = run_until_complete(&mut m, t + 1, r1);
        // The snoop to core 0 must have been delivered strictly before the
        // completion cycle.
        let snoop_cycle = outs
            .iter()
            .enumerate()
            .find(|(_, o)| o.snoops.iter().any(|s| s.line == line(9) && s.is_write))
            .map(|(i, _)| t + 1 + i as u64)
            .expect("snoop delivered");
        assert!(snoop_cycle < t2, "snoop {snoop_cycle} !< completion {t2}");
        assert_eq!(m.l1_state(core(0), line(9)), MesiState::Invalid);
        assert_eq!(m.l1_state(core(1), line(9)), MesiState::Modified);
    }

    #[test]
    fn dirty_line_is_serviced_cache_to_cache() {
        let mut m = mem(2);
        let r0 = match m.access(0, core(0), AccessKind::Store, line(3)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (t, _) = run_until_complete(&mut m, 1, r0);
        assert_eq!(m.l1_state(core(0), line(3)), MesiState::Modified);
        let r1 = match m.access(t, core(1), AccessKind::Load, line(3)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        run_until_complete(&mut m, t + 1, r1);
        assert_eq!(m.stats().src_c2c, 1);
        assert_eq!(m.l1_state(core(0), line(3)), MesiState::Shared);
        assert_eq!(m.l1_state(core(1), line(3)), MesiState::Shared);
    }

    #[test]
    fn same_line_transactions_serialize() {
        let mut m = mem(2);
        let r0 = match m.access(0, core(0), AccessKind::Store, line(5)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let r1 = match m.access(0, core(1), AccessKind::Store, line(5)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (t0, _) = run_until_complete(&mut m, 1, r0);
        let (t1, _) = run_until_complete(&mut m, t0 + 1, r1);
        assert!(t1 > t0, "line-busy must serialize same-line transactions");
        // The second write invalidated the first writer.
        assert_eq!(m.l1_state(core(0), line(5)), MesiState::Invalid);
        assert_eq!(m.l1_state(core(1), line(5)), MesiState::Modified);
    }

    #[test]
    fn merge_same_core_loads_into_one_transaction() {
        let mut m = mem(2);
        let r0 = match m.access(0, core(0), AccessKind::Load, line(7)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let r1 = match m.access(0, core(0), AccessKind::Load, line(7)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        assert_ne!(r0, r1);
        let (t, outs) = run_until_complete(&mut m, 1, r1);
        // Both complete on the same cycle via one transaction.
        let last = outs.last().expect("ran at least one tick");
        assert!(last.completions.iter().any(|c| c.req == r0));
        assert_eq!(m.stats().transactions(), 1);
        let _ = t;
    }

    #[test]
    fn store_after_load_to_same_line_upgrades() {
        let mut m = mem(2);
        let r0 = match m.access(0, core(0), AccessKind::Load, line(2)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (t, _) = run_until_complete(&mut m, 1, r0);
        // Make core 1 share the line so core 0 ends up in S.
        let r1 = match m.access(t, core(1), AccessKind::Load, line(2)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (t2, _) = run_until_complete(&mut m, t + 1, r1);
        assert_eq!(m.l1_state(core(0), line(2)), MesiState::Shared);
        let r2 = match m.access(t2, core(0), AccessKind::Store, line(2)) {
            Response::Pending { req } => req,
            other => panic!("expected upgrade miss, got {other:?}"),
        };
        run_until_complete(&mut m, t2 + 1, r2);
        assert_eq!(m.stats().upgrades, 1);
        assert_eq!(m.l1_state(core(0), line(2)), MesiState::Modified);
        assert_eq!(m.l1_state(core(1), line(2)), MesiState::Invalid);
    }

    #[test]
    fn mshr_exhaustion_returns_retry() {
        let mut cfg = MemConfig::splash_default(2);
        cfg.l1_mshrs = 2;
        let mut m = MemorySystem::new(cfg);
        assert!(matches!(
            m.access(0, core(0), AccessKind::Load, line(10)),
            Response::Pending { .. }
        ));
        assert!(matches!(
            m.access(0, core(0), AccessKind::Load, line(11)),
            Response::Pending { .. }
        ));
        assert!(matches!(
            m.access(0, core(0), AccessKind::Load, line(12)),
            Response::Retry
        ));
        assert_eq!(m.stats().mshr_retries, 1);
    }

    #[test]
    fn directory_mode_scopes_snoops_to_sharers() {
        let mut cfg = MemConfig::splash_default(4);
        cfg.mode = CoherenceMode::Directory;
        let mut m = MemorySystem::new(cfg);
        // Core 0 gets the line; cores 2,3 never touch it.
        let r0 = match m.access(0, core(0), AccessKind::Load, line(1)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (t, _) = run_until_complete(&mut m, 1, r0);
        // Core 1 writes it: only core 0 should observe.
        let r1 = match m.access(t, core(1), AccessKind::Store, line(1)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (_, outs) = run_until_complete(&mut m, t + 1, r1);
        let snoop = outs
            .iter()
            .flat_map(|o| &o.snoops)
            .find(|s| s.is_write)
            .expect("write snoop");
        assert!(snoop.scope.observes(core(0)));
        assert!(!snoop.scope.observes(core(2)));
        assert!(!snoop.scope.observes(core(3)));
    }

    #[test]
    fn snoopy_mode_broadcasts_to_everyone_else() {
        let mut m = mem(4);
        let r0 = match m.access(0, core(0), AccessKind::Store, line(1)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        let (_, outs) = run_until_complete(&mut m, 1, r0);
        let snoop = outs
            .iter()
            .flat_map(|o| &o.snoops)
            .next()
            .expect("snoop broadcast");
        assert!(!snoop.scope.observes(core(0)));
        for i in 1..4 {
            assert!(snoop.scope.observes(core(i)));
        }
    }

    #[test]
    fn dirty_eviction_is_reported() {
        // 1-set-per-way tiny L1 to force evictions quickly.
        let mut cfg = MemConfig::splash_default(2);
        cfg.l1_bytes = 4 * 32; // 4 lines total, 4-way => a single set
        let mut m = MemorySystem::new(cfg);
        let mut evicted = Vec::new();
        let mut cycle = 0;
        for n in 0..5 {
            let r = match m.access(cycle, core(0), AccessKind::Store, line(n)) {
                Response::Pending { req } => req,
                Response::Hit { .. } => continue,
                Response::Retry => panic!("unexpected retry"),
            };
            let (t, outs) = run_until_complete(&mut m, cycle + 1, r);
            for o in outs {
                evicted.extend(o.dirty_evictions);
            }
            cycle = t + 1;
        }
        assert_eq!(evicted, vec![(core(0), line(0))]);
        assert_eq!(m.stats().dirty_evictions, 1);
    }

    #[test]
    fn quick_grant_when_permission_already_arrived() {
        let mut m = mem(2);
        // Two separate store requests to the same line from the same core:
        // the first misses; the second cannot merge into a *pending* write
        // it created itself (it does merge) — instead exercise: load txn in
        // flight, then store queued separately.
        let r0 = match m.access(0, core(0), AccessKind::Load, line(4)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        // Tick once so the load transaction is *in flight* (a store cannot
        // merge into a read transaction and must queue separately).
        m.tick(1);
        let r1 = match m.access(1, core(0), AccessKind::Store, line(4)) {
            Response::Pending { req } => req,
            other => panic!("{other:?}"),
        };
        // The line arrives Exclusive (no other sharer); the queued store
        // quick-grants in the same cycle the line installs, with no
        // Upgrade transaction.
        let mut done = [false, false];
        for cycle in 2..10_000 {
            let out = m.tick(cycle);
            for c in &out.completions {
                done[c.req as usize] = true;
            }
            if done == [true, true] {
                break;
            }
        }
        assert_eq!(done, [true, true], "both requests must complete");
        let _ = (r0, r1);
        assert_eq!(m.stats().quick_grants, 1);
        assert_eq!(m.stats().upgrades, 0);
        assert_eq!(m.l1_state(core(0), line(4)), MesiState::Modified);
    }
}
