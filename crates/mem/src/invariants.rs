//! Coherence-invariant checkers used by tests and the simulator's debug
//! mode.
//!
//! The central one is **SWMR** (single-writer / multiple-reader): at any
//! instant, a line is either writable in exactly one L1 (Modified, with no
//! other readable copy) or readable in any number of L1s. Write atomicity —
//! the property RelaxReplay requires of the coherence substrate (paper
//! §3.2) — follows from SWMR plus the per-line transaction serialization
//! the bus enforces.

use std::collections::HashMap;

use crate::{CoreId, LineAddr, MemorySystem, MesiState};

/// A violation found by [`check_swmr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwmrViolation {
    /// The offending line.
    pub line: LineAddr,
    /// All `(core, state)` holders of the line.
    pub holders: Vec<(CoreId, MesiState)>,
}

impl std::fmt::Display for SwmrViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWMR violated for {}: {:?}", self.line, self.holders)
    }
}

/// Checks the single-writer/multiple-reader invariant across all L1s.
///
/// A line in `Modified` or `Exclusive` state in one cache must not be
/// present in any other cache. Lines whose transaction is still in flight
/// are transiently exempt (the requester has not yet installed its copy, so
/// they cannot violate the check anyway).
///
/// Returns every violating line.
#[must_use]
pub fn check_swmr(mem: &MemorySystem) -> Vec<SwmrViolation> {
    let cores = mem.config().num_cores;
    let mut holders: HashMap<LineAddr, Vec<(CoreId, MesiState)>> = HashMap::new();
    for i in 0..cores {
        let core = CoreId::new(i as u8);
        for (line, state) in mem.l1_lines(core) {
            holders.entry(line).or_default().push((core, state));
        }
    }
    let mut violations = Vec::new();
    for (line, holders) in holders {
        let exclusive_holders = holders
            .iter()
            .filter(|(_, s)| matches!(s, MesiState::Modified | MesiState::Exclusive))
            .count();
        if exclusive_holders > 0 && holders.len() > 1 {
            violations.push(SwmrViolation { line, holders });
        }
    }
    violations.sort_by_key(|v| v.line);
    violations
}

/// Panics if the SWMR invariant is violated, printing every offender.
///
/// # Panics
///
/// Panics on the first violation, with a message listing all of them.
pub fn assert_swmr(mem: &MemorySystem) {
    let violations = check_swmr(mem);
    assert!(
        violations.is_empty(),
        "coherence invariant violations: {}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, MemConfig, Response};

    #[test]
    fn swmr_holds_under_random_traffic() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut mem = MemorySystem::new(MemConfig::splash_default(4));
        let mut cycle = 0u64;
        for _ in 0..3000 {
            cycle += 1;
            mem.tick(cycle);
            if rng.gen_bool(0.5) {
                let core = CoreId::new(rng.gen_range(0..4));
                let kind = match rng.gen_range(0..3) {
                    0 => AccessKind::Load,
                    1 => AccessKind::Store,
                    _ => AccessKind::Rmw,
                };
                let line = LineAddr::from_line_number(rng.gen_range(0..16));
                let _ = mem.access(cycle, core, kind, line);
            }
            assert_swmr(&mem);
        }
        // Drain.
        while !mem.quiescent() {
            cycle += 1;
            mem.tick(cycle);
            assert_swmr(&mem);
        }
        let _: Response; // silence unused-import lints in some configs
    }
}
