/// Counters describing memory-system activity.
///
/// Used by the experiment harness for the paper's bandwidth and scalability
/// discussions (§5.2, §5.5).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 hits (loads, stores and RMWs that needed no bus transaction).
    pub l1_hits: u64,
    /// Accesses that missed in the L1 and required a bus transaction.
    pub l1_misses: u64,
    /// Requests rejected because the core's MSHRs were exhausted.
    pub mshr_retries: u64,
    /// GetS (read-miss) transactions granted.
    pub gets: u64,
    /// GetM (write-miss) transactions granted.
    pub getm: u64,
    /// Upgrade (S→M) transactions granted.
    pub upgrades: u64,
    /// Requests resolved without a bus transaction at grant time (the
    /// needed permission had already arrived).
    pub quick_grants: u64,
    /// Misses serviced by another core's L1 (cache-to-cache).
    pub src_c2c: u64,
    /// Misses serviced by the shared L2.
    pub src_l2: u64,
    /// Misses serviced by main memory.
    pub src_memory: u64,
    /// Snoop events delivered to cores (one per observing core).
    pub snoops_delivered: u64,
    /// Dirty lines evicted from L1s.
    pub dirty_evictions: u64,
    /// Total cycles requests spent waiting for a bus grant.
    pub queue_wait_cycles: u64,
}

impl MemStats {
    /// Total bus transactions granted.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.gets + self.getm + self.upgrades
    }

    /// L1 hit rate over all accesses, in `[0, 1]`.
    #[must_use]
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            return 0.0;
        }
        self.l1_hits as f64 / total as f64
    }

    /// Every counter as a `(name, value)` pair, for the metrics registry.
    ///
    /// Names are stable identifiers (they end up in JSONL sidecars that
    /// downstream tooling diffs across runs); add to this list, never
    /// rename.
    #[must_use]
    pub fn counter_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("l1_hits", self.l1_hits),
            ("l1_misses", self.l1_misses),
            ("mshr_retries", self.mshr_retries),
            ("gets", self.gets),
            ("getm", self.getm),
            ("upgrades", self.upgrades),
            ("quick_grants", self.quick_grants),
            ("src_c2c", self.src_c2c),
            ("src_l2", self.src_l2),
            ("src_memory", self.src_memory),
            ("snoops_delivered", self.snoops_delivered),
            ("dirty_evictions", self.dirty_evictions),
            ("queue_wait_cycles", self.queue_wait_cycles),
            ("coherence_transactions", self.transactions()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(MemStats::default().l1_hit_rate(), 0.0);
    }

    #[test]
    fn transactions_sum() {
        let s = MemStats {
            gets: 1,
            getm: 2,
            upgrades: 3,
            ..MemStats::default()
        };
        assert_eq!(s.transactions(), 6);
    }
}
