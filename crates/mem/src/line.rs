use core::fmt;

/// Bytes per cache line (Table 1: 32 B lines).
pub const LINE_BYTES: u64 = 32;

/// Identifier of a core/processor in the simulated machine.
///
/// ```
/// use rr_mem::CoreId;
/// let c = CoreId::new(3);
/// assert_eq!(c.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u8);

impl CoreId {
    /// Creates a core identifier.
    #[must_use]
    pub fn new(index: u8) -> Self {
        CoreId(index)
    }

    /// Returns the zero-based core index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A cache-line address: a byte address with the line offset stripped.
///
/// Conflict detection throughout RelaxReplay (signatures, Snoop Table,
/// interval termination) happens at line granularity, exactly as in the
/// paper ("conflicting access to the same (line) address", §3.2).
///
/// ```
/// use rr_mem::LineAddr;
/// let a = LineAddr::containing(0x105);
/// let b = LineAddr::containing(0x11f);
/// assert_eq!(a, b); // same 32-byte line
/// assert_eq!(a.base_addr(), 0x100);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Returns the line containing byte address `addr`.
    #[must_use]
    pub fn containing(addr: u64) -> Self {
        LineAddr(addr / LINE_BYTES)
    }

    /// Creates a line address directly from a line number.
    #[must_use]
    pub fn from_line_number(n: u64) -> Self {
        LineAddr(n)
    }

    /// Returns the line number (byte address divided by the line size).
    #[must_use]
    pub fn line_number(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte in the line.
    #[must_use]
    pub fn base_addr(self) -> u64 {
        self.0 * LINE_BYTES
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.base_addr())
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.base_addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rounding() {
        assert_eq!(LineAddr::containing(0), LineAddr::containing(31));
        assert_ne!(LineAddr::containing(31), LineAddr::containing(32));
        assert_eq!(LineAddr::containing(64).base_addr(), 64);
        assert_eq!(LineAddr::containing(65).base_addr(), 64);
    }

    #[test]
    fn line_number_round_trip() {
        let l = LineAddr::from_line_number(17);
        assert_eq!(l.line_number(), 17);
        assert_eq!(l.base_addr(), 17 * LINE_BYTES);
    }

    #[test]
    fn ids_display() {
        assert_eq!(CoreId::new(2).to_string(), "P2");
        assert_eq!(LineAddr::containing(32).to_string(), "L0x20");
    }
}
