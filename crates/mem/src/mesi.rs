use core::fmt;

/// MESI coherence states for an L1 cache line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Modified: this cache holds the only, dirty copy.
    Modified,
    /// Exclusive: this cache holds the only, clean copy.
    Exclusive,
    /// Shared: possibly other caches also hold clean copies.
    Shared,
    /// Invalid (not present).
    Invalid,
}

impl MesiState {
    /// Whether a load can hit on a line in this state.
    #[must_use]
    pub fn readable(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }

    /// Whether a store can hit silently (no bus transaction) on a line in
    /// this state. `Exclusive` upgrades to `Modified` without traffic.
    #[must_use]
    pub fn writable(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// Whether the line must be written back when evicted or invalidated.
    #[must_use]
    pub fn dirty(self) -> bool {
        matches!(self, MesiState::Modified)
    }

    /// The state after observing a remote **read** (GetS) of this line.
    #[must_use]
    pub fn after_remote_read(self) -> MesiState {
        match self {
            MesiState::Modified | MesiState::Exclusive | MesiState::Shared => MesiState::Shared,
            MesiState::Invalid => MesiState::Invalid,
        }
    }

    /// The state after observing a remote **write** (GetM/Upgrade) of this
    /// line: always invalidated.
    #[must_use]
    pub fn after_remote_write(self) -> MesiState {
        MesiState::Invalid
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            MesiState::Modified => 'M',
            MesiState::Exclusive => 'E',
            MesiState::Shared => 'S',
            MesiState::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions() {
        assert!(MesiState::Modified.readable() && MesiState::Modified.writable());
        assert!(MesiState::Exclusive.readable() && MesiState::Exclusive.writable());
        assert!(MesiState::Shared.readable() && !MesiState::Shared.writable());
        assert!(!MesiState::Invalid.readable() && !MesiState::Invalid.writable());
        assert!(MesiState::Modified.dirty());
        assert!(!MesiState::Exclusive.dirty());
    }

    #[test]
    fn remote_transitions() {
        assert_eq!(MesiState::Modified.after_remote_read(), MesiState::Shared);
        assert_eq!(MesiState::Exclusive.after_remote_read(), MesiState::Shared);
        assert_eq!(MesiState::Shared.after_remote_read(), MesiState::Shared);
        assert_eq!(MesiState::Invalid.after_remote_read(), MesiState::Invalid);
        for s in [
            MesiState::Modified,
            MesiState::Exclusive,
            MesiState::Shared,
            MesiState::Invalid,
        ] {
            assert_eq!(s.after_remote_write(), MesiState::Invalid);
        }
    }

    #[test]
    fn display_single_letter() {
        assert_eq!(MesiState::Modified.to_string(), "M");
        assert_eq!(MesiState::Invalid.to_string(), "I");
    }
}
