//! Property tests of the coherence model under random traffic: the
//! invariants interval-based recording depends on must hold for arbitrary
//! access interleavings, in both snoopy and directory modes.
//!
//! * **SWMR** — no line is writable in one cache while present in another;
//! * **per-line serialization** — completions of same-line transactions
//!   never interleave (each grant waits for the previous completion);
//! * **snoop-before-completion** — a transaction's snoops are delivered
//!   strictly before its completion;
//! * **liveness** — every accepted request eventually completes.

use proptest::prelude::*;
use rr_mem::{
    invariants::assert_swmr, AccessKind, CoherenceMode, CoreId, LineAddr, MemConfig, MemorySystem,
    Response, SnoopScope,
};
use std::collections::HashMap;

#[derive(Clone, Debug)]
struct Access {
    core: u8,
    kind: u8,
    line: u64,
    gap: u8,
}

fn access_strategy(cores: u8) -> impl Strategy<Value = Access> {
    (0..cores, 0u8..3, 0u64..12, 0u8..4).prop_map(|(core, kind, line, gap)| Access {
        core,
        kind,
        line,
        gap,
    })
}

fn kind_of(code: u8) -> AccessKind {
    match code {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        _ => AccessKind::Rmw,
    }
}

fn run_traffic(accesses: &[Access], cores: usize, mode: CoherenceMode) {
    let mut cfg = MemConfig::splash_default(cores);
    cfg.mode = mode;
    let mut mem = MemorySystem::new(cfg);
    let mut cycle = 0u64;
    let mut next = 0usize;
    // req -> issue cycle.
    let mut outstanding: HashMap<u64, u64> = HashMap::new();
    // line -> cycle of the most recent snoop delivery.
    let mut last_snoop: HashMap<u64, u64> = HashMap::new();

    let max_cycles = 200_000;
    while next < accesses.len() || !outstanding.is_empty() {
        let out = mem.tick(cycle);
        for s in &out.snoops {
            last_snoop.insert(s.line.line_number(), cycle);
            // Scope sanity: the requester never observes itself.
            match &s.scope {
                SnoopScope::AllExcept(c) => assert_eq!(*c, s.from),
                SnoopScope::Cores(cs) => assert!(!cs.contains(&s.from)),
            }
        }
        for c in &out.completions {
            let line = c.line.line_number();
            outstanding.remove(&c.req);
            // Snoop-strictly-before-completion: if this line's transaction
            // broadcast snoops, they arrived at an earlier cycle. (Quick
            // grants broadcast nothing, so only check when one was seen.)
            if let Some(&s) = last_snoop.get(&line) {
                assert!(
                    s < cycle,
                    "snoop at {s} not strictly before completion at {cycle}"
                );
            }
        }
        assert_swmr(&mem);

        if next < accesses.len() {
            let a = &accesses[next];
            if cycle.is_multiple_of(u64::from(a.gap) + 1) {
                let core = CoreId::new(a.core);
                match mem.access(
                    cycle,
                    core,
                    kind_of(a.kind),
                    LineAddr::from_line_number(a.line),
                ) {
                    Response::Pending { req } => {
                        outstanding.insert(req, cycle);
                        next += 1;
                    }
                    Response::Hit { .. } => {
                        next += 1;
                    }
                    Response::Retry => {} // try again next cycle
                }
            }
        }
        cycle += 1;
        assert!(
            cycle < max_cycles,
            "liveness violated: traffic never drained"
        );
    }
    assert!(mem.quiescent());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn snoopy_invariants_hold(accesses in proptest::collection::vec(access_strategy(4), 1..120)) {
        run_traffic(&accesses, 4, CoherenceMode::Snoopy);
    }

    #[test]
    fn directory_invariants_hold(accesses in proptest::collection::vec(access_strategy(4), 1..120)) {
        run_traffic(&accesses, 4, CoherenceMode::Directory);
    }

    #[test]
    fn directory_scope_is_superset_of_holders(
        accesses in proptest::collection::vec(access_strategy(3), 1..80),
    ) {
        // Every core that actually holds the line must be in the snoop
        // scope (stale sharers may also be present — that is the point).
        let mut cfg = MemConfig::splash_default(3);
        cfg.mode = CoherenceMode::Directory;
        let mut mem = MemorySystem::new(cfg);
        let mut next = 0usize;
        let mut outstanding = 0usize;
        for cycle in 0..100_000u64 {
            let out = mem.tick(cycle);
            outstanding -= out.completions.len();
            for s in &out.snoops {
                for i in 0..3u8 {
                    let core = CoreId::new(i);
                    if core == s.from {
                        continue;
                    }
                    let holds = mem.l1_state(core, s.line) != rr_mem::MesiState::Invalid;
                    if holds {
                        prop_assert!(
                            s.scope.observes(core),
                            "holder {core} missing from snoop scope for {}",
                            s.line
                        );
                    }
                }
            }
            if next < accesses.len() {
                let a = &accesses[next];
                match mem.access(
                    cycle,
                    CoreId::new(a.core),
                    kind_of(a.kind),
                    LineAddr::from_line_number(a.line),
                ) {
                    Response::Pending { .. } => {
                        outstanding += 1;
                        next += 1;
                    }
                    Response::Hit { .. } => next += 1,
                    Response::Retry => {}
                }
            } else if outstanding == 0 {
                break;
            }
        }
        prop_assert!(next == accesses.len() && outstanding == 0, "traffic did not drain");
    }
}
