//! Targeted tests of the less-travelled memory-system paths: MSHR request
//! upgrading, L2 servicing after write-backs, ring-latency scaling, and
//! quick-grant conversions.

use rr_mem::{AccessKind, CoreId, LineAddr, MemConfig, MemorySystem, MesiState, Response};

fn core(i: u8) -> CoreId {
    CoreId::new(i)
}

fn line(n: u64) -> LineAddr {
    LineAddr::from_line_number(n)
}

fn pending(r: Response) -> u64 {
    match r {
        Response::Pending { req } => req,
        other => panic!("expected Pending, got {other:?}"),
    }
}

fn drain(mem: &mut MemorySystem, start: u64, reqs: &[u64]) -> u64 {
    let mut remaining: Vec<u64> = reqs.to_vec();
    for cycle in start..start + 10_000 {
        let out = mem.tick(cycle);
        for c in &out.completions {
            remaining.retain(|&r| r != c.req);
        }
        if remaining.is_empty() {
            return cycle;
        }
    }
    panic!("requests {remaining:?} never completed");
}

#[test]
fn pending_load_upgraded_by_store_becomes_one_write_transaction() {
    // A load miss queued but not yet granted; a store to the same line
    // arrives: the queued request is upgraded to a write and both complete
    // from a single GetM.
    let mut mem = MemorySystem::new(MemConfig::splash_default(2));
    let r0 = pending(mem.access(0, core(0), AccessKind::Load, line(5)));
    let r1 = pending(mem.access(0, core(0), AccessKind::Store, line(5)));
    drain(&mut mem, 1, &[r0, r1]);
    assert_eq!(mem.stats().transactions(), 1, "one merged transaction");
    assert_eq!(mem.stats().getm, 1, "the merged transaction is a write");
    assert_eq!(mem.l1_state(core(0), line(5)), MesiState::Modified);
}

#[test]
fn l2_services_lines_after_dirty_writeback() {
    // Core 0 dirties a line, then a conflicting install evicts it (tiny
    // L1); core 1's later miss must be serviced by the L2, not memory.
    let mut cfg = MemConfig::splash_default(2);
    cfg.l1_bytes = 4 * 32; // one 4-way set
    let mut mem = MemorySystem::new(cfg);
    let mut cycle = 1;
    let r = pending(mem.access(0, core(0), AccessKind::Store, line(0)));
    cycle = drain(&mut mem, cycle, &[r]) + 1;
    // Evict line 0 by filling the set.
    for n in 1..5 {
        let r = pending(mem.access(cycle, core(0), AccessKind::Load, line(n)));
        cycle = drain(&mut mem, cycle + 1, &[r]) + 1;
    }
    assert_eq!(mem.l1_state(core(0), line(0)), MesiState::Invalid);
    assert_eq!(mem.stats().dirty_evictions, 1);
    let mem_fetches_before = mem.stats().src_memory;
    let r = pending(mem.access(cycle, core(1), AccessKind::Load, line(0)));
    drain(&mut mem, cycle + 1, &[r]);
    assert_eq!(
        mem.stats().src_memory,
        mem_fetches_before,
        "the written-back line must come from the L2"
    );
    assert_eq!(mem.stats().src_l2, 1);
}

#[test]
fn ring_latency_scales_with_core_count() {
    // The same cold miss takes longer on a larger ring.
    let mut t = Vec::new();
    for cores in [2usize, 8, 16] {
        let mut mem = MemorySystem::new(MemConfig::splash_default(cores));
        let r = pending(mem.access(0, core(0), AccessKind::Load, line(1)));
        t.push(drain(&mut mem, 1, &[r]));
    }
    assert!(t[0] < t[1] && t[1] < t[2], "latencies must grow: {t:?}");
}

#[test]
fn rmw_acquires_exclusive_ownership() {
    let mut mem = MemorySystem::new(MemConfig::splash_default(2));
    // Both cores read the line first (shared).
    let r0 = pending(mem.access(0, core(0), AccessKind::Load, line(9)));
    let c = drain(&mut mem, 1, &[r0]);
    let r1 = pending(mem.access(c + 1, core(1), AccessKind::Load, line(9)));
    let c = drain(&mut mem, c + 2, &[r1]);
    assert_eq!(mem.l1_state(core(0), line(9)), MesiState::Shared);
    // Core 0's RMW upgrades and invalidates core 1.
    let r2 = pending(mem.access(c + 1, core(0), AccessKind::Rmw, line(9)));
    drain(&mut mem, c + 2, &[r2]);
    assert_eq!(mem.l1_state(core(0), line(9)), MesiState::Modified);
    assert_eq!(mem.l1_state(core(1), line(9)), MesiState::Invalid);
    assert_eq!(mem.stats().upgrades, 1);
}

#[test]
fn snoopy_snoops_count_observers() {
    // 4 cores: one GetM must deliver 3 observer notifications.
    let mut mem = MemorySystem::new(MemConfig::splash_default(4));
    let r = pending(mem.access(0, core(0), AccessKind::Store, line(3)));
    drain(&mut mem, 1, &[r]);
    assert_eq!(mem.stats().snoops_delivered, 3);
}

#[test]
fn queue_wait_accumulates_under_contention() {
    let mut mem = MemorySystem::new(MemConfig::splash_default(4));
    // Four cores hit the same line: the bus serializes them.
    let reqs: Vec<u64> = (0..4)
        .map(|i| pending(mem.access(0, core(i), AccessKind::Store, line(7))))
        .collect();
    drain(&mut mem, 1, &reqs);
    assert!(
        mem.stats().queue_wait_cycles > 3 * mem.config().memory_total_latency() / 2,
        "same-line contention must serialize: waited {} cycles",
        mem.stats().queue_wait_cycles
    );
}
