//! # rr-experiments — regenerating every table and figure of the paper
//!
//! One module per experiment, mirroring the paper's evaluation (§5):
//!
//! | item | function / binary | paper result reproduced |
//! |------|-------------------|-------------------------|
//! | Table 1 | [`figures::table1`] / `table1` | architectural parameters |
//! | Figure 1 | [`figures::fig01`] / `fig01_ooo_fraction` | fraction of memory accesses performed out of order |
//! | Figure 9 | [`figures::fig09`] / `fig09_reordered` | fraction of accesses logged as reordered |
//! | Figure 10 | [`figures::fig10`] / `fig10_inorder_blocks` | number of InorderBlock entries, Opt vs Base |
//! | Figure 11 | [`figures::fig11`] / `fig11_log_size` | log size in bits/kilo-instruction and MB/s |
//! | Figure 12 | [`figures::fig12`] / `fig12_traq` | TRAQ occupancy (average, histogram) and recording overhead |
//! | Figure 13 | [`figures::fig13`] / `fig13_replay` | sequential replay time vs parallel recording, user/OS split |
//! | Figure 14 | [`figures::fig14`] / `fig14_scalability` | reordered fraction and log rate at 4/8/16 cores |
//!
//! The `all_figures` binary runs every experiment off a single set of
//! recorded executions and writes CSVs next to the printed tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod report;
pub mod runner;

pub use runner::{
    handle_replay_from, metrics_jsonl, prof_entries, replay_suite_from, run_corpus_suite,
    run_suite, run_suite_timed, write_prof_artifacts, write_prof_pairs, write_trace_artifacts,
    write_trace_pairs, ExperimentConfig, ReplayFromSummary, SuiteRun, WorkloadRun,
};
