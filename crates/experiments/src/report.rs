//! Plain-text tables and CSV output for the figure harnesses.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table with a title, printed to stdout and
/// convertible to CSV.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Writes the table as CSV under `dir` (created if needed), named
    /// `<slug>.csv`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing.
    pub fn write_csv(&self, dir: &Path, slug: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        fs::write(dir.join(format!("{slug}.csv")), out)
    }
}

/// Writes a JSONL metrics sidecar under `dir` (created if needed), named
/// `<slug>.metrics.jsonl`. `content` is the pre-rendered JSONL (one line
/// per run; see `runner::metrics_jsonl`).
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing.
pub fn write_metrics_jsonl(dir: &Path, slug: &str, content: &str) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{slug}.metrics.jsonl")), content)
}

/// Formats a ratio as a percentage with three decimals.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.3}%", x * 100.0)
}

/// Formats a float with two decimals.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// The default output directory for CSVs (`results/` at the workspace
/// root, or `RR_RESULTS_DIR`).
#[must_use]
pub fn results_dir() -> std::path::PathBuf {
    std::env::var("RR_RESULTS_DIR")
        .map(Into::into)
        .unwrap_or_else(|_| "results".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("rr_report_test");
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.write_csv(&dir, "demo").expect("writes");
        let content = std::fs::read_to_string(dir.join("demo.csv")).expect("reads");
        assert_eq!(content, "a,b\n1,2\n");
    }
}
