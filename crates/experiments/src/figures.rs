//! One function per paper table/figure, producing printable tables from
//! the recorded runs.

// Variant indices deliberately index several parallel arrays.
#![allow(clippy::needless_range_loop)]

use rr_sim::MachineConfig;

use crate::report::{f2, pct, Table};
use crate::runner::WorkloadRun;

/// Variant indices in every run (see `runner::variant_specs`).
pub const BASE_4K: usize = 0;
/// Opt design, 4K maximum interval.
pub const OPT_4K: usize = 1;
/// Base design, unbounded intervals.
pub const BASE_INF: usize = 2;
/// Opt design, unbounded intervals.
pub const OPT_INF: usize = 3;

const VARIANT_NAMES: [&str; 4] = ["Base-4K", "Opt-4K", "Base-INF", "Opt-INF"];

/// Table 1: the architectural parameters of the simulated machine.
#[must_use]
pub fn table1(cfg: &MachineConfig) -> Table {
    let mut t = Table::new("Table 1: architectural parameters", &["parameter", "value"]);
    let mut kv = |k: &str, v: String| t.row(vec![k.to_string(), v]);
    kv("cores", format!("{}", cfg.num_cores));
    kv(
        "core",
        format!(
            "{}-way out-of-order @ {} GHz",
            cfg.cpu.issue_width, cfg.clock_ghz
        ),
    );
    kv("ROB", format!("{} entries", cfg.cpu.rob_entries));
    kv("Ld/St queue", format!("{} entries", cfg.cpu.lsq_entries));
    kv("Ld/St units", format!("{}", cfg.cpu.ldst_units));
    kv(
        "write buffer",
        format!("{} entries", cfg.cpu.write_buffer_entries),
    );
    kv(
        "L1",
        format!(
            "private, {} KB, {}-way, 32 B lines, {} MSHRs, {}-cycle",
            cfg.mem.l1_bytes / 1024,
            cfg.mem.l1_assoc,
            cfg.mem.l1_mshrs,
            cfg.mem.l1_hit_latency
        ),
    );
    kv(
        "L2",
        format!(
            "shared, {} KB/core, {}-way, {}-cycle",
            cfg.mem.l2_bytes_per_core / 1024,
            cfg.mem.l2_assoc,
            cfg.mem.l2_latency
        ),
    );
    kv("ring", format!("{:?}, 1-cycle hop", cfg.mem.mode));
    kv(
        "memory",
        format!("{}-cycle round-trip from L2", cfg.mem.memory_latency),
    );
    kv("TRAQ", "176 entries".to_string());
    kv(
        "signatures",
        "4 x 256-bit Bloom (H3) per read/write set".to_string(),
    );
    kv("Snoop Table", "2 arrays x 64 x 16-bit counters".to_string());
    t
}

/// Figure 1: fraction of memory-access instructions performed out of
/// program order, split into loads and stores.
#[must_use]
pub fn fig01(runs: &[WorkloadRun]) -> Table {
    let mut t = Table::new(
        "Figure 1: accesses performed out of program order",
        &["workload", "ooo loads", "ooo stores", "total"],
    );
    let (mut sl, mut ss, mut st) = (0.0, 0.0, 0.0);
    for r in runs {
        let mem: u64 = r.record.core_stats.iter().map(|s| s.mem_instrs()).sum();
        let ol: u64 = r.record.core_stats.iter().map(|s| s.ooo_loads).sum();
        let os: u64 = r.record.core_stats.iter().map(|s| s.ooo_stores).sum();
        let (fl, fs) = (ol as f64 / mem as f64, os as f64 / mem as f64);
        sl += fl;
        ss += fs;
        st += fl + fs;
        t.row(vec![r.name.into(), pct(fl), pct(fs), pct(fl + fs)]);
    }
    let n = runs.len() as f64;
    t.row(vec![
        "AVERAGE".into(),
        pct(sl / n),
        pct(ss / n),
        pct(st / n),
    ]);
    t
}

/// Figure 9: fraction of memory accesses logged as reordered, for every
/// design × interval-size combination.
#[must_use]
pub fn fig09(runs: &[WorkloadRun]) -> Table {
    let mut t = Table::new(
        "Figure 9: fraction of accesses logged as reordered",
        &["workload", "Base-4K", "Opt-4K", "Base-INF", "Opt-INF"],
    );
    let mut sums = [0.0; 4];
    for r in runs {
        let f: Vec<f64> = (0..4)
            .map(|v| r.record.variants[v].reordered_fraction())
            .collect();
        for (s, x) in sums.iter_mut().zip(&f) {
            *s += x;
        }
        t.row(vec![
            r.name.into(),
            pct(f[0]),
            pct(f[1]),
            pct(f[2]),
            pct(f[3]),
        ]);
    }
    let n = runs.len() as f64;
    t.row(vec![
        "AVERAGE".into(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
    ]);
    t
}

/// Figure 10: number of `InorderBlock` entries, normalized to
/// RelaxReplay_Base at the same interval size.
#[must_use]
pub fn fig10(runs: &[WorkloadRun]) -> Table {
    let mut t = Table::new(
        "Figure 10: InorderBlock entries, Opt normalized to Base",
        &[
            "workload",
            "Opt/Base (4K)",
            "Opt/Base (INF)",
            "Base-4K IBs",
            "Base-INF IBs",
        ],
    );
    let (mut s4, mut si) = (0.0, 0.0);
    for r in runs {
        let ib = |v: usize| r.record.variants[v].inorder_blocks() as f64;
        let r4 = ib(OPT_4K) / ib(BASE_4K).max(1.0);
        let ri = ib(OPT_INF) / ib(BASE_INF).max(1.0);
        s4 += r4;
        si += ri;
        t.row(vec![
            r.name.into(),
            f2(r4),
            f2(ri),
            format!("{}", r.record.variants[BASE_4K].inorder_blocks()),
            format!("{}", r.record.variants[BASE_INF].inorder_blocks()),
        ]);
    }
    let n = runs.len() as f64;
    t.row(vec![
        "AVERAGE".into(),
        f2(s4 / n),
        f2(si / n),
        String::new(),
        String::new(),
    ]);
    t
}

/// Figure 11: uncompressed log size in bits per kilo-instruction, plus the
/// implied log bandwidth in MB/s at the simulated clock.
#[must_use]
pub fn fig11(runs: &[WorkloadRun]) -> Table {
    fig11_titled(
        "Figure 11: log size (bits / kilo-instruction) and rate (MB/s)",
        runs,
    )
}

/// [`fig11`] over the concurrent data-structure corpus: per-shape log
/// sizes for the `.asm` workloads (locks, seqlock, lock-free structures).
#[must_use]
pub fn fig11_corpus(runs: &[WorkloadRun]) -> Table {
    fig11_titled(
        "Figure 11 (corpus): log size (bits / kilo-instruction) and rate (MB/s)",
        runs,
    )
}

fn fig11_titled(title: &str, runs: &[WorkloadRun]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "workload",
            "Base-4K",
            "Opt-4K",
            "Base-INF",
            "Opt-INF",
            "Base-4K MB/s",
            "Opt-4K MB/s",
            "Base-INF MB/s",
            "Opt-INF MB/s",
        ],
    );
    let mut sums = [0.0f64; 8];
    for r in runs {
        let mut cells = vec![r.name.to_string()];
        for v in 0..4 {
            let b = r.record.variants[v].bits_per_kilo_instr();
            sums[v] += b;
            cells.push(f2(b));
        }
        for v in 0..4 {
            let rate = r.record.log_rate_mbps(v).unwrap_or_default();
            sums[4 + v] += rate;
            cells.push(f2(rate));
        }
        t.row(cells);
    }
    let n = runs.len() as f64;
    let mut avg = vec!["AVERAGE".to_string()];
    for s in sums {
        avg.push(f2(s / n));
    }
    t.row(avg);
    t
}

/// Figure 12: TRAQ utilization (average and peak occupancy of 176 entries)
/// plus the recording-overhead evidence of §5.3 (TRAQ-full stall cycles).
#[must_use]
pub fn fig12(runs: &[WorkloadRun]) -> Table {
    let mut t = Table::new(
        "Figure 12 / §5.3: TRAQ occupancy and recording overhead",
        &["workload", "avg entries", "peak", "stall cycles", "stall %"],
    );
    for r in runs {
        // TRAQ dynamics are identical across variants; use variant 0.
        let stats = &r.record.variants[BASE_4K].stats;
        let avg = stats.iter().map(|s| s.traq_avg()).sum::<f64>() / stats.len() as f64;
        let peak = stats.iter().map(|s| s.traq_peak).max().unwrap_or(0);
        let stall: u64 = r
            .record
            .core_stats
            .iter()
            .map(|s| s.traq_stall_cycles)
            .sum();
        let cycles = r.record.cycles * r.record.core_stats.len() as u64;
        t.row(vec![
            r.name.into(),
            f2(avg),
            format!("{peak}"),
            format!("{stall}"),
            pct(stall as f64 / cycles as f64),
        ]);
    }
    t
}

/// Figure 12(b): TRAQ occupancy distribution (bins of 10 entries) for the
/// given workloads.
#[must_use]
pub fn fig12_histogram(runs: &[WorkloadRun], names: &[&str]) -> Table {
    let bins: Vec<String> = (0..18)
        .map(|b| format!("{}-{}", b * 10, b * 10 + 9))
        .collect();
    let mut headers = vec!["workload"];
    headers.extend(bins.iter().map(String::as_str));
    let mut t = Table::new("Figure 12(b): TRAQ occupancy distribution (%)", &headers);
    for r in runs.iter().filter(|r| names.contains(&r.name)) {
        let stats = &r.record.variants[BASE_4K].stats;
        let mut hist = [0u64; 18];
        let mut total = 0u64;
        for s in stats {
            for (i, h) in s.traq_hist.iter().take(18).enumerate() {
                hist[i] += h;
                total += h;
            }
        }
        let mut cells = vec![r.name.to_string()];
        cells.extend(
            hist.iter()
                .map(|&h| format!("{:.1}", h as f64 * 100.0 / total.max(1) as f64)),
        );
        t.row(cells);
    }
    t
}

/// Figure 13: sequential replay time normalized to the parallel recording
/// time, with the user/OS-cycle split.
#[must_use]
pub fn fig13(runs: &[WorkloadRun]) -> Table {
    fig13_titled(
        "Figure 13: replay time / recording time (user + OS cycles)",
        runs,
    )
}

/// [`fig13`] over the concurrent data-structure corpus.
#[must_use]
pub fn fig13_corpus(runs: &[WorkloadRun]) -> Table {
    fig13_titled(
        "Figure 13 (corpus): replay time / recording time (user + OS cycles)",
        runs,
    )
}

fn fig13_titled(title: &str, runs: &[WorkloadRun]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "workload", "Base-4K", "(os%)", "Opt-4K", "(os%)", "Base-INF", "(os%)", "Opt-INF",
            "(os%)",
        ],
    );
    let mut sums = [0.0f64; 4];
    for r in runs {
        assert!(
            !r.replays.is_empty(),
            "fig13 needs replay outcomes (ExperimentConfig.replay = true)"
        );
        let mut cells = vec![r.name.to_string()];
        for v in 0..4 {
            let o = &r.replays[v];
            let ratio = o.total_cycles() as f64 / r.record.cycles as f64;
            let os_share = o.os_cycles as f64 / o.total_cycles() as f64;
            sums[v] += ratio;
            cells.push(format!("{ratio:.2}x"));
            cells.push(format!("{:.0}%", os_share * 100.0));
        }
        t.row(cells);
    }
    let n = runs.len() as f64;
    let mut avg = vec!["AVERAGE".to_string()];
    for s in sums {
        avg.push(format!("{:.2}x", s / n));
        avg.push(String::new());
    }
    t.row(avg);
    t
}

/// Figure 14: scalability — average reordered fraction and log rate as the
/// core count grows.
#[must_use]
pub fn fig14(results: &[(usize, Vec<WorkloadRun>)]) -> Table {
    let mut headers = vec!["cores".to_string()];
    for v in VARIANT_NAMES {
        headers.push(format!("{v} reord"));
    }
    for v in VARIANT_NAMES {
        headers.push(format!("{v} MB/s"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 14: scalability with core count (workload averages)",
        &header_refs,
    );
    for (cores, runs) in results {
        let n = runs.len() as f64;
        let mut cells = vec![format!("P{cores}")];
        for v in 0..4 {
            let avg = runs
                .iter()
                .map(|r| r.record.variants[v].reordered_fraction())
                .sum::<f64>()
                / n;
            cells.push(pct(avg));
        }
        for v in 0..4 {
            let avg = runs
                .iter()
                .map(|r| r.record.log_rate_mbps(v).unwrap_or_default())
                .sum::<f64>()
                / n;
            cells.push(f2(avg));
        }
        t.row(cells);
    }
    t
}

/// End-of-run summary: how well the chunked `.rrlog` wire format compresses
/// each variant's log versus the flat encoding (`rec.*.wire_*` metrics,
/// parts-per-thousand — smaller is better), and where the host wall-clock
/// went per phase (`PhaseNanos`).
#[must_use]
pub fn summary(runs: &[WorkloadRun]) -> Table {
    let mut t = Table::new(
        "Summary: wire compression (chunked/flat, permille) and host phase times",
        &[
            "workload",
            "Base-4K",
            "Opt-4K",
            "Base-INF",
            "Opt-INF",
            "wire KB",
            "record ms",
            "patch ms",
            "replay ms",
            "verify ms",
        ],
    );
    let mut permille_sums = [0.0f64; 4];
    let mut wire_total = 0u64;
    let mut phase_sums = [0u64; 4];
    for r in runs {
        let mut cells = vec![r.name.to_string()];
        for (v, label) in VARIANT_NAMES.iter().enumerate() {
            let permille = r
                .metrics
                .counter(&format!("rec.{label}.wire_compression_permille"));
            permille_sums[v] += permille as f64;
            cells.push(format!("{permille}"));
        }
        let wire: u64 = VARIANT_NAMES
            .iter()
            .map(|label| r.metrics.counter(&format!("rec.{label}.wire_bytes")))
            .sum();
        wire_total += wire;
        cells.push(f2(wire as f64 / 1024.0));
        let phases = [
            r.phases.record,
            r.phases.patch,
            r.phases.replay,
            r.phases.verify,
        ];
        for (sum, ns) in phase_sums.iter_mut().zip(phases) {
            *sum += ns;
            cells.push(f2(ns as f64 / 1e6));
        }
        t.row(cells);
    }
    let n = runs.len() as f64;
    let mut totals = vec!["TOTAL/AVG".to_string()];
    for s in permille_sums {
        totals.push(format!("{:.0}", s / n));
    }
    totals.push(f2(wire_total as f64 / 1024.0));
    for s in phase_sums {
        totals.push(f2(s as f64 / 1e6));
    }
    t.row(totals);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::WorkloadRun;
    use relaxreplay::{IntervalLog, IntervalOrdering, LogEntry, RecorderStats};
    use rr_cpu::CoreStats;
    use rr_mem::{CoreId, MemStats};
    use rr_replay::RecordedExecution;
    use rr_sim::{RecorderSpec, RunResult, VariantResult};

    /// A hand-built run: 1000 cycles, one core, four variants with known
    /// stats, so every figure's arithmetic is checkable by hand.
    fn synthetic_run() -> WorkloadRun {
        let specs = RecorderSpec::paper_matrix();
        let variants = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let logs = vec![IntervalLog {
                    core: CoreId::new(0),
                    entries: vec![
                        LogEntry::InorderBlock { instrs: 100 },
                        LogEntry::ReorderedLoad { value: 1 },
                        LogEntry::IntervalFrame {
                            cisn: 0,
                            timestamp: 10,
                        },
                    ],
                }];
                let stats = vec![RecorderStats {
                    counted_loads: 80,
                    counted_stores: 20,
                    counted_instrs: 1000,
                    reordered_loads: (i as u64 + 1) * 2, // 2,4,6,8
                    traq_occupancy_sum: 500,
                    traq_samples: 100,
                    traq_hist: vec![100; 18],
                    traq_peak: 42,
                    ..RecorderStats::default()
                }];
                VariantResult {
                    spec: spec.clone(),
                    logs,
                    stats,
                    ordering: vec![IntervalOrdering::default()],
                }
            })
            .collect();
        WorkloadRun {
            name: "synthetic",
            label: "synthetic".to_string(),
            metrics: rr_sim::MetricsRegistry::default(),
            phases: rr_sim::PhaseNanos::default(),
            record: RunResult {
                cycles: 1000,
                core_stats: vec![CoreStats {
                    retired: 1000,
                    loads: 80,
                    stores: 20,
                    ooo_loads: 40,
                    ooo_stores: 5,
                    ..CoreStats::default()
                }],
                mem_stats: MemStats::default(),
                recorded: RecordedExecution::default(),
                variants,
                clock_ghz: 2.0,
                trace: None,
            },
            replays: Vec::new(),
        }
    }

    #[test]
    fn fig01_math() {
        let runs = vec![synthetic_run()];
        let t = fig01(&runs);
        let text = t.render();
        // 40/100 = 40% loads, 5/100 = 5% stores, 45% total.
        assert!(text.contains("40.000%"), "{text}");
        assert!(text.contains("5.000%"), "{text}");
        assert!(text.contains("45.000%"), "{text}");
    }

    #[test]
    fn fig09_math() {
        let runs = vec![synthetic_run()];
        let text = fig09(&runs).render();
        // Variant 0: 2/100 = 2%; variant 3: 8/100 = 8%.
        assert!(text.contains("2.000%"), "{text}");
        assert!(text.contains("8.000%"), "{text}");
    }

    #[test]
    fn fig11_math() {
        let runs = vec![synthetic_run()];
        let text = fig11(&runs).render();
        // Log bits: IB(34) + RL(66) + FRAME(82) = 182 bits over 1000
        // instructions = 182 bits/kinstr.
        assert!(text.contains("182.00"), "{text}");
        // Rate: 182 bits / 1000 cycles @2GHz = 45.5 MB/s.
        assert!(text.contains("45.50"), "{text}");
    }

    #[test]
    fn fig12_math() {
        let runs = vec![synthetic_run()];
        let text = fig12(&runs).render();
        assert!(text.contains("5.00"), "avg occupancy 500/100: {text}");
        assert!(text.contains("42"), "peak: {text}");
    }

    #[test]
    fn summary_reads_wire_metrics_and_phases() {
        let mut run = synthetic_run();
        run.metrics
            .set("rec.Base-4K.wire_compression_permille", 417);
        run.metrics.set("rec.Base-4K.wire_bytes", 2048);
        run.phases.record = 3_000_000;
        let text = summary(&[run]).render();
        assert!(text.contains("417"), "{text}");
        assert!(text.contains("2.00"), "2048 B = 2.00 KB: {text}");
        assert!(text.contains("3.00"), "3 ms of recording: {text}");
    }

    #[test]
    fn fig14_shapes_rows_per_core_count() {
        let runs4 = vec![synthetic_run()];
        let runs8 = vec![synthetic_run()];
        let t = fig14(&[(4, runs4), (8, runs8)]);
        let text = t.render();
        assert!(text.contains("P4"));
        assert!(text.contains("P8"));
    }
}
