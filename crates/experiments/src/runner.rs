//! Runs the workload suite through the simulator and the replayer,
//! spreading independent simulations over a parallel sweep (`rr-sim`'s
//! sweep engine), and producing everything the individual figures need —
//! including the per-run metrics JSONL sidecars.

use relaxreplay::trace::{TraceConfig, TraceLevel};
use rr_replay::prof::ProfEntry;
use rr_replay::{
    critical_path_blame, patch, prof_json, replay_with, verify, CostModel, IntervalDag,
    ReplayEngine, ReplayOutcome,
};
use rr_sim::sweep::{run_sweep, ReplayPolicy, SweepJob, SweepReport};
use rr_sim::{metrics, Error, MachineConfig, MetricsRegistry, PhaseNanos, RecorderSpec, RunResult};
use rr_workloads::suite;

/// Configuration of an experiment campaign.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Number of cores / threads (the paper's default is 8).
    pub threads: usize,
    /// Workload size factor (larger = longer runs, tighter statistics).
    pub size: u32,
    /// Replay cost model for Figure 13.
    pub cost: CostModel,
    /// Whether to replay (and verify) every variant. Disable for
    /// recording-only experiments to save time.
    pub replay: bool,
    /// Sweep worker threads (0 = the host's available parallelism). Runs
    /// are deterministic regardless of this value; it only changes
    /// wall-clock.
    pub workers: usize,
    /// Save every recorded run as `.rrlog` files into this store — a
    /// local directory or an `rr://host:port` log service
    /// (`--save-logs <dir|rr://…>` / `RR_SAVE_LOGS`).
    pub save_logs: Option<String>,
    /// Instead of recording, load runs previously saved in this store
    /// (a directory or an `rr://host:port[/run]` URL) and replay +
    /// verify them (`--replay-from <dir|rr://…>` / `RR_REPLAY_FROM`).
    pub replay_from: Option<String>,
    /// Replay executor for the `--replay-from` verification pass
    /// (`--replay-workers N` / `RR_REPLAY_WORKERS`; N ≥ 1 selects the
    /// multithreaded engine, 0 its host-parallel default). Sequential
    /// unless set. Saved runs carrying an `ordering.bin` sidecar replay
    /// the recorded partial order; older runs fall back to total order.
    pub replay_engine: ReplayEngine,
    /// Event-tracing configuration (`--trace <level>` / `RR_TRACE`).
    /// Off by default; when enabled, every recorded run carries per-core
    /// timelines and the binaries write `<slug>.trace.jsonl` +
    /// `<slug>.trace.json` (Perfetto) next to their metrics sidecars.
    /// Tracing never changes the recorded `.rrlog` bytes.
    pub trace: TraceConfig,
    /// Replay profiling (`--prof` / `RR_PROF`). Off by default; when
    /// enabled, the binaries write a `<slug>.prof.json` sidecar
    /// (`rr-prof/v1`: critical-path blame per run × variant) next to
    /// their metrics sidecars. Profiling never changes the recorded
    /// `.rrlog` bytes or the replay outcomes.
    pub prof: bool,
}

impl ExperimentConfig {
    /// The defaults used by the figure binaries: 8 cores, a size giving a
    /// few hundred thousand instructions per workload, host-parallel
    /// sweeps.
    #[must_use]
    pub fn paper_default() -> Self {
        ExperimentConfig {
            threads: 8,
            size: 6,
            cost: CostModel::splash_default(),
            replay: true,
            workers: 0,
            save_logs: None,
            replay_from: None,
            replay_engine: ReplayEngine::Sequential,
            trace: TraceConfig::off(),
            prof: false,
        }
    }

    /// Reads `RR_THREADS` / `RR_SIZE` / `RR_WORKERS` / `RR_SAVE_LOGS` /
    /// `RR_REPLAY_FROM` / `RR_REPLAY_WORKERS` / `RR_TRACE` / `RR_PROF`
    /// environment overrides and the `--workers N`, `--save-logs <dir>`,
    /// `--replay-from <dir>`, `--replay-workers N`,
    /// `--trace <off|intervals|accesses|full>`, `--prof` command-line
    /// flags (used by the binaries so runs can be scaled without
    /// recompiling).
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = Self::paper_default();
        if let Ok(t) = std::env::var("RR_THREADS") {
            if let Ok(t) = t.parse() {
                cfg.threads = t;
            }
        }
        if let Ok(s) = std::env::var("RR_SIZE") {
            if let Ok(s) = s.parse() {
                cfg.size = s;
            }
        }
        if let Ok(w) = std::env::var("RR_WORKERS") {
            if let Ok(w) = w.parse() {
                cfg.workers = w;
            }
        }
        if let Ok(d) = std::env::var("RR_SAVE_LOGS") {
            if !d.is_empty() {
                cfg.save_logs = Some(d);
            }
        }
        if let Ok(d) = std::env::var("RR_REPLAY_FROM") {
            if !d.is_empty() {
                cfg.replay_from = Some(d);
            }
        }
        if let Ok(l) = std::env::var("RR_TRACE") {
            if let Some(level) = TraceLevel::parse(&l) {
                cfg.trace = TraceConfig::level(level);
            }
        }
        if let Ok(p) = std::env::var("RR_PROF") {
            if !p.is_empty() && p != "0" {
                cfg.prof = true;
            }
        }
        if let Ok(w) = std::env::var("RR_REPLAY_WORKERS") {
            if let Ok(w) = w.parse() {
                cfg.replay_engine = ReplayEngine::Threaded { workers: w };
            }
        }
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--workers" {
                if let Some(w) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.workers = w;
                }
            } else if let Some(w) = a.strip_prefix("--workers=").and_then(|v| v.parse().ok()) {
                cfg.workers = w;
            } else if a == "--save-logs" {
                cfg.save_logs = args.next();
            } else if let Some(d) = a.strip_prefix("--save-logs=") {
                cfg.save_logs = Some(d.to_string());
            } else if a == "--replay-from" {
                cfg.replay_from = args.next();
            } else if let Some(d) = a.strip_prefix("--replay-from=") {
                cfg.replay_from = Some(d.to_string());
            } else if a == "--replay-workers" {
                if let Some(w) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.replay_engine = ReplayEngine::Threaded { workers: w };
                }
            } else if let Some(w) = a
                .strip_prefix("--replay-workers=")
                .and_then(|v| v.parse().ok())
            {
                cfg.replay_engine = ReplayEngine::Threaded { workers: w };
            } else if a == "--trace" {
                if let Some(level) = args.next().and_then(|v| TraceLevel::parse(&v)) {
                    cfg.trace = TraceConfig::level(level);
                }
            } else if let Some(level) = a.strip_prefix("--trace=").and_then(TraceLevel::parse) {
                cfg.trace = TraceConfig::level(level);
            } else if a == "--prof" {
                cfg.prof = true;
            }
        }
        cfg
    }
}

/// One workload's complete results: the recorded run (with all four
/// recorder variants), per-variant verified replay outcomes, and the
/// run's deterministic metrics plus host phase timings.
#[derive(Debug)]
pub struct WorkloadRun {
    /// Workload name.
    pub name: &'static str,
    /// Label used in metrics sidecars (equals `name` unless the run is
    /// part of a larger sweep, e.g. `fft@16c` in the scalability sweep).
    pub label: String,
    /// The recorded execution and per-variant logs/stats.
    pub record: RunResult,
    /// Replay outcomes, parallel to `record.variants` (empty if replay was
    /// disabled).
    pub replays: Vec<ReplayOutcome>,
    /// Deterministic per-run counters and histograms.
    pub metrics: MetricsRegistry,
    /// Host wall-clock per phase (record / patch / replay / verify).
    pub phases: PhaseNanos,
}

/// A suite run plus the sweep's execution envelope (worker count and
/// wall-clock), for harnesses that report throughput.
#[derive(Debug)]
pub struct SuiteRun {
    /// One entry per workload, in suite order.
    pub runs: Vec<WorkloadRun>,
    /// Workers the sweep actually used.
    pub workers: usize,
    /// Wall-clock nanoseconds for the whole sweep.
    pub wall_ns: u64,
}

/// The recorder variants, in the order used by every figure:
/// `Base-4K, Opt-4K, Base-INF, Opt-INF`.
#[must_use]
pub fn variant_specs() -> Vec<RecorderSpec> {
    RecorderSpec::paper_matrix()
}

fn replay_policy(cfg: &ExperimentConfig) -> ReplayPolicy {
    if cfg.replay {
        // Native replay re-executes the same instruction stream with warm
        // caches and no coherence contention, so its IPC is at least the
        // recorded per-core IPC (the paper's sequential replay of 8 cores
        // taking only 6.7x the parallel recording implies the same).
        ReplayPolicy::AdaptiveIpc {
            base: cfg.cost,
            headroom: 1.2,
        }
    } else {
        ReplayPolicy::Skip
    }
}

/// Records (and optionally replays + verifies) the entire workload suite,
/// one sweep job per workload, returning runs plus sweep timing.
///
/// # Errors
///
/// Returns the first sweep failure (a recording deadlock or a replay
/// verification mismatch — either a correctness bug, not an experiment
/// outcome) or a `--save-logs` write failure.
pub fn run_suite_timed(cfg: &ExperimentConfig) -> Result<SuiteRun, Error> {
    let machine = MachineConfig::splash_default(cfg.threads).with_trace(cfg.trace);
    let specs = variant_specs();
    let workloads = suite(cfg.threads, cfg.size);
    let names: Vec<&'static str> = workloads.iter().map(|w| w.name).collect();
    let jobs: Vec<SweepJob> = workloads
        .into_iter()
        .map(|w| {
            SweepJob::from_specs(
                w.name,
                w.programs,
                w.initial_mem,
                machine.clone(),
                &specs,
                replay_policy(cfg),
            )
        })
        .collect();
    let report = run_sweep(&jobs, cfg.workers).map_err(|e| Error::from(e).context("sweep"))?;
    save_report_logs(cfg, &report)?;
    Ok(report_to_suite(report, &names))
}

/// Saves every run of a sweep into the `cfg.save_logs` store — a local
/// directory or a remote `rr://` log service (no-op when unset).
fn save_report_logs(cfg: &ExperimentConfig, report: &SweepReport) -> Result<(), Error> {
    if let Some(spec) = &cfg.save_logs {
        let (store, run) =
            rr_serve::parse_and_open(spec).map_err(|e| Error::from(e).context("--save-logs"))?;
        if run.is_some() {
            return Err(Error::msg(format!(
                "--save-logs {spec}: name the store, not a single run \
                 (runs are keyed by workload name)"
            )));
        }
        let bytes = report
            .save_to(&*store)
            .map_err(|e| Error::from(e).context("--save-logs"))?;
        eprintln!(
            "saved {} run(s), {bytes} .rrlog bytes, into {}",
            report.outputs.len(),
            store.describe()
        );
    }
    Ok(())
}

/// [`run_suite_timed`] without the envelope — the shape every figure
/// helper consumes.
///
/// # Errors
///
/// As [`run_suite_timed`].
pub fn run_suite(cfg: &ExperimentConfig) -> Result<Vec<WorkloadRun>, Error> {
    Ok(run_suite_timed(cfg)?.runs)
}

/// Records (and optionally replays + verifies) the concurrent
/// data-structure corpus (`rr_workloads::corpus_suite`) the same way
/// [`run_suite`] runs the SPLASH-2 analogues. Corpus core counts are
/// intrinsic to each `.asm` source, so `cfg.threads` / `cfg.size` are
/// ignored; everything else (replay policy, `--save-logs`, tracing)
/// applies as usual.
///
/// # Errors
///
/// As [`run_suite_timed`].
pub fn run_corpus_suite(cfg: &ExperimentConfig) -> Result<Vec<WorkloadRun>, Error> {
    let specs = variant_specs();
    let workloads = rr_workloads::corpus_suite();
    let names: Vec<&'static str> = workloads.iter().map(|w| w.name).collect();
    let jobs: Vec<SweepJob> = workloads
        .into_iter()
        .map(|w| {
            let machine = MachineConfig::splash_default(w.programs.len()).with_trace(cfg.trace);
            SweepJob::from_specs(
                w.name,
                w.programs,
                w.initial_mem,
                machine,
                &specs,
                replay_policy(cfg),
            )
        })
        .collect();
    let report =
        run_sweep(&jobs, cfg.workers).map_err(|e| Error::from(e).context("corpus sweep"))?;
    save_report_logs(cfg, &report)?;
    Ok(report_to_suite(report, &names).runs)
}

fn report_to_suite(report: SweepReport, names: &[&'static str]) -> SuiteRun {
    let workers = report.workers;
    let wall_ns = report.wall_ns;
    let runs = report
        .outputs
        .into_iter()
        .zip(names)
        .map(|(o, name)| WorkloadRun {
            name,
            label: o.name,
            record: o.run,
            replays: o.replays,
            metrics: o.metrics,
            phases: o.phases,
        })
        .collect();
    SuiteRun {
        runs,
        workers,
        wall_ns,
    }
}

/// Records the suite at several core counts (Figure 14) in one flat
/// parallel sweep. Returns `(cores, runs)` pairs. Replay is skipped
/// (Figure 14 is about recording).
///
/// # Errors
///
/// As [`run_suite_timed`].
pub fn run_scalability(
    cfg: &ExperimentConfig,
    core_counts: &[usize],
) -> Result<Vec<(usize, Vec<WorkloadRun>)>, Error> {
    let specs = variant_specs();
    let mut jobs = Vec::new();
    let mut names = Vec::new();
    for &cores in core_counts {
        let machine = MachineConfig::splash_default(cores).with_trace(cfg.trace);
        for w in suite(cores, cfg.size) {
            names.push((cores, w.name));
            jobs.push(SweepJob::from_specs(
                format!("{}@{cores}c", w.name),
                w.programs,
                w.initial_mem,
                machine.clone(),
                &specs,
                ReplayPolicy::Skip,
            ));
        }
    }
    let report = run_sweep(&jobs, cfg.workers).map_err(|e| Error::from(e).context("sweep"))?;
    save_report_logs(cfg, &report)?;

    let mut grouped: Vec<(usize, Vec<WorkloadRun>)> =
        core_counts.iter().map(|&c| (c, Vec::new())).collect();
    for (o, &(cores, name)) in report.outputs.into_iter().zip(&names) {
        let slot = grouped
            .iter_mut()
            .find(|(c, _)| *c == cores)
            .expect("core count present");
        slot.1.push(WorkloadRun {
            name,
            label: o.name,
            record: o.run,
            replays: o.replays,
            metrics: o.metrics,
            phases: o.phases,
        });
    }
    Ok(grouped)
}

/// Summary of a replay-from-disk verification pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayFromSummary {
    /// Saved runs replayed.
    pub runs: usize,
    /// Recorder variants verified across all runs.
    pub variants: usize,
}

/// Replays every run saved in `store` (by a prior `--save-logs`
/// invocation — a local directory or a remote `rr://` log service),
/// verifying each variant's replay against the stored ground truth.
/// Programs and initial memory are regenerated by name
/// (`rr_workloads::by_name`, which also resolves litmus and corpus
/// shapes) — generators and the assembler are deterministic, so the
/// `.rrlog` files plus `(threads, size)` fully determine the execution.
///
/// `only` restricts the pass to a single named run (what an
/// `rr://host:port/run` URL means); `None` replays everything the
/// store lists.
///
/// Run names of the form `fft@16c` (the scalability sweep) override the
/// configured thread count with the recorded one.
///
/// # Errors
///
/// Returns the first load, patch, replay, or verification failure, with
/// the run and variant named in the error's context and the underlying
/// typed error preserved in its source chain.
pub fn replay_suite_from(
    cfg: &ExperimentConfig,
    store: &dyn rr_sim::RunStore,
    only: Option<&str>,
) -> Result<ReplayFromSummary, Error> {
    let names = match only {
        Some(run) => vec![run.to_string()],
        None => store
            .list_runs()
            .map_err(|e| Error::from(e).context("listing saved runs"))?,
    };
    if names.is_empty() {
        return Err(Error::msg(format!("no saved runs in {}", store.describe())));
    }
    let mut variants = 0usize;
    for name in &names {
        // Per-core logs of a saved run decode on the parallel ingest pool.
        let saved = store
            .load_run_with(name, cfg.workers)
            .map_err(|e| Error::from(e).context(name.clone()))?;
        let (base, threads) = match name.split_once('@') {
            Some((b, suffix)) => {
                let cores = suffix
                    .strip_suffix('c')
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| Error::msg(format!("{name}: unparseable core-count suffix")))?;
                (b, cores)
            }
            None => (name.as_str(), cfg.threads),
        };
        let workload = rr_workloads::by_name(base, threads, cfg.size)
            .ok_or_else(|| Error::msg(format!("{name}: no workload named {base:?} is known")))?;
        for v in &saved.variants {
            let at = |stage: &str| format!("{name} [{}]: {stage}", v.label);
            let patched: Vec<_> = v
                .logs
                .iter()
                .map(patch)
                .collect::<Result<_, _>>()
                .map_err(|e| Error::from(e).context(at("patch failed")))?;
            let outcome = replay_with(
                &workload.programs,
                &patched,
                v.ordering.as_deref(),
                workload.initial_mem.clone(),
                &cfg.cost,
                cfg.replay_engine,
            )
            .map_err(|e| Error::from(e).context(at("replay failed")))?;
            verify(&saved.recorded, &outcome)
                .map_err(|e| Error::from(e).context(at("verification failed")))?;
            variants += 1;
        }
    }
    Ok(ReplayFromSummary {
        runs: names.len(),
        variants,
    })
}

/// The `--replay-from` entry point shared by every figure binary: when the
/// flag is set, replays all saved runs from disk, prints a verification
/// summary, and returns `true` so the binary exits without recording.
///
/// # Errors
///
/// Returns the failure of any saved run to load, replay, or verify — the
/// whole point of the flag is to prove the durable artifact is sound.
pub fn handle_replay_from(cfg: &ExperimentConfig) -> Result<bool, Error> {
    let Some(spec) = &cfg.replay_from else {
        return Ok(false);
    };
    let (store, run) =
        rr_serve::parse_and_open(spec).map_err(|e| Error::from(e).context("--replay-from"))?;
    let summary =
        replay_suite_from(cfg, &*store, run.as_deref()).map_err(|e| e.context("--replay-from"))?;
    println!(
        "replay-from {}: {} run(s), {} variant replay(s) verified against the recorded \
         ground truth [{}]",
        store.describe(),
        summary.runs,
        summary.variants,
        cfg.replay_engine.label()
    );
    Ok(true)
}

/// Writes the event-trace artifacts for a set of runs next to the metrics
/// sidecars: `<slug>.trace.jsonl` (one JSON object per trace record,
/// every run concatenated) and `<slug>.trace.json` (Chrome trace-event
/// format — open it in Perfetto or `chrome://tracing`, one track per
/// core plus a coherence/replay track per run).
///
/// A no-op unless tracing was enabled (`--trace` / `RR_TRACE`) and at
/// least one run carries a trace.
///
/// # Errors
///
/// Returns the write failure — the artifact was explicitly requested.
pub fn write_trace_artifacts(
    dir: &std::path::Path,
    slug: &str,
    runs: &[WorkloadRun],
) -> Result<(), Error> {
    let traced: Vec<(String, &relaxreplay::RunTrace)> = runs
        .iter()
        .filter_map(|r| r.record.trace.as_ref().map(|t| (r.label.clone(), t)))
        .collect();
    write_trace_pairs(dir, slug, &traced)
}

/// As [`write_trace_artifacts`], but over pre-labelled `(run, trace)`
/// pairs — for harnesses (ablation, parallel replay) that drive sweeps
/// directly instead of going through [`run_suite`]. No-op on an empty
/// slice.
///
/// # Errors
///
/// Returns the write failure — the artifact was explicitly requested.
pub fn write_trace_pairs(
    dir: &std::path::Path,
    slug: &str,
    traced: &[(String, &relaxreplay::RunTrace)],
) -> Result<(), Error> {
    if traced.is_empty() {
        return Ok(());
    }
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::from(e).context(format!("create {}", dir.display())))?;
    let mut jsonl = String::new();
    for (label, trace) in traced {
        jsonl.push_str(&trace.to_jsonl(label));
    }
    let jsonl_path = dir.join(format!("{slug}.trace.jsonl"));
    std::fs::write(&jsonl_path, jsonl)
        .map_err(|e| Error::from(e).context(format!("write {}", jsonl_path.display())))?;
    let chrome_path = dir.join(format!("{slug}.trace.json"));
    std::fs::write(&chrome_path, relaxreplay::trace::chrome_trace(traced))
        .map_err(|e| Error::from(e).context(format!("write {}", chrome_path.display())))?;
    eprintln!(
        "trace artifacts: {} and {} ({} run(s), {} record(s))",
        jsonl_path.display(),
        chrome_path.display(),
        traced.len(),
        traced.iter().map(|(_, t)| t.total_records()).sum::<usize>()
    );
    Ok(())
}

/// Builds the critical-path blame entries for a set of runs: one
/// [`rr_replay::ProfEntry`] per run × recorder variant, with the DAG
/// built from the variant's recorded partial order.
///
/// # Errors
///
/// Returns the first patch or DAG-construction failure (a correctness
/// bug — recorded logs always patch and order).
pub fn prof_entries(runs: &[WorkloadRun], cost: &CostModel) -> Result<Vec<ProfEntry>, Error> {
    let mut entries = Vec::new();
    for r in runs {
        for v in &r.record.variants {
            let at = |stage: &str| format!("{} [{}]: {stage}", r.label, v.spec.label());
            let patched: Vec<_> = v
                .logs
                .iter()
                .map(patch)
                .collect::<Result<_, _>>()
                .map_err(|e| Error::from(e).context(at("patch failed")))?;
            let dag = IntervalDag::partial_order(v.logs.len(), &patched, &v.ordering)
                .map_err(|e| Error::from(e).context(at("dag failed")))?;
            entries.push(ProfEntry {
                run: r.label.clone(),
                variant: v.spec.label(),
                blame: critical_path_blame(&dag, cost),
                engine: None,
            });
        }
    }
    Ok(entries)
}

/// Writes the `<slug>.prof.json` profiling sidecar (schema `rr-prof/v1`)
/// for a set of runs: critical-path blame per run × variant, next to the
/// metrics sidecars. Call when `cfg.prof` is set; a no-op on an empty
/// run set. Measured engine timelines are the `rr-inspect prof` command's
/// job — this sidecar carries the modeled blame every figure binary can
/// produce without re-replaying.
///
/// # Errors
///
/// Returns the first blame-construction or write failure — the artifact
/// was explicitly requested.
pub fn write_prof_artifacts(
    dir: &std::path::Path,
    slug: &str,
    runs: &[WorkloadRun],
    cost: &CostModel,
) -> Result<(), Error> {
    let entries = prof_entries(runs, cost)?;
    write_prof_pairs(dir, slug, &entries)
}

/// As [`write_prof_artifacts`], but over pre-built entries — for
/// harnesses that attach measured [`relaxreplay::prof::EngineProf`]
/// timelines or drive sweeps directly. No-op on an empty slice.
///
/// # Errors
///
/// Returns the write failure — the artifact was explicitly requested.
pub fn write_prof_pairs(
    dir: &std::path::Path,
    slug: &str,
    entries: &[ProfEntry],
) -> Result<(), Error> {
    if entries.is_empty() {
        return Ok(());
    }
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::from(e).context(format!("create {}", dir.display())))?;
    let path = dir.join(format!("{slug}.prof.json"));
    std::fs::write(&path, prof_json(entries))
        .map_err(|e| Error::from(e).context(format!("write {}", path.display())))?;
    let with_engine = entries.iter().filter(|e| e.engine.is_some()).count();
    eprintln!(
        "prof artifacts: {} ({} entr{}, {with_engine} with engine timelines)",
        path.display(),
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" },
    );
    Ok(())
}

/// Renders every run's metrics as JSONL, one line per run — the sidecar
/// every experiments binary writes next to its CSV.
#[must_use]
pub fn metrics_jsonl(runs: &[WorkloadRun]) -> String {
    let mut out = String::new();
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&metrics::jsonl_object(&r.label, i, &r.metrics, &r.phases));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_config_defaults_are_sane() {
        let cfg = ExperimentConfig::paper_default();
        assert_eq!(cfg.threads, 8);
        assert!(cfg.replay);
        assert_eq!(cfg.workers, 0, "0 = host parallelism");
    }

    #[test]
    fn tiny_suite_runs_in_parallel_and_keeps_order() {
        let cfg = ExperimentConfig {
            threads: 2,
            size: 1,
            replay: false,
            workers: 4,
            ..ExperimentConfig::paper_default()
        };
        let suite_run = run_suite_timed(&cfg).expect("suite");
        assert_eq!(suite_run.runs.len(), 12);
        assert_eq!(suite_run.runs[0].name, "fft");
        assert!(suite_run.workers >= 1);
        for r in &suite_run.runs {
            assert_eq!(r.label, r.name);
            assert!(r.metrics.counter("cpu.retired") > 0, "{}", r.name);
            assert!(r.phases.record > 0, "{}", r.name);
        }
        let jsonl = metrics_jsonl(&suite_run.runs);
        assert_eq!(jsonl.lines().count(), 12);
        assert!(jsonl.lines().next().unwrap().contains("\"name\":\"fft\""));
    }

    #[test]
    fn prof_artifacts_validate_against_the_sidecar_schema() {
        let cfg = ExperimentConfig {
            threads: 2,
            size: 1,
            replay: false,
            workers: 2,
            prof: true,
            ..ExperimentConfig::paper_default()
        };
        let runs = run_suite(&cfg).expect("suite");
        let entries = prof_entries(&runs, &cfg.cost).expect("blame");
        assert_eq!(entries.len(), runs.len() * variant_specs().len());
        for e in &entries {
            assert!(
                e.blame.coverage_pct() >= 95.0,
                "{} [{}]: attribution must cover the makespan",
                e.run,
                e.variant
            );
        }

        let dir = std::env::temp_dir().join("rr_prof_artifacts_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_prof_artifacts(&dir, "suite", &runs, &cfg.cost).expect("artifacts");
        let json = std::fs::read_to_string(dir.join("suite.prof.json")).expect("prof written");
        let stats = relaxreplay::validate_prof_json(&json).expect("valid rr-prof/v1");
        assert_eq!(stats.entries, entries.len());
    }

    #[test]
    fn trace_artifacts_are_written_when_tracing_is_on() {
        let cfg = ExperimentConfig {
            threads: 2,
            size: 1,
            replay: false,
            workers: 2,
            trace: TraceConfig::level(TraceLevel::Intervals),
            ..ExperimentConfig::paper_default()
        };
        let runs = run_suite(&cfg).expect("suite");
        assert!(runs.iter().all(|r| r.record.trace.is_some()));

        let dir = std::env::temp_dir().join("rr_trace_artifacts_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_trace_artifacts(&dir, "suite", &runs).expect("artifacts");
        let jsonl = std::fs::read_to_string(dir.join("suite.trace.jsonl")).expect("jsonl written");
        assert!(jsonl.lines().count() > 0);
        assert!(jsonl.lines().all(|l| l.contains("\"run\":")));
        let chrome = std::fs::read_to_string(dir.join("suite.trace.json")).expect("json written");
        let stats = relaxreplay::trace::validate_chrome_trace(&chrome).expect("valid chrome trace");
        assert!(stats.events > 0);

        // And a strict no-op with tracing off.
        let off = run_suite(&ExperimentConfig {
            trace: TraceConfig::off(),
            ..cfg.clone()
        })
        .expect("suite");
        assert!(off.iter().all(|r| r.record.trace.is_none()));
        let off_dir = std::env::temp_dir().join("rr_trace_artifacts_off_test");
        let _ = std::fs::remove_dir_all(&off_dir);
        write_trace_artifacts(&off_dir, "suite", &off).expect("artifacts");
        assert!(!off_dir.exists(), "no artifacts when tracing is off");
    }
}
