//! Runs the workload suite through the simulator and the replayer, once,
//! producing everything the individual figures need.

use rr_replay::{CostModel, ReplayOutcome};
use rr_sim::{record, replay_and_verify, MachineConfig, RecorderSpec, RunResult};
use rr_workloads::{suite, Workload};

/// Configuration of an experiment campaign.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Number of cores / threads (the paper's default is 8).
    pub threads: usize,
    /// Workload size factor (larger = longer runs, tighter statistics).
    pub size: u32,
    /// Replay cost model for Figure 13.
    pub cost: CostModel,
    /// Whether to replay (and verify) every variant. Disable for
    /// recording-only experiments to save time.
    pub replay: bool,
}

impl ExperimentConfig {
    /// The defaults used by the figure binaries: 8 cores, a size giving a
    /// few hundred thousand instructions per workload.
    #[must_use]
    pub fn paper_default() -> Self {
        ExperimentConfig {
            threads: 8,
            size: 6,
            cost: CostModel::splash_default(),
            replay: true,
        }
    }

    /// Reads `RR_THREADS` / `RR_SIZE` environment overrides (used by the
    /// binaries so runs can be scaled without recompiling).
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = Self::paper_default();
        if let Ok(t) = std::env::var("RR_THREADS") {
            if let Ok(t) = t.parse() {
                cfg.threads = t;
            }
        }
        if let Ok(s) = std::env::var("RR_SIZE") {
            if let Ok(s) = s.parse() {
                cfg.size = s;
            }
        }
        cfg
    }
}

/// One workload's complete results: the recorded run (with all four
/// recorder variants) and, per variant, the verified replay outcome.
#[derive(Debug)]
pub struct WorkloadRun {
    /// Workload name.
    pub name: &'static str,
    /// The recorded execution and per-variant logs/stats.
    pub record: RunResult,
    /// Replay outcomes, parallel to `record.variants` (empty if replay was
    /// disabled).
    pub replays: Vec<ReplayOutcome>,
}

/// The recorder variants, in the order used by every figure:
/// `Base-4K, Opt-4K, Base-INF, Opt-INF`.
#[must_use]
pub fn variant_specs() -> Vec<RecorderSpec> {
    RecorderSpec::paper_matrix()
}

/// Records (and optionally replays + verifies) the entire workload suite.
///
/// # Panics
///
/// Panics if any recording deadlocks or any replay fails verification —
/// either would be a correctness bug, not an experiment outcome.
#[must_use]
pub fn run_suite(cfg: &ExperimentConfig) -> Vec<WorkloadRun> {
    let machine = MachineConfig::splash_default(cfg.threads);
    let specs = variant_specs();
    suite(cfg.threads, cfg.size)
        .into_iter()
        .map(|w| run_one(&w, &machine, &specs, cfg))
        .collect()
}

fn run_one(
    w: &Workload,
    machine: &MachineConfig,
    specs: &[RecorderSpec],
    cfg: &ExperimentConfig,
) -> WorkloadRun {
    let record = record(&w.programs, &w.initial_mem, machine, specs)
        .unwrap_or_else(|e| panic!("{}: recording failed: {e}", w.name));
    // Native replay re-executes the same instruction stream with warm
    // caches and no coherence contention, so its IPC is at least the
    // recorded per-core IPC (the paper's sequential replay of 8 cores
    // taking only 6.7x the parallel recording implies the same).
    let active = record
        .core_stats
        .iter()
        .filter(|s| s.active_cycles > 0)
        .count()
        .max(1);
    let per_core_ipc =
        record.total_instrs() as f64 / record.cycles.max(1) as f64 / active as f64;
    let cost = rr_replay::CostModel {
        replay_ipc: (per_core_ipc * 1.2).max(cfg.cost.replay_ipc),
        ..cfg.cost
    };
    let replays = if cfg.replay {
        (0..specs.len())
            .map(|v| {
                replay_and_verify(&w.programs, &w.initial_mem, &record, v, &cost)
                    .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, specs[v].label()))
            })
            .collect()
    } else {
        Vec::new()
    };
    WorkloadRun {
        name: w.name,
        record,
        replays,
    }
}

/// Records the suite at several core counts (Figure 14). Returns
/// `(cores, runs)` pairs. Replay is skipped (Figure 14 is about recording).
#[must_use]
pub fn run_scalability(cfg: &ExperimentConfig, core_counts: &[usize]) -> Vec<(usize, Vec<WorkloadRun>)> {
    core_counts
        .iter()
        .map(|&cores| {
            let sub = ExperimentConfig {
                threads: cores,
                replay: false,
                ..cfg.clone()
            };
            (cores, run_suite(&sub))
        })
        .collect()
}
