//! `rr-check` — the schedule-exploration differential checker.
//!
//! ```text
//! rr-check explore [--seeds N] [--pressure <mode>|all] [--workload <w>|litmus|corpus]
//!                  [--workers K] [--replay-workers LIST] [--out DIR] [--trace]
//! rr-check fuzz    [--count N] [--start-seed S] [--schedules K]
//!                  [--pressure <mode>|all] [--workers K] [--replay-workers LIST] [--out DIR]
//! rr-check verify  <dir | rr://host:port[/run]> [--workers K] [--size N]
//! rr-check modes
//! ```
//!
//! `verify` replays every run saved in a store — a `--save-logs`
//! directory or a running `rr-serve` instance — and checks each variant
//! against the recorded ground truth, exactly like `--replay-from` in the
//! figure binaries. Exit 0 means the durable artifact replays
//! deterministically.
//!
//! `--replay-workers 1,2,4,8` additionally replays every recording on the
//! multithreaded replay engine at each listed worker count; those outcomes
//! join the same differential cross-check, so the zero-divergence gate
//! covers every engine.
//!
//! For every seed, `explore` derives a deterministic schedule
//! perturbation (stalls / priority rotation over the simulator's step
//! loop), optionally stacks a recorder pressure mode on top (forced
//! interval closes, TRAQ near-overflow, signature aliasing, CISN
//! wraparound, injected sink faults), records the perturbed execution
//! under **both** paper designs (Base-4K and Opt-4K), replays each log,
//! and cross-checks every replay against the sequential ground truth and
//! against each other. Any disagreement is a recorder/replayer bug: the
//! offending spec is shrunk to a locally minimal still-failing form and
//! re-recorded with tracing for a forensic `divergence.md` report.
//!
//! `fuzz` runs the same differential check over generated workloads:
//! each seed produces a random racy `.asm` program
//! (`rr_workloads::fuzz`), assembled through the text frontend and
//! explored under several schedule perturbations. A divergence saves the
//! generated source next to the forensic report so the case can be
//! replayed by hand.
//!
//! Exit status: 0 = all schedules agree, 1 = divergence found, 2 = usage.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rr_experiments::report::{results_dir, write_metrics_jsonl, Table};
use rr_experiments::write_trace_pairs;
use rr_replay::CostModel;
use rr_sim::{
    explore_sweep_with, minimize_divergence, replay_and_verify_forensic, Error, ExploreSpec,
    MachineConfig, PressureMode, RecordSession,
};
use rr_workloads::{corpus_suite, fuzz_case, litmus_suite, FuzzCase, Workload};

const USAGE: &str = "usage:
  rr-check explore [--seeds N] [--pressure <mode>|all] [--workload <w>|litmus|corpus]
                   [--workers K] [--replay-workers LIST] [--out DIR] [--trace]
  rr-check fuzz    [--count N] [--start-seed S] [--schedules K]
                   [--pressure <mode>|all] [--workers K] [--replay-workers LIST] [--out DIR]
  rr-check verify  <dir | rr://host:port[/run]> [--workers K] [--size N]
  rr-check modes

modes: none force-close traq sig-alias cisn-wrap sink-fault
workloads: litmus (= sb mp lb iriw), corpus (all data-structure shapes),
           or any single workload name — a SPLASH-2 analogue (e.g. fft),
           a litmus shape, or a corpus shape (e.g. spinlock)
--replay-workers: comma-separated threaded-engine worker counts (e.g. 1,2,4,8);
           each recording is additionally replayed on the multithreaded engine
           at every listed count and cross-checked against the sequential replay";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "explore" => cmd_explore(rest),
            "fuzz" => cmd_fuzz(rest),
            "verify" => cmd_verify(rest),
            "modes" => {
                for m in PressureMode::ALL {
                    println!("{}", m.name());
                }
                0
            }
            "-h" | "--help" | "help" => {
                println!("{USAGE}");
                0
            }
            other => {
                eprintln!("unknown command {other:?}\n{USAGE}");
                2
            }
        },
        None => {
            eprintln!("{USAGE}");
            2
        }
    };
    ExitCode::from(code)
}

struct Options {
    seeds: u64,
    pressures: Vec<PressureMode>,
    workloads: Vec<Workload>,
    workers: usize,
    replay_workers: Vec<usize>,
    out: PathBuf,
    trace: bool,
}

/// Parses a `--replay-workers` list: comma-separated positive counts.
fn parse_worker_list(v: &str) -> Option<Vec<usize>> {
    v.split(',')
        .map(|s| s.trim().parse::<usize>().ok().filter(|&w| w >= 1))
        .collect()
}

fn parse(args: &[String]) -> Result<Options, u8> {
    let mut seeds = 16u64;
    let mut pressures = vec![PressureMode::None];
    let mut workload = "litmus".to_string();
    let mut workers = 0usize;
    let mut replay_workers = Vec::new();
    let mut out = results_dir().join("rr-check");
    let mut trace = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, u8> {
            it.next().ok_or_else(|| {
                eprintln!("rr-check explore: {name} needs a value\n{USAGE}");
                2
            })
        };
        match flag.as_str() {
            "--seeds" => {
                seeds = value("--seeds")?.parse().map_err(|e| {
                    eprintln!("rr-check explore: bad --seeds: {e}");
                    2
                })?;
            }
            "--pressure" => {
                let v = value("--pressure")?;
                pressures = if v == "all" {
                    PressureMode::ALL.to_vec()
                } else {
                    vec![PressureMode::parse(v).ok_or_else(|| {
                        eprintln!("rr-check explore: unknown pressure mode {v:?}\n{USAGE}");
                        2
                    })?]
                };
            }
            "--workload" => workload = value("--workload")?.clone(),
            "--workers" => {
                workers = value("--workers")?.parse().map_err(|e| {
                    eprintln!("rr-check explore: bad --workers: {e}");
                    2
                })?;
            }
            "--replay-workers" => {
                let v = value("--replay-workers")?;
                replay_workers = parse_worker_list(v).ok_or_else(|| {
                    eprintln!("rr-check explore: bad --replay-workers {v:?} (want e.g. 1,2,4,8)");
                    2
                })?;
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--trace" => trace = true,
            other => {
                eprintln!("rr-check explore: unknown flag {other:?}\n{USAGE}");
                return Err(2);
            }
        }
    }

    let workloads = match workload.as_str() {
        "litmus" => litmus_suite(),
        "corpus" => corpus_suite(),
        name => match rr_workloads::by_name(name, 4, 1) {
            Some(w) => vec![w],
            None => {
                eprintln!(
                    "rr-check explore: unknown workload {workload:?}\n\
                     known workloads: litmus, corpus, {}",
                    rr_workloads::known_names().join(", ")
                );
                return Err(2);
            }
        },
    };
    Ok(Options {
        seeds,
        pressures,
        workloads,
        workers,
        replay_workers,
        out,
        trace,
    })
}

fn cmd_explore(args: &[String]) -> u8 {
    let opts = match parse(args) {
        Ok(o) => o,
        Err(c) => return c,
    };
    match run_explore(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rr-check explore: {e}");
            1
        }
    }
}

fn run_explore(opts: &Options) -> Result<u8, Error> {
    let mut table = Table::new(
        "rr-check: schedule exploration",
        &[
            "workload", "pressure", "seeds", "diverged", "stalls", "forced", "faulted",
        ],
    );
    let mut divergent_total = 0usize;
    let mut jsonl = String::new();

    for w in &opts.workloads {
        let machine = MachineConfig::splash_default(w.programs.len());
        for &pressure in &opts.pressures {
            let specs: Vec<ExploreSpec> = (0..opts.seeds)
                .map(|s| ExploreSpec::for_seed(s, pressure))
                .collect();
            let report = explore_sweep_with(
                &w.programs,
                &w.initial_mem,
                &machine,
                &specs,
                opts.workers,
                &opts.replay_workers,
            )
            .map_err(|e| Error::from(e).context(format!("{}/{}", w.name, pressure.name())))?;
            jsonl.push_str(&report.sweep.to_jsonl());

            let stalls: u64 = report
                .outcomes
                .iter()
                .map(|o| o.pressure.stalled_ticks)
                .sum();
            let forced: u64 = report
                .outcomes
                .iter()
                .map(|o| o.pressure.forced_closes)
                .sum();
            let faulted: usize = report
                .outcomes
                .iter()
                .filter_map(|o| o.pressure.sink.as_ref())
                .filter(|s| s.poisoned.iter().any(|&p| p))
                .count();
            let divergent = report.divergent();
            table.row(vec![
                w.name.to_string(),
                pressure.name().to_string(),
                opts.seeds.to_string(),
                divergent.len().to_string(),
                stalls.to_string(),
                forced.to_string(),
                faulted.to_string(),
            ]);

            for o in divergent {
                divergent_total += 1;
                eprintln!(
                    "DIVERGENCE {}/{}: {}",
                    w.name,
                    o.name,
                    o.divergence.as_deref().unwrap_or("?")
                );
                report_divergence(w, &machine, o.spec.clone(), &opts.out);
            }
        }
        if opts.trace {
            write_seed0_trace(w, &opts.out);
        }
    }

    table.print();
    table
        .write_csv(&opts.out, "rr-check")
        .map_err(|e| Error::from(e).context("write csv"))?;
    write_metrics_jsonl(&opts.out, "rr-check", &jsonl)
        .map_err(|e| Error::from(e).context("write metrics"))?;

    if divergent_total > 0 {
        eprintln!(
            "rr-check: {divergent_total} divergent schedule(s); minimized reports under {}",
            opts.out.display()
        );
        Ok(1)
    } else {
        println!("rr-check: all explored schedules replay deterministically");
        Ok(0)
    }
}

/// `verify <dir | rr://host:port[/run]>` — the store-replay gate. Loads
/// every saved run from the named store (all of them, or just the one an
/// `rr://…/run` URL singles out), replays each variant, and verifies it
/// against the recorded ground truth.
fn cmd_verify(args: &[String]) -> u8 {
    let Some(spec) = args.first() else {
        eprintln!("rr-check verify: missing <dir | rr://host:port[/run]>\n{USAGE}");
        return 2;
    };
    let mut cfg = rr_experiments::ExperimentConfig::from_env();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, u8> {
            it.next().ok_or_else(|| {
                eprintln!("rr-check verify: {name} needs a value\n{USAGE}");
                2
            })
        };
        let res: Result<(), u8> = match flag.as_str() {
            "--workers" => value("--workers").and_then(|v| {
                v.parse().map(|n| cfg.workers = n).map_err(|e| {
                    eprintln!("rr-check verify: bad --workers: {e}");
                    2
                })
            }),
            "--size" => value("--size").and_then(|v| {
                v.parse().map(|n| cfg.size = n).map_err(|e| {
                    eprintln!("rr-check verify: bad --size: {e}");
                    2
                })
            }),
            other => {
                eprintln!("rr-check verify: unknown flag {other:?}\n{USAGE}");
                Err(2)
            }
        };
        if let Err(c) = res {
            return c;
        }
    }
    cfg.replay_from = Some(spec.clone());
    match rr_experiments::handle_replay_from(&cfg) {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("rr-check verify: {e}");
            1
        }
    }
}

struct FuzzOptions {
    count: u64,
    start_seed: u64,
    schedules: u64,
    pressures: Vec<PressureMode>,
    workers: usize,
    replay_workers: Vec<usize>,
    out: PathBuf,
}

fn parse_fuzz(args: &[String]) -> Result<FuzzOptions, u8> {
    let mut opts = FuzzOptions {
        count: 50,
        start_seed: 0,
        schedules: 2,
        pressures: vec![PressureMode::None],
        workers: 0,
        replay_workers: Vec::new(),
        out: results_dir().join("rr-check"),
    };

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, u8> {
            it.next().ok_or_else(|| {
                eprintln!("rr-check fuzz: {name} needs a value\n{USAGE}");
                2
            })
        };
        let parsed = |name: &str, v: &str| -> Result<u64, u8> {
            v.parse().map_err(|e| {
                eprintln!("rr-check fuzz: bad {name}: {e}");
                2
            })
        };
        match flag.as_str() {
            "--count" => opts.count = parsed("--count", value("--count")?)?,
            "--start-seed" => opts.start_seed = parsed("--start-seed", value("--start-seed")?)?,
            "--schedules" => opts.schedules = parsed("--schedules", value("--schedules")?)?,
            "--pressure" => {
                let v = value("--pressure")?;
                opts.pressures = if v == "all" {
                    PressureMode::ALL.to_vec()
                } else {
                    vec![PressureMode::parse(v).ok_or_else(|| {
                        eprintln!("rr-check fuzz: unknown pressure mode {v:?}\n{USAGE}");
                        2
                    })?]
                };
            }
            "--workers" => {
                opts.workers = parsed("--workers", value("--workers")?)? as usize;
            }
            "--replay-workers" => {
                let v = value("--replay-workers")?;
                opts.replay_workers = parse_worker_list(v).ok_or_else(|| {
                    eprintln!("rr-check fuzz: bad --replay-workers {v:?} (want e.g. 1,2,4,8)");
                    2
                })?;
            }
            "--out" => opts.out = PathBuf::from(value("--out")?),
            other => {
                eprintln!("rr-check fuzz: unknown flag {other:?}\n{USAGE}");
                return Err(2);
            }
        }
    }
    Ok(opts)
}

fn cmd_fuzz(args: &[String]) -> u8 {
    let opts = match parse_fuzz(args) {
        Ok(o) => o,
        Err(c) => return c,
    };
    match run_fuzz(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rr-check fuzz: {e}");
            1
        }
    }
}

fn run_fuzz(opts: &FuzzOptions) -> Result<u8, Error> {
    let mut divergent_total = 0usize;
    let mut schedules_total = 0u64;
    for seed in opts.start_seed..opts.start_seed.saturating_add(opts.count) {
        let case = fuzz_case(seed);
        let w = &case.workload;
        let machine = MachineConfig::splash_default(w.programs.len());
        for &pressure in &opts.pressures {
            // Decorrelate schedule seeds from the generator seed so two
            // fuzz cases never explore the same perturbation sequence.
            let specs: Vec<ExploreSpec> = (0..opts.schedules)
                .map(|s| ExploreSpec::for_seed(seed.wrapping_mul(7919).wrapping_add(s), pressure))
                .collect();
            let report = explore_sweep_with(
                &w.programs,
                &w.initial_mem,
                &machine,
                &specs,
                opts.workers,
                &opts.replay_workers,
            )
            .map_err(|e| Error::from(e).context(format!("{}/{}", case.label, pressure.name())))?;
            schedules_total += opts.schedules;
            for o in report.divergent() {
                divergent_total += 1;
                eprintln!(
                    "DIVERGENCE {}/{}: {}",
                    case.label,
                    o.name,
                    o.divergence.as_deref().unwrap_or("?")
                );
                save_fuzz_source(&case, &opts.out);
                report_divergence(w, &machine, o.spec.clone(), &opts.out);
            }
        }
    }

    if divergent_total > 0 {
        eprintln!(
            "rr-check fuzz: {divergent_total} divergent schedule(s) over {} case(s); \
             generated sources and minimized reports under {}",
            opts.count,
            opts.out.display()
        );
        Ok(1)
    } else {
        println!(
            "rr-check fuzz: {} case(s) (seeds {}..{}), {schedules_total} explored schedule(s), \
             all replay deterministically",
            opts.count,
            opts.start_seed,
            opts.start_seed.saturating_add(opts.count)
        );
        Ok(0)
    }
}

/// Saves a divergent fuzz case's generated `.asm` source so the failure
/// can be re-run by hand (`rr-check explore` can't regenerate it without
/// the seed; the source is the durable artifact).
fn save_fuzz_source(case: &FuzzCase, out: &Path) {
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("rr-check fuzz: create {}: {e}", out.display());
        return;
    }
    let path = out.join(format!("{}.asm", case.label));
    match std::fs::write(&path, &case.asm) {
        Ok(()) => eprintln!("  generated source saved to {}", path.display()),
        Err(e) => eprintln!("rr-check fuzz: could not save {}: {e}", path.display()),
    }
}

/// Shrinks a divergent spec, then re-records it with tracing enabled and
/// lets the forensics layer write `divergence.md` next to the CSVs.
fn report_divergence(w: &Workload, machine: &MachineConfig, spec: ExploreSpec, out: &Path) {
    let min = minimize_divergence(&w.programs, &w.initial_mem, machine, spec);
    eprintln!(
        "  minimized: seed={} schedule={:?} pressure={}",
        min.seed,
        min.schedule,
        min.pressure.name()
    );
    let traced = machine.clone().with_trace(relaxreplay::TraceConfig::full());
    let Ok(run) = RecordSession::new(&w.programs, &w.initial_mem)
        .config(&traced)
        .recorder_configs(&min.recorder_configs())
        .options(&min.options())
        .run()
    else {
        eprintln!("  (forensic re-record failed)");
        return;
    };
    let dir = out.join(format!(
        "divergence-{}-{}",
        w.name,
        min.label().replace('/', "-")
    ));
    for v in 0..run.variants.len() {
        if let Err(e) = replay_and_verify_forensic(
            &w.programs,
            &w.initial_mem,
            &run,
            v,
            &CostModel::splash_default(),
            &dir,
        ) {
            eprintln!("  [{}] {e}", run.variants[v].spec.label());
        }
    }
}

/// Records the unperturbed seed-0 schedule with tracing and writes the
/// Perfetto-convertible trace sidecar (`--trace`).
fn write_seed0_trace(w: &Workload, out: &Path) {
    let spec = ExploreSpec::for_seed(0, PressureMode::None);
    let machine = MachineConfig::splash_default(w.programs.len())
        .with_trace(relaxreplay::TraceConfig::full());
    match RecordSession::new(&w.programs, &w.initial_mem)
        .config(&machine)
        .recorder_configs(&spec.recorder_configs())
        .options(&spec.options())
        .run()
    {
        Ok(run) => {
            if let Some(trace) = &run.trace {
                if let Err(e) = write_trace_pairs(
                    out,
                    &format!("rr-check-{}", w.name),
                    &[(format!("{}/seed0", w.name), trace)],
                ) {
                    eprintln!("rr-check: trace write for {} failed: {e}", w.name);
                }
            }
        }
        Err(e) => eprintln!("rr-check: trace record of {} failed: {e}", w.name),
    }
}
