//! Ablation studies of RelaxReplay's hardware parameters (the design
//! choices DESIGN.md calls out): Snoop Table size, signature size, TRAQ
//! depth, counting bandwidth, and the NMI field width.
//!
//! Each sweep records the same workloads under custom recorder
//! configurations and reports the recorder-visible consequences. All
//! cells are independent simulations, so the whole ablation matrix runs
//! as one flat parallel sweep.

use relaxreplay::{Design, RecorderConfig};
use rr_cpu::ConsistencyModel;
use rr_experiments::report::{pct, results_dir, write_metrics_jsonl, Table};
use rr_experiments::{write_trace_pairs, ExperimentConfig};
use rr_sim::{JobOutput, MachineConfig, ReplayPolicy, SweepJob};
use rr_workloads::by_name;

const WORKLOADS: [&str; 3] = ["fft", "barnes", "radix"];

fn job(
    name: String,
    workload: &str,
    cfg: &ExperimentConfig,
    machine: MachineConfig,
    recorders: Vec<RecorderConfig>,
) -> SweepJob {
    let w = by_name(workload, cfg.threads, cfg.size).expect("known workload");
    SweepJob {
        name,
        programs: w.programs,
        initial_mem: w.initial_mem,
        machine,
        recorders,
        replay: ReplayPolicy::Skip,
        options: rr_sim::RunOptions::default(),
    }
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ablation: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let cfg = ExperimentConfig::from_env();
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let machine = MachineConfig::splash_default(cfg.threads).with_trace(cfg.trace);
    let dir = results_dir();

    const MODELS: [(ConsistencyModel, &str); 3] = [
        (ConsistencyModel::Sc, "sc"),
        (ConsistencyModel::Tso, "tso"),
        (ConsistencyModel::Rc, "rc"),
    ];

    // Build the whole ablation matrix as one job list, in table order.
    let mut jobs = Vec::new();
    for name in WORKLOADS {
        for (model, tag) in MODELS {
            jobs.push(job(
                format!("{name}/consistency/{tag}"),
                name,
                &cfg,
                MachineConfig::splash_default(cfg.threads)
                    .with_consistency(model)
                    .with_trace(cfg.trace),
                vec![RecorderConfig::splash_default(Design::Base, Some(4096))],
            ));
        }
    }
    for name in WORKLOADS {
        jobs.push(job(
            format!("{name}/snoop_table"),
            name,
            &cfg,
            machine.clone(),
            [8usize, 64, 512]
                .into_iter()
                .map(|entries| RecorderConfig {
                    snoop_entries: entries,
                    ..RecorderConfig::splash_default(Design::Opt, None)
                })
                .collect(),
        ));
    }
    for name in WORKLOADS {
        jobs.push(job(
            format!("{name}/signature"),
            name,
            &cfg,
            machine.clone(),
            [64u32, 256, 1024]
                .into_iter()
                .map(|bits| RecorderConfig {
                    sig_bits: bits,
                    ..RecorderConfig::splash_default(Design::Base, None)
                })
                .collect(),
        ));
    }
    for name in WORKLOADS {
        // TRAQ depth changes dispatch stalls, counting bandwidth and the
        // NMI width change filler allocation — all alter TRAQ dynamics, so
        // each configuration must observe its own run (recorders attached
        // together must agree on TRAQ occupancy; see `FanoutObserver`).
        for entries in [44usize, 88, 176] {
            jobs.push(job(
                format!("{name}/traq/{entries}"),
                name,
                &cfg,
                machine.clone(),
                vec![RecorderConfig {
                    traq_entries: entries,
                    ..RecorderConfig::splash_default(Design::Base, Some(4096))
                }],
            ));
        }
    }
    for name in WORKLOADS {
        for count in [1usize, 2, 4] {
            jobs.push(job(
                format!("{name}/counting/{count}"),
                name,
                &cfg,
                machine.clone(),
                vec![RecorderConfig {
                    count_per_cycle: count,
                    ..RecorderConfig::splash_default(Design::Base, Some(4096))
                }],
            ));
        }
    }
    for name in WORKLOADS {
        for nmi in [3u32, 15, 63] {
            jobs.push(job(
                format!("{name}/nmi/{nmi}"),
                name,
                &cfg,
                machine.clone(),
                vec![RecorderConfig {
                    nmi_max: nmi,
                    ..RecorderConfig::splash_default(Design::Base, None)
                }],
            ));
        }
    }

    let report = rr_sim::run_sweep(&jobs, cfg.workers)
        .map_err(|e| rr_sim::Error::from(e).context("ablation sweep"))?;
    eprintln!(
        "ablation sweep: {} runs on {} workers in {:.2}s",
        report.outputs.len(),
        report.workers,
        report.wall_ns as f64 / 1e9
    );
    write_metrics_jsonl(&dir, "ablation", &report.to_jsonl())?;
    let traced: Vec<_> = report
        .outputs
        .iter()
        .filter_map(|o| o.run.trace.as_ref().map(|t| (o.name.clone(), t)))
        .collect();
    write_trace_pairs(&dir, "ablation", &traced)?;
    let mut outs = report.outputs.into_iter();
    let mut take = |n: usize| -> Vec<JobOutput> { outs.by_ref().take(n).collect() };

    // --- Consistency model: the same recorder under SC / TSO / RC -------
    // (the paper's central claim: one design for any model with write
    // atomicity; reordering collapses under stricter models but recording
    // works unchanged).
    let mut t = Table::new(
        "Ablation: consistency model — OOO performed / logged reordered (Base-4K)",
        &["workload", "SC", "TSO", "RC"],
    );
    for name in WORKLOADS {
        let mut cells = vec![name.to_string()];
        for o in take(3) {
            cells.push(format!(
                "{} / {}",
                pct(o.run.ooo_fraction()),
                pct(o.run.variants[0].reordered_fraction())
            ));
        }
        t.row(cells);
    }
    t.print();
    t.write_csv(&dir, "ablation_consistency")?;

    // --- Snoop Table size (Opt-INF): aliasing vs reordered fraction -----
    let mut t = Table::new(
        "Ablation: Snoop Table entries per array (Opt-INF)",
        &["workload", "8", "64 (paper)", "512"],
    );
    for name in WORKLOADS {
        let o = take(1).remove(0);
        t.row(vec![
            name.into(),
            pct(o.run.variants[0].reordered_fraction()),
            pct(o.run.variants[1].reordered_fraction()),
            pct(o.run.variants[2].reordered_fraction()),
        ]);
    }
    t.print();
    t.write_csv(&dir, "ablation_snoop_table")?;

    // --- Signature size (Base-INF): false positives vs intervals --------
    let mut t = Table::new(
        "Ablation: signature bits per bank (Base-INF) — intervals recorded",
        &["workload", "64b", "256b (paper)", "1024b"],
    );
    for name in WORKLOADS {
        let o = take(1).remove(0);
        let intervals = |v: usize| -> u64 {
            o.run.variants[v]
                .logs
                .iter()
                .map(|l| l.intervals() as u64)
                .sum()
        };
        t.row(vec![
            name.into(),
            format!("{}", intervals(0)),
            format!("{}", intervals(1)),
            format!("{}", intervals(2)),
        ]);
    }
    t.print();
    t.write_csv(&dir, "ablation_signature")?;

    // --- TRAQ depth: dispatch stalls and reordered fraction -------------
    let mut t = Table::new(
        "Ablation: TRAQ depth (Base-4K) — stall cycles / reordered",
        &["workload", "44", "88", "176 (paper)"],
    );
    for name in WORKLOADS {
        let mut cells = vec![name.to_string()];
        for o in take(3) {
            let stalls: u64 = o.run.core_stats.iter().map(|s| s.traq_stall_cycles).sum();
            cells.push(format!(
                "{stalls} / {}",
                pct(o.run.variants[0].reordered_fraction())
            ));
        }
        t.row(cells);
    }
    t.print();
    t.write_csv(&dir, "ablation_traq")?;

    // --- Counting bandwidth: TRAQ occupancy ------------------------------
    let mut t = Table::new(
        "Ablation: counting reads per cycle — average TRAQ occupancy",
        &["workload", "1", "2 (paper)", "4"],
    );
    for name in WORKLOADS {
        let mut cells = vec![name.to_string()];
        for o in take(3) {
            let s = &o.run.variants[0].stats;
            let avg = s.iter().map(|x| x.traq_avg()).sum::<f64>() / s.len() as f64;
            cells.push(format!("{avg:.1}"));
        }
        t.row(cells);
    }
    t.print();
    t.write_csv(&dir, "ablation_counting")?;

    // --- NMI width: filler entries vs block sizes ------------------------
    let mut t = Table::new(
        "Ablation: NMI field maximum — InorderBlock entries (Base-INF)",
        &["workload", "nmi<=3", "nmi<=15 (paper)", "nmi<=63"],
    );
    for name in WORKLOADS {
        let mut cells = vec![name.to_string()];
        for o in take(3) {
            cells.push(format!("{}", o.run.variants[0].inorder_blocks()));
        }
        t.row(cells);
    }
    t.print();
    t.write_csv(&dir, "ablation_nmi")?;
    Ok(())
}
