//! Ablation studies of RelaxReplay's hardware parameters (the design
//! choices DESIGN.md calls out): Snoop Table size, signature size, TRAQ
//! depth, counting bandwidth, and the NMI field width.
//!
//! Each sweep records the same workloads under custom recorder
//! configurations and reports the recorder-visible consequences.

use relaxreplay::{Design, RecorderConfig};
use rr_cpu::ConsistencyModel;
use rr_experiments::report::{pct, results_dir, Table};
use rr_experiments::ExperimentConfig;
use rr_sim::{record_custom, MachineConfig};
use rr_workloads::by_name;

const WORKLOADS: [&str; 3] = ["fft", "barnes", "radix"];

fn main() {
    let cfg = ExperimentConfig::from_env();
    let machine = MachineConfig::splash_default(cfg.threads);
    let dir = results_dir();

    // --- Consistency model: the same recorder under SC / TSO / RC -------
    // (the paper's central claim: one design for any model with write
    // atomicity; reordering collapses under stricter models but recording
    // works unchanged).
    let mut t = Table::new(
        "Ablation: consistency model — OOO performed / logged reordered (Base-4K)",
        &["workload", "SC", "TSO", "RC"],
    );
    for name in WORKLOADS {
        let w = by_name(name, cfg.threads, cfg.size).expect("known workload");
        let mut cells = vec![name.to_string()];
        for model in [ConsistencyModel::Sc, ConsistencyModel::Tso, ConsistencyModel::Rc] {
            let m = MachineConfig::splash_default(cfg.threads).with_consistency(model);
            let configs = vec![RecorderConfig::splash_default(Design::Base, Some(4096))];
            let r = record_custom(&w.programs, &w.initial_mem, &m, &configs).expect("records");
            cells.push(format!(
                "{} / {}",
                pct(r.ooo_fraction()),
                pct(r.variants[0].reordered_fraction())
            ));
        }
        t.row(cells);
    }
    t.print();
    t.write_csv(&dir, "ablation_consistency").expect("write CSV");

    // --- Snoop Table size (Opt-INF): aliasing vs reordered fraction -----
    let mut t = Table::new(
        "Ablation: Snoop Table entries per array (Opt-INF)",
        &["workload", "8", "64 (paper)", "512"],
    );
    for name in WORKLOADS {
        let w = by_name(name, cfg.threads, cfg.size).expect("known workload");
        let configs: Vec<RecorderConfig> = [8usize, 64, 512]
            .into_iter()
            .map(|entries| RecorderConfig {
                snoop_entries: entries,
                ..RecorderConfig::splash_default(Design::Opt, None)
            })
            .collect();
        let r = record_custom(&w.programs, &w.initial_mem, &machine, &configs).expect("records");
        t.row(vec![
            name.into(),
            pct(r.variants[0].reordered_fraction()),
            pct(r.variants[1].reordered_fraction()),
            pct(r.variants[2].reordered_fraction()),
        ]);
    }
    t.print();
    t.write_csv(&dir, "ablation_snoop_table").expect("write CSV");

    // --- Signature size (Base-INF): false positives vs intervals --------
    let mut t = Table::new(
        "Ablation: signature bits per bank (Base-INF) — intervals recorded",
        &["workload", "64b", "256b (paper)", "1024b"],
    );
    for name in WORKLOADS {
        let w = by_name(name, cfg.threads, cfg.size).expect("known workload");
        let configs: Vec<RecorderConfig> = [64u32, 256, 1024]
            .into_iter()
            .map(|bits| RecorderConfig {
                sig_bits: bits,
                ..RecorderConfig::splash_default(Design::Base, None)
            })
            .collect();
        let r = record_custom(&w.programs, &w.initial_mem, &machine, &configs).expect("records");
        let intervals = |v: usize| -> u64 {
            r.variants[v].logs.iter().map(|l| l.intervals() as u64).sum()
        };
        t.row(vec![
            name.into(),
            format!("{}", intervals(0)),
            format!("{}", intervals(1)),
            format!("{}", intervals(2)),
        ]);
    }
    t.print();
    t.write_csv(&dir, "ablation_signature").expect("write CSV");

    // --- TRAQ depth: dispatch stalls and reordered fraction -------------
    let mut t = Table::new(
        "Ablation: TRAQ depth (Base-4K) — stall cycles / reordered",
        &["workload", "44", "88", "176 (paper)"],
    );
    for name in WORKLOADS {
        let w = by_name(name, cfg.threads, cfg.size).expect("known workload");
        let mut cells = vec![name.to_string()];
        for entries in [44usize, 88, 176] {
            let configs = vec![RecorderConfig {
                traq_entries: entries,
                ..RecorderConfig::splash_default(Design::Base, Some(4096))
            }];
            let r =
                record_custom(&w.programs, &w.initial_mem, &machine, &configs).expect("records");
            let stalls: u64 = r.core_stats.iter().map(|s| s.traq_stall_cycles).sum();
            cells.push(format!(
                "{stalls} / {}",
                pct(r.variants[0].reordered_fraction())
            ));
        }
        t.row(cells);
    }
    t.print();
    t.write_csv(&dir, "ablation_traq").expect("write CSV");

    // --- Counting bandwidth: TRAQ occupancy ------------------------------
    let mut t = Table::new(
        "Ablation: counting reads per cycle — average TRAQ occupancy",
        &["workload", "1", "2 (paper)", "4"],
    );
    for name in WORKLOADS {
        let w = by_name(name, cfg.threads, cfg.size).expect("known workload");
        let mut cells = vec![name.to_string()];
        // Counting bandwidth changes TRAQ dynamics, so each configuration
        // must observe its own run (recorders attached together must agree
        // on TRAQ occupancy; see `FanoutObserver`).
        for count in [1usize, 2, 4] {
            let configs = vec![RecorderConfig {
                count_per_cycle: count,
                ..RecorderConfig::splash_default(Design::Base, Some(4096))
            }];
            let r =
                record_custom(&w.programs, &w.initial_mem, &machine, &configs).expect("records");
            let s = &r.variants[0].stats;
            let avg = s.iter().map(|x| x.traq_avg()).sum::<f64>() / s.len() as f64;
            cells.push(format!("{avg:.1}"));
        }
        t.row(cells);
    }
    t.print();
    t.write_csv(&dir, "ablation_counting").expect("write CSV");

    // --- NMI width: filler entries vs block sizes ------------------------
    let mut t = Table::new(
        "Ablation: NMI field maximum — InorderBlock entries (Base-INF)",
        &["workload", "nmi<=3", "nmi<=15 (paper)", "nmi<=63"],
    );
    for name in WORKLOADS {
        let w = by_name(name, cfg.threads, cfg.size).expect("known workload");
        let mut cells = vec![name.to_string()];
        // The NMI width changes filler allocation and hence TRAQ dynamics:
        // one configuration per run.
        for nmi in [3u32, 15, 63] {
            let configs = vec![RecorderConfig {
                nmi_max: nmi,
                ..RecorderConfig::splash_default(Design::Base, None)
            }];
            let r =
                record_custom(&w.programs, &w.initial_mem, &machine, &configs).expect("records");
            cells.push(format!("{}", r.variants[0].inorder_blocks()));
        }
        t.row(cells);
    }
    t.print();
    t.write_csv(&dir, "ablation_nmi").expect("write CSV");
}
