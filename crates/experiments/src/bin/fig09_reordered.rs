//! Figure 9: fraction of memory accesses logged as reordered.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::{figures, metrics_jsonl, run_suite, write_trace_artifacts, ExperimentConfig};

fn main() {
    let mut cfg = ExperimentConfig::from_env();
    cfg.replay = false;
    if rr_experiments::handle_replay_from(&cfg) {
        return;
    }
    let runs = run_suite(&cfg);
    let t = figures::fig09(&runs);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig09").expect("write CSV");
    write_metrics_jsonl(&dir, "fig09", &metrics_jsonl(&runs)).expect("write metrics");
    write_trace_artifacts(&dir, "fig09", &runs);
}
