//! Figure 9: fraction of memory accesses logged as reordered.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::{figures, metrics_jsonl, run_suite, write_trace_artifacts, ExperimentConfig};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig09: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let mut cfg = ExperimentConfig::from_env();
    cfg.replay = false;
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let runs = run_suite(&cfg)?;
    let t = figures::fig09(&runs);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig09")?;
    write_metrics_jsonl(&dir, "fig09", &metrics_jsonl(&runs))?;
    write_trace_artifacts(&dir, "fig09", &runs)?;
    Ok(())
}
