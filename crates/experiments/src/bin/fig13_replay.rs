//! Figure 13: sequential replay time relative to parallel recording.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::{
    figures, metrics_jsonl, run_corpus_suite, run_suite, write_trace_artifacts, ExperimentConfig,
};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig13: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let cfg = ExperimentConfig::from_env(); // replay enabled by default
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let runs = run_suite(&cfg)?;
    let t = figures::fig13(&runs);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig13")?;
    write_metrics_jsonl(&dir, "fig13", &metrics_jsonl(&runs))?;
    write_trace_artifacts(&dir, "fig13", &runs)?;

    // Corpus shapes replay under the same policy; reported separately so
    // the paper's SPLASH-2 ratios stay comparable to the original figure.
    let corpus = run_corpus_suite(&cfg)?;
    let tc = figures::fig13_corpus(&corpus);
    tc.print();
    tc.write_csv(&dir, "fig13-corpus")?;
    write_metrics_jsonl(&dir, "fig13-corpus", &metrics_jsonl(&corpus))?;
    write_trace_artifacts(&dir, "fig13-corpus", &corpus)?;
    Ok(())
}
