//! Figure 13: sequential replay time relative to parallel recording,
//! plus a replay-engine scaling table — measured wall-clock of the
//! multithreaded DAG executor at 1/2/4/8 workers on the same runs
//! (Opt-4K, every outcome verified). The scaling table lands in
//! `results/fig13-scaling.csv`; measured speedup tracks the host's
//! actual core count, while the modeled column is the list scheduler's
//! host-independent makespan bound.

use std::time::Instant;

use rr_experiments::report::{f2, results_dir, write_metrics_jsonl, Table};
use rr_experiments::{
    figures, metrics_jsonl, prof_entries, run_corpus_suite, run_suite, write_prof_artifacts,
    write_prof_pairs, write_trace_artifacts, ExperimentConfig, WorkloadRun,
};
use rr_replay::prof::ProfEntry;
use rr_replay::{
    patch, replay_parallel, replay_threaded, replay_threaded_profiled, verify, CostModel,
};

/// Worker counts for the measured scaling columns.
const SCALING_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Opt-4K's index in the `RecorderSpec::paper_matrix()` variant order.
const OPT_4K: usize = 1;

fn scaling_table(runs: &[WorkloadRun], size: u32) -> Result<Table, rr_sim::Error> {
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut t = Table::new(
        &format!("Replay-engine scaling (Opt-4K, verified; host cpus {host_cpus})"),
        &["workload", "modeled x", "w1 ms", "w2 x", "w4 x", "w8 x"],
    );
    let cost = CostModel::splash_default();
    for r in runs {
        let v = &r.record.variants[OPT_4K];
        let at = |stage: &str| format!("{} [{}]: {stage}", r.name, v.spec.label());
        let patched: Vec<_> = v
            .logs
            .iter()
            .map(patch)
            .collect::<Result<_, _>>()
            .map_err(|e| rr_sim::Error::from(e).context(at("patch failed")))?;
        // Regenerate the workload by name — generators are deterministic,
        // so `(name, threads, size)` reproduces the recorded programs and
        // initial memory exactly (same contract as `--replay-from`).
        let w = rr_workloads::by_name(r.name, v.logs.len(), size)
            .ok_or_else(|| rr_sim::Error::msg(at("unknown workload")))?;
        let modeled = replay_parallel(
            &w.programs,
            &patched,
            &v.ordering,
            w.initial_mem.clone(),
            &cost,
            v.logs.len(),
        )
        .map_err(|e| rr_sim::Error::from(e).context(at("modeled replay failed")))?
        .speedup();
        let mut secs = Vec::with_capacity(SCALING_WORKERS.len());
        for &workers in &SCALING_WORKERS {
            let start = Instant::now();
            let outcome = replay_threaded(
                &w.programs,
                &patched,
                &v.ordering,
                w.initial_mem.clone(),
                &cost,
                workers,
            )
            .map_err(|e| {
                rr_sim::Error::from(e).context(at(&format!("threaded replay (w={workers})")))
            })?;
            secs.push(start.elapsed().as_secs_f64());
            verify(&r.record.recorded, &outcome).map_err(|e| {
                rr_sim::Error::from(e).context(at(&format!("threaded verify (w={workers})")))
            })?;
        }
        t.row(vec![
            r.name.to_string(),
            f2(modeled),
            format!("{:.3}", secs[0] * 1e3),
            f2(secs[0] / secs[1]),
            f2(secs[0] / secs[2]),
            f2(secs[0] / secs[3]),
        ]);
    }
    Ok(t)
}

/// Blame entries for every run × variant, with a measured engine
/// timeline (span-instrumented threaded replay, verified) attached to
/// each Opt-4K entry.
fn profiled_entries(
    runs: &[WorkloadRun],
    cfg: &ExperimentConfig,
) -> Result<Vec<ProfEntry>, rr_sim::Error> {
    let mut entries = prof_entries(runs, &cfg.cost)?;
    let variants = runs.first().map_or(0, |r| r.record.variants.len());
    for (i, r) in runs.iter().enumerate() {
        let v = &r.record.variants[OPT_4K];
        let at = |stage: &str| format!("{} [{}]: {stage}", r.name, v.spec.label());
        let patched: Vec<_> = v
            .logs
            .iter()
            .map(patch)
            .collect::<Result<_, _>>()
            .map_err(|e| rr_sim::Error::from(e).context(at("patch failed")))?;
        let w = rr_workloads::by_name(r.name, v.logs.len(), cfg.size)
            .ok_or_else(|| rr_sim::Error::msg(at("unknown workload")))?;
        let (outcome, engine) = replay_threaded_profiled(
            &w.programs,
            &patched,
            Some(&v.ordering),
            w.initial_mem.clone(),
            &cfg.cost,
            cfg.threads,
        )
        .map_err(|e| rr_sim::Error::from(e).context(at("profiled replay failed")))?;
        verify(&r.record.recorded, &outcome)
            .map_err(|e| rr_sim::Error::from(e).context(at("profiled verify failed")))?;
        entries[i * variants + OPT_4K].engine = Some(engine);
    }
    Ok(entries)
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig13: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let cfg = ExperimentConfig::from_env(); // replay enabled by default
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let runs = run_suite(&cfg)?;
    let t = figures::fig13(&runs);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig13")?;
    write_metrics_jsonl(&dir, "fig13", &metrics_jsonl(&runs))?;
    write_trace_artifacts(&dir, "fig13", &runs)?;
    if cfg.prof {
        write_prof_pairs(&dir, "fig13", &profiled_entries(&runs, &cfg)?)?;
    }

    let ts = scaling_table(&runs, cfg.size)?;
    ts.print();
    ts.write_csv(&dir, "fig13-scaling")?;

    // Corpus shapes replay under the same policy; reported separately so
    // the paper's SPLASH-2 ratios stay comparable to the original figure.
    let corpus = run_corpus_suite(&cfg)?;
    let tc = figures::fig13_corpus(&corpus);
    tc.print();
    tc.write_csv(&dir, "fig13-corpus")?;
    write_metrics_jsonl(&dir, "fig13-corpus", &metrics_jsonl(&corpus))?;
    write_trace_artifacts(&dir, "fig13-corpus", &corpus)?;
    if cfg.prof {
        write_prof_artifacts(&dir, "fig13-corpus", &corpus, &cfg.cost)?;
    }
    Ok(())
}
