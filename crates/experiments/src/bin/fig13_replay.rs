//! Figure 13: sequential replay time relative to parallel recording.

use rr_experiments::report::results_dir;
use rr_experiments::{figures, run_suite, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env(); // replay enabled by default
    let runs = run_suite(&cfg);
    let t = figures::fig13(&runs);
    t.print();
    t.write_csv(&results_dir(), "fig13").expect("write CSV");
}
