//! Figure 13: sequential replay time relative to parallel recording.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::{figures, metrics_jsonl, run_suite, write_trace_artifacts, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env(); // replay enabled by default
    if rr_experiments::handle_replay_from(&cfg) {
        return;
    }
    let runs = run_suite(&cfg);
    let t = figures::fig13(&runs);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig13").expect("write CSV");
    write_metrics_jsonl(&dir, "fig13", &metrics_jsonl(&runs)).expect("write metrics");
    write_trace_artifacts(&dir, "fig13", &runs);
}
