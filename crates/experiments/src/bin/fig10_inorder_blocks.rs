//! Figure 10: InorderBlock entry counts, Opt normalized to Base.

use rr_experiments::report::results_dir;
use rr_experiments::{figures, run_suite, ExperimentConfig};

fn main() {
    let mut cfg = ExperimentConfig::from_env();
    cfg.replay = false;
    let runs = run_suite(&cfg);
    let t = figures::fig10(&runs);
    t.print();
    t.write_csv(&results_dir(), "fig10").expect("write CSV");
}
