//! Figure 10: InorderBlock entry counts, Opt normalized to Base.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::{figures, metrics_jsonl, run_suite, write_trace_artifacts, ExperimentConfig};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig10: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let mut cfg = ExperimentConfig::from_env();
    cfg.replay = false;
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let runs = run_suite(&cfg)?;
    let t = figures::fig10(&runs);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig10")?;
    write_metrics_jsonl(&dir, "fig10", &metrics_jsonl(&runs))?;
    write_trace_artifacts(&dir, "fig10", &runs)?;
    Ok(())
}
