//! Figure 12: TRAQ occupancy (average, peak, distribution) and the
//! recording-overhead evidence of §5.3.

use rr_experiments::report::results_dir;
use rr_experiments::{figures, run_suite, ExperimentConfig};

fn main() {
    let mut cfg = ExperimentConfig::from_env();
    cfg.replay = false;
    let runs = run_suite(&cfg);
    let t = figures::fig12(&runs);
    t.print();
    t.write_csv(&results_dir(), "fig12").expect("write CSV");
    let h = figures::fig12_histogram(&runs, &["fft", "radix", "barnes", "water_nsq"]);
    h.print();
    h.write_csv(&results_dir(), "fig12_hist").expect("write CSV");
}
