//! Figure 12: TRAQ occupancy (average, peak, distribution) and the
//! recording-overhead evidence of §5.3.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::{figures, metrics_jsonl, run_suite, write_trace_artifacts, ExperimentConfig};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig12: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let mut cfg = ExperimentConfig::from_env();
    cfg.replay = false;
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let runs = run_suite(&cfg)?;
    let t = figures::fig12(&runs);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig12")?;
    let h = figures::fig12_histogram(&runs, &["fft", "radix", "barnes", "water_nsq"]);
    h.print();
    h.write_csv(&dir, "fig12_hist")?;
    write_metrics_jsonl(&dir, "fig12", &metrics_jsonl(&runs))?;
    write_trace_artifacts(&dir, "fig12", &runs)?;
    Ok(())
}
