//! Figure 11: uncompressed log size and log bandwidth.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::{
    figures, metrics_jsonl, run_corpus_suite, run_suite, write_trace_artifacts, ExperimentConfig,
};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig11: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let mut cfg = ExperimentConfig::from_env();
    cfg.replay = false;
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let runs = run_suite(&cfg)?;
    let t = figures::fig11(&runs);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig11")?;
    write_metrics_jsonl(&dir, "fig11", &metrics_jsonl(&runs))?;
    write_trace_artifacts(&dir, "fig11", &runs)?;

    // The data-structure corpus gets its own table so the paper's
    // SPLASH-2 AVERAGE row stays comparable to the original figure.
    let corpus = run_corpus_suite(&cfg)?;
    let tc = figures::fig11_corpus(&corpus);
    tc.print();
    tc.write_csv(&dir, "fig11-corpus")?;
    write_metrics_jsonl(&dir, "fig11-corpus", &metrics_jsonl(&corpus))?;
    write_trace_artifacts(&dir, "fig11-corpus", &corpus)?;
    Ok(())
}
