//! Extension experiment (paper §3.6, §5.4 closing remark): parallel replay
//! speedup when RelaxReplay's intervals are ordered by the recorded
//! partial order instead of the QuickRec total order. Compares snoopy
//! (broadcast observers ⇒ conservative edges) against directory coherence
//! (filtered observers ⇒ real parallelism). Recording runs as one
//! parallel sweep (one job per workload × coherence mode).
//!
//! Two speedup columns per workload × coherence mode:
//!
//! * **modeled** — the cost-model list scheduler's makespan ratio
//!   (`sequential_cycles / parallel_cycles`) at `--threads` replay
//!   cores. Host-independent; this is the paper's metric.
//! * **measured wN** — wall-clock speedup of the multithreaded replay
//!   engine at N OS workers, relative to the same engine at one worker
//!   (best of [`MEASURE_REPS`] repetitions, outcome verified every
//!   time). Tracks the modeled bound only when the host actually has N
//!   hardware threads — on a smaller host the extra workers time-slice
//!   one core and the column reports ≈1× or below; the printed
//!   `host cpus` line makes that legible.

use std::time::Instant;

use rr_experiments::report::{f2, results_dir, write_metrics_jsonl, Table};
use rr_experiments::{write_prof_pairs, write_trace_pairs, ExperimentConfig};
use rr_replay::prof::ProfEntry;
use rr_replay::{
    critical_path_blame, patch, replay_parallel, replay_threaded, replay_threaded_profiled, verify,
    CostModel, IntervalDag, PatchedLog,
};
use rr_sim::{run_sweep, MachineConfig, RecorderSpec, ReplayPolicy, SweepJob};
use rr_workloads::suite;

/// Worker counts for the measured wall-clock columns.
const MEASURED_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Wall-clock repetitions per worker count; the best is reported.
const MEASURE_REPS: usize = 3;

fn patched_logs(
    w: &rr_workloads::Workload,
    result: &rr_sim::RunResult,
) -> Result<Vec<PatchedLog>, rr_sim::Error> {
    result.variants[0]
        .logs
        .iter()
        .map(patch)
        .collect::<Result<_, _>>()
        .map_err(|e| rr_sim::Error::from(e).context(format!("{}: patch", w.name)))
}

/// Modeled makespan speedup from the cost-model list scheduler.
fn modeled_speedup(
    w: &rr_workloads::Workload,
    result: &rr_sim::RunResult,
    patched: &[PatchedLog],
    workers: usize,
) -> Result<f64, rr_sim::Error> {
    let v = &result.variants[0];
    let outcome = replay_parallel(
        &w.programs,
        patched,
        &v.ordering,
        w.initial_mem.clone(),
        &CostModel::splash_default(),
        workers,
    )
    .map_err(|e| rr_sim::Error::from(e).context(format!("{}: parallel replay", w.name)))?;
    verify(&result.recorded, &outcome.outcome).map_err(|e| {
        rr_sim::Error::from(e).context(format!("{}: parallel replay must verify", w.name))
    })?;
    Ok(outcome.speedup())
}

/// Best-of-[`MEASURE_REPS`] wall-clock seconds for the multithreaded
/// engine at each of [`MEASURED_WORKERS`], verifying every outcome.
fn measured_secs(
    w: &rr_workloads::Workload,
    result: &rr_sim::RunResult,
    patched: &[PatchedLog],
) -> Result<Vec<f64>, rr_sim::Error> {
    let v = &result.variants[0];
    MEASURED_WORKERS
        .iter()
        .map(|&workers| {
            let mut best = f64::INFINITY;
            for _ in 0..MEASURE_REPS {
                let start = Instant::now();
                let outcome = replay_threaded(
                    &w.programs,
                    patched,
                    &v.ordering,
                    w.initial_mem.clone(),
                    &CostModel::splash_default(),
                    workers,
                )
                .map_err(|e| {
                    rr_sim::Error::from(e)
                        .context(format!("{}: threaded replay (w={workers})", w.name))
                })?;
                best = best.min(start.elapsed().as_secs_f64());
                verify(&result.recorded, &outcome).map_err(|e| {
                    rr_sim::Error::from(e).context(format!(
                        "{}: threaded replay must verify (w={workers})",
                        w.name
                    ))
                })?;
            }
            Ok(best)
        })
        .collect()
}

/// One `--prof` sidecar entry for a workload × coherence-mode run:
/// critical-path blame over the recorded partial order plus a measured,
/// verified engine timeline at `workers` OS workers.
fn prof_entry(
    w: &rr_workloads::Workload,
    mode: &str,
    result: &rr_sim::RunResult,
    patched: &[PatchedLog],
    workers: usize,
) -> Result<ProfEntry, rr_sim::Error> {
    let v = &result.variants[0];
    let at = |stage: &str| format!("{}@{mode}: {stage}", w.name);
    let dag = IntervalDag::partial_order(v.logs.len(), patched, &v.ordering)
        .map_err(|e| rr_sim::Error::from(e).context(at("dag failed")))?;
    let blame = critical_path_blame(&dag, &CostModel::splash_default());
    let (outcome, engine) = replay_threaded_profiled(
        &w.programs,
        patched,
        Some(&v.ordering),
        w.initial_mem.clone(),
        &CostModel::splash_default(),
        workers,
    )
    .map_err(|e| rr_sim::Error::from(e).context(at("profiled replay failed")))?;
    verify(&result.recorded, &outcome)
        .map_err(|e| rr_sim::Error::from(e).context(at("profiled verify failed")))?;
    Ok(ProfEntry {
        run: format!("{}@{mode}", w.name),
        variant: v.spec.label(),
        blame,
        engine: Some(engine),
    })
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("parallel_replay: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let cfg = ExperimentConfig::from_env();
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let specs = vec![RecorderSpec {
        design: relaxreplay::Design::Opt,
        max_interval: Some(4096),
    }];
    let snoopy = MachineConfig::splash_default(cfg.threads).with_trace(cfg.trace);
    let directory = MachineConfig::splash_default(cfg.threads)
        .with_directory()
        .with_trace(cfg.trace);

    let workloads = suite(cfg.threads, cfg.size);
    let jobs: Vec<SweepJob> = workloads
        .iter()
        .flat_map(|w| {
            [("snoopy", &snoopy), ("directory", &directory)]
                .into_iter()
                .map(|(mode, machine)| {
                    SweepJob::from_specs(
                        format!("{}@{mode}", w.name),
                        w.programs.clone(),
                        w.initial_mem.clone(),
                        machine.clone(),
                        &specs,
                        ReplayPolicy::Skip,
                    )
                })
        })
        .collect();
    let report = run_sweep(&jobs, cfg.workers)
        .map_err(|e| rr_sim::Error::from(e).context("parallel-replay sweep"))?;
    let dir = results_dir();
    write_metrics_jsonl(&dir, "parallel_replay", &report.to_jsonl())?;
    let traced: Vec<_> = report
        .outputs
        .iter()
        .filter_map(|o| o.run.trace.as_ref().map(|t| (o.name.clone(), t)))
        .collect();
    write_trace_pairs(&dir, "parallel_replay", &traced)?;

    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut t = Table::new(
        &format!(
            "Extension: parallel replay on {} replay cores (Opt-4K, verified; host cpus {host_cpus})",
            cfg.threads
        ),
        &[
            "workload",
            "mode",
            "modeled x",
            "meas w1 ms",
            "meas w2 x",
            "meas w4 x",
            "meas w8 x",
        ],
    );
    let (mut ss, mut sd) = (0.0, 0.0);
    let mut prof = Vec::new();
    for (i, w) in workloads.iter().enumerate() {
        for (mode, j) in [("snoopy", 2 * i), ("directory", 2 * i + 1)] {
            let result = &report.outputs[j].run;
            let patched = patched_logs(w, result)?;
            if cfg.prof {
                prof.push(prof_entry(w, mode, result, &patched, cfg.threads)?);
            }
            let modeled = modeled_speedup(w, result, &patched, cfg.threads)?;
            match mode {
                "snoopy" => ss += modeled,
                _ => sd += modeled,
            }
            let secs = measured_secs(w, result, &patched)?;
            let base = secs[0];
            t.row(vec![
                w.name.into(),
                mode.into(),
                f2(modeled),
                format!("{:.3}", base * 1e3),
                f2(base / secs[1]),
                f2(base / secs[2]),
                f2(base / secs[3]),
            ]);
        }
    }
    let n = workloads.len() as f64;
    t.row(vec![
        "AVERAGE modeled".into(),
        "snoopy/dir".into(),
        format!("{} / {}", f2(ss / n), f2(sd / n)),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.print();
    println!(
        "measured columns are wall-clock (best of {MEASURE_REPS}); with {host_cpus} host \
         cpu(s) the engine can exploit at most {host_cpus}-way parallelism, so measured \
         scaling beyond that reflects scheduling overhead, not the DAG"
    );
    t.write_csv(&dir, "parallel_replay")?;
    write_prof_pairs(&dir, "parallel_replay", &prof)?;
    Ok(())
}
