//! Extension experiment (paper §3.6, §5.4 closing remark): parallel replay
//! speedup when RelaxReplay's intervals are ordered by the recorded
//! partial order instead of the QuickRec total order. Compares snoopy
//! (broadcast observers ⇒ conservative edges) against directory coherence
//! (filtered observers ⇒ real parallelism). Recording runs as one
//! parallel sweep (one job per workload × coherence mode).

use rr_experiments::report::{f2, results_dir, write_metrics_jsonl, Table};
use rr_experiments::{write_trace_pairs, ExperimentConfig};
use rr_replay::{patch, replay_parallel, verify, CostModel};
use rr_sim::{run_sweep, MachineConfig, RecorderSpec, ReplayPolicy, SweepJob};
use rr_workloads::suite;

fn speedup(
    w: &rr_workloads::Workload,
    result: &rr_sim::RunResult,
    workers: usize,
) -> Result<f64, rr_sim::Error> {
    let v = &result.variants[0];
    let patched: Vec<_> = v
        .logs
        .iter()
        .map(patch)
        .collect::<Result<_, _>>()
        .map_err(|e| rr_sim::Error::from(e).context(format!("{}: patch", w.name)))?;
    let outcome = replay_parallel(
        &w.programs,
        &patched,
        &v.ordering,
        w.initial_mem.clone(),
        &CostModel::splash_default(),
        workers,
    )
    .map_err(|e| rr_sim::Error::from(e).context(format!("{}: parallel replay", w.name)))?;
    verify(&result.recorded, &outcome.outcome).map_err(|e| {
        rr_sim::Error::from(e).context(format!("{}: parallel replay must verify", w.name))
    })?;
    Ok(outcome.speedup())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("parallel_replay: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let cfg = ExperimentConfig::from_env();
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let specs = vec![RecorderSpec {
        design: relaxreplay::Design::Opt,
        max_interval: Some(4096),
    }];
    let snoopy = MachineConfig::splash_default(cfg.threads).with_trace(cfg.trace);
    let directory = MachineConfig::splash_default(cfg.threads)
        .with_directory()
        .with_trace(cfg.trace);

    let workloads = suite(cfg.threads, cfg.size);
    let jobs: Vec<SweepJob> = workloads
        .iter()
        .flat_map(|w| {
            [("snoopy", &snoopy), ("directory", &directory)]
                .into_iter()
                .map(|(mode, machine)| {
                    SweepJob::from_specs(
                        format!("{}@{mode}", w.name),
                        w.programs.clone(),
                        w.initial_mem.clone(),
                        machine.clone(),
                        &specs,
                        ReplayPolicy::Skip,
                    )
                })
        })
        .collect();
    let report = run_sweep(&jobs, cfg.workers)
        .map_err(|e| rr_sim::Error::from(e).context("parallel-replay sweep"))?;
    let dir = results_dir();
    write_metrics_jsonl(&dir, "parallel_replay", &report.to_jsonl())?;
    let traced: Vec<_> = report
        .outputs
        .iter()
        .filter_map(|o| o.run.trace.as_ref().map(|t| (o.name.clone(), t)))
        .collect();
    write_trace_pairs(&dir, "parallel_replay", &traced)?;

    let mut t = Table::new(
        &format!(
            "Extension: parallel replay speedup on {} replay cores (Opt-4K, verified)",
            cfg.threads
        ),
        &["workload", "snoopy", "directory"],
    );
    let (mut ss, mut sd) = (0.0, 0.0);
    for (i, w) in workloads.iter().enumerate() {
        let rs = &report.outputs[2 * i].run;
        let rd = &report.outputs[2 * i + 1].run;
        let (a, b) = (speedup(w, rs, cfg.threads)?, speedup(w, rd, cfg.threads)?);
        ss += a;
        sd += b;
        t.row(vec![w.name.into(), f2(a), f2(b)]);
    }
    let n = workloads.len() as f64;
    t.row(vec!["AVERAGE".into(), f2(ss / n), f2(sd / n)]);
    t.print();
    t.write_csv(&dir, "parallel_replay")?;
    Ok(())
}
