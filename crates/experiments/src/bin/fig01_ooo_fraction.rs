//! Figure 1: fraction of memory accesses performed out of program order.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::{figures, metrics_jsonl, run_suite, write_trace_artifacts, ExperimentConfig};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig01: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let mut cfg = ExperimentConfig::from_env();
    cfg.replay = false;
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let runs = run_suite(&cfg)?;
    let t = figures::fig01(&runs);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig01")?;
    write_metrics_jsonl(&dir, "fig01", &metrics_jsonl(&runs))?;
    write_trace_artifacts(&dir, "fig01", &runs)?;
    Ok(())
}
