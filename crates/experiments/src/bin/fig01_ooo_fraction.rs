//! Figure 1: fraction of memory accesses performed out of program order.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::{figures, metrics_jsonl, run_suite, write_trace_artifacts, ExperimentConfig};

fn main() {
    let mut cfg = ExperimentConfig::from_env();
    cfg.replay = false;
    if rr_experiments::handle_replay_from(&cfg) {
        return;
    }
    let runs = run_suite(&cfg);
    let t = figures::fig01(&runs);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig01").expect("write CSV");
    write_metrics_jsonl(&dir, "fig01", &metrics_jsonl(&runs)).expect("write metrics");
    write_trace_artifacts(&dir, "fig01", &runs);
}
