//! Figure 14: recording behaviour at 4, 8 and 16 cores.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::runner::run_scalability;
use rr_experiments::{figures, metrics_jsonl, write_trace_pairs, ExperimentConfig};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig14: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let cfg = ExperimentConfig::from_env();
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let results = run_scalability(&cfg, &[4, 8, 16])?;
    let t = figures::fig14(&results);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig14")?;
    let mut jsonl = String::new();
    for (_, runs) in &results {
        jsonl.push_str(&metrics_jsonl(runs));
    }
    write_metrics_jsonl(&dir, "fig14", &jsonl)?;
    let traced: Vec<_> = results
        .iter()
        .flat_map(|(_, runs)| runs)
        .filter_map(|r| r.record.trace.as_ref().map(|t| (r.label.clone(), t)))
        .collect();
    write_trace_pairs(&dir, "fig14", &traced)?;
    Ok(())
}
