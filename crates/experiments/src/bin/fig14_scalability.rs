//! Figure 14: recording behaviour at 4, 8 and 16 cores.

use rr_experiments::report::results_dir;
use rr_experiments::runner::run_scalability;
use rr_experiments::{figures, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let results = run_scalability(&cfg, &[4, 8, 16]);
    let t = figures::fig14(&results);
    t.print();
    t.write_csv(&results_dir(), "fig14").expect("write CSV");
}
