//! Figure 14: recording behaviour at 4, 8 and 16 cores.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::runner::run_scalability;
use rr_experiments::{figures, metrics_jsonl, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env();
    if rr_experiments::handle_replay_from(&cfg) {
        return;
    }
    let results = run_scalability(&cfg, &[4, 8, 16]);
    let t = figures::fig14(&results);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "fig14").expect("write CSV");
    let mut jsonl = String::new();
    for (_, runs) in &results {
        jsonl.push_str(&metrics_jsonl(runs));
    }
    write_metrics_jsonl(&dir, "fig14", &jsonl).expect("write metrics");
}
