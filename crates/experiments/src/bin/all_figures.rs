//! Regenerates every table and figure of the paper's evaluation from one
//! set of recorded executions (plus the separate scalability sweep), and
//! writes CSVs to the results directory.

use rr_experiments::report::results_dir;
use rr_experiments::runner::run_scalability;
use rr_experiments::{figures, run_suite, ExperimentConfig};
use rr_sim::MachineConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let dir = results_dir();
    eprintln!(
        "running the suite: {} cores, size {} (override with RR_THREADS / RR_SIZE)",
        cfg.threads, cfg.size
    );

    let t1 = figures::table1(&MachineConfig::splash_default(cfg.threads));
    t1.print();
    t1.write_csv(&dir, "table1").expect("write CSV");

    let runs = run_suite(&cfg);
    for (t, slug) in [
        (figures::fig01(&runs), "fig01"),
        (figures::fig09(&runs), "fig09"),
        (figures::fig10(&runs), "fig10"),
        (figures::fig11(&runs), "fig11"),
        (figures::fig12(&runs), "fig12"),
        (
            figures::fig12_histogram(&runs, &["fft", "radix", "barnes", "water_nsq"]),
            "fig12_hist",
        ),
        (figures::fig13(&runs), "fig13"),
    ] {
        t.print();
        t.write_csv(&dir, slug).expect("write CSV");
    }

    eprintln!("running the scalability sweep (4/8/16 cores)...");
    let scal = run_scalability(&cfg, &[4, 8, 16]);
    let t = figures::fig14(&scal);
    t.print();
    t.write_csv(&dir, "fig14").expect("write CSV");
    eprintln!("CSVs written to {}", dir.display());
}
