//! Regenerates every table and figure of the paper's evaluation from one
//! set of recorded executions (plus the separate scalability sweep), and
//! writes CSVs plus JSONL metrics sidecars to the results directory.

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::runner::run_scalability;
use rr_experiments::{
    figures, metrics_jsonl, run_suite_timed, write_trace_artifacts, ExperimentConfig,
};
use rr_sim::MachineConfig;

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("all_figures: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let cfg = ExperimentConfig::from_env();
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let dir = results_dir();
    eprintln!(
        "running the suite: {} cores, size {}, {} sweep workers \
         (override with RR_THREADS / RR_SIZE / --workers N)",
        cfg.threads,
        cfg.size,
        if cfg.workers == 0 {
            "host".to_string()
        } else {
            cfg.workers.to_string()
        }
    );

    let t1 = figures::table1(&MachineConfig::splash_default(cfg.threads));
    t1.print();
    t1.write_csv(&dir, "table1")?;

    let suite_run = run_suite_timed(&cfg)?;
    eprintln!(
        "suite sweep: {} runs on {} workers in {:.2}s",
        suite_run.runs.len(),
        suite_run.workers,
        suite_run.wall_ns as f64 / 1e9
    );
    let runs = suite_run.runs;
    for (t, slug) in [
        (figures::fig01(&runs), "fig01"),
        (figures::fig09(&runs), "fig09"),
        (figures::fig10(&runs), "fig10"),
        (figures::fig11(&runs), "fig11"),
        (figures::fig12(&runs), "fig12"),
        (
            figures::fig12_histogram(&runs, &["fft", "radix", "barnes", "water_nsq"]),
            "fig12_hist",
        ),
        (figures::fig13(&runs), "fig13"),
    ] {
        t.print();
        t.write_csv(&dir, slug)?;
    }
    write_metrics_jsonl(&dir, "all_figures", &metrics_jsonl(&runs))?;
    write_trace_artifacts(&dir, "all_figures", &runs)?;

    eprintln!("running the scalability sweep (4/8/16 cores)...");
    let scal = run_scalability(&cfg, &[4, 8, 16])?;
    let t = figures::fig14(&scal);
    t.print();
    t.write_csv(&dir, "fig14")?;
    let mut jsonl = String::new();
    for (_, runs) in &scal {
        jsonl.push_str(&metrics_jsonl(runs));
    }
    write_metrics_jsonl(&dir, "fig14", &jsonl)?;

    let summary = figures::summary(&runs);
    summary.print();
    summary.write_csv(&dir, "summary")?;
    eprintln!("CSVs and metrics sidecars written to {}", dir.display());
    Ok(())
}
