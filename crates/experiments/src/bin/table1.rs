//! Prints Table 1 (architectural parameters of the simulated machine).

use rr_experiments::report::results_dir;
use rr_experiments::{figures, ExperimentConfig};
use rr_sim::MachineConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let t = figures::table1(&MachineConfig::splash_default(cfg.threads));
    t.print();
    t.write_csv(&results_dir(), "table1").expect("write CSV");
}
