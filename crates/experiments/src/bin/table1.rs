//! Prints Table 1 (architectural parameters of the simulated machine).

use rr_experiments::report::{results_dir, write_metrics_jsonl};
use rr_experiments::{figures, ExperimentConfig};
use rr_sim::{metrics, MachineConfig, MetricsRegistry, PhaseNanos};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("table1: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), rr_sim::Error> {
    let cfg = ExperimentConfig::from_env();
    if rr_experiments::handle_replay_from(&cfg)? {
        return Ok(());
    }
    let machine = MachineConfig::splash_default(cfg.threads);
    let t = figures::table1(&machine);
    t.print();
    let dir = results_dir();
    t.write_csv(&dir, "table1")?;

    // Table 1 runs no simulation; its sidecar records the machine's
    // parameters so downstream tooling sees the campaign configuration.
    let mut m = MetricsRegistry::default();
    m.set("machine.cores", machine.num_cores as u64);
    m.set("machine.rob_entries", machine.cpu.rob_entries as u64);
    m.set("machine.lsq_entries", machine.cpu.lsq_entries as u64);
    m.set("machine.issue_width", machine.cpu.issue_width as u64);
    m.set("machine.l1_bytes", machine.mem.l1_bytes as u64);
    m.set(
        "machine.l2_bytes_per_core",
        machine.mem.l2_bytes_per_core as u64,
    );
    let line = format!(
        "{}\n",
        metrics::jsonl_object("table1", 0, &m, &PhaseNanos::default())
    );
    write_metrics_jsonl(&dir, "table1", &line)?;
    Ok(())
}
