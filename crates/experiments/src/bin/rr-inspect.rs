//! `rr-inspect` — offline forensics for RelaxReplay artifacts.
//!
//! ```text
//! rr-inspect stat  <file.rrlog | run-dir>     chunk map, entry histogram,
//!                                             per-interval reordered density
//! rr-inspect dump  <file.rrlog> [--limit N]   print decoded entries
//! rr-inspect check <file.rrlog | dir>         verify integrity (exit 1 on damage)
//! rr-inspect dag   <run-dir> [--dot DIR]      interval-DAG stats per variant
//!                                             (+ Graphviz export with --dot)
//! rr-inspect trace <trace.jsonl> [-o out.json] convert a trace sidecar to
//!                                             Chrome/Perfetto trace JSON
//! ```
//!
//! `check` and `dag` on a directory accept either one run directory (it
//! contains `manifest.txt`) or a `--save-logs` root holding many runs; a
//! run check also validates the `truth.bin` ground-truth sidecar.
//!
//! `dag` patches each variant's logs and builds the replay interval DAG —
//! the recorded partial order when the run carries an `ordering.bin`
//! sidecar, otherwise the timestamp total order — and reports the node and
//! edge counts, critical-path length, maximum antichain width, and the
//! ideal speedup bound `nodes / critical_path` that the parallel replay
//! engine cannot exceed (paper §3.6).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use relaxreplay::wire::{chunk_map, decode_chunked_recover, decode_chunked_skip};
use relaxreplay::LogEntry;
use rr_experiments::report::Table;

const USAGE: &str = "usage:
  rr-inspect stat  <file.rrlog | run-dir>
  rr-inspect dump  <file.rrlog> [--limit N]
  rr-inspect check <file.rrlog | dir>
  rr-inspect dag   <run-dir> [--dot DIR]
  rr-inspect trace <trace.jsonl> [-o out.json]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "stat" => cmd_stat(rest),
            "dump" => cmd_dump(rest),
            "check" => cmd_check(rest),
            "dag" => cmd_dag(rest),
            "trace" => cmd_trace(rest),
            "-h" | "--help" | "help" => {
                println!("{USAGE}");
                0
            }
            other => {
                eprintln!("unknown command {other:?}\n{USAGE}");
                2
            }
        },
        None => {
            eprintln!("{USAGE}");
            2
        }
    };
    ExitCode::from(code)
}

fn one_path(args: &[String], cmd: &str) -> Result<PathBuf, u8> {
    match args.first() {
        Some(p) => Ok(PathBuf::from(p)),
        None => {
            eprintln!("rr-inspect {cmd}: missing path\n{USAGE}");
            Err(2)
        }
    }
}

// ---------------------------------------------------------------------------
// stat
// ---------------------------------------------------------------------------

fn cmd_stat(args: &[String]) -> u8 {
    let path = match one_path(args, "stat") {
        Ok(p) => p,
        Err(c) => return c,
    };
    if path.is_dir() {
        stat_run_dir(&path)
    } else {
        stat_file(&path)
    }
}

fn entry_name(e: &LogEntry) -> &'static str {
    match e {
        LogEntry::InorderBlock { .. } => "InorderBlock",
        LogEntry::ReorderedLoad { .. } => "ReorderedLoad",
        LogEntry::ReorderedStore { .. } => "ReorderedStore",
        LogEntry::ReorderedRmw { .. } => "ReorderedRmw",
        LogEntry::IntervalFrame { .. } => "IntervalFrame",
    }
}

/// Reordered entries per interval: one count per `IntervalFrame`, plus the
/// count of trailing entries after the last frame if any (an unterminated
/// tail, e.g. on a truncated file).
fn reordered_density(entries: &[LogEntry]) -> Vec<u64> {
    let mut per_interval = Vec::new();
    let mut current = 0u64;
    let mut tail = false;
    for e in entries {
        match e {
            LogEntry::IntervalFrame { .. } => {
                per_interval.push(current);
                current = 0;
                tail = false;
            }
            LogEntry::InorderBlock { .. } => tail = true,
            _ => {
                current += 1;
                tail = true;
            }
        }
    }
    if tail {
        per_interval.push(current);
    }
    per_interval
}

fn stat_file(path: &Path) -> u8 {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return 1;
        }
    };
    let (core, chunks, map_err) = match chunk_map(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return 1;
        }
    };
    println!(
        "{}: core {}, {} bytes, {} chunk(s)",
        path.display(),
        core.index(),
        bytes.len(),
        chunks.len()
    );

    let mut t = Table::new(
        "chunk map",
        &["chunk", "offset", "payload B", "entries", "crc"],
    );
    for c in &chunks {
        t.row(vec![
            format!("{}", c.index),
            format!("{}", c.offset),
            format!("{}", c.payload_bytes),
            format!("{}", c.entries),
            if c.crc_ok { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    t.print();

    // The lenient decoder skips damaged chunks, so the histogram totals
    // always agree with the chunk-map table's per-chunk entry counts —
    // including the chunks *after* a corrupt one.
    let (log, decode_err) = decode_chunked_skip(&bytes);
    let mut hist: Vec<(&'static str, u64)> = Vec::new();
    for e in &log.entries {
        let name = entry_name(e);
        match hist.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => hist.push((name, 1)),
        }
    }
    let mut t = Table::new("entry histogram", &["entry", "count"]);
    for (name, count) in &hist {
        t.row(vec![(*name).to_string(), format!("{count}")]);
    }
    t.row(vec!["TOTAL".into(), format!("{}", log.entries.len())]);
    t.print();

    let density = reordered_density(&log.entries);
    if density.is_empty() {
        println!("no intervals decoded");
    } else {
        let total: u64 = density.iter().sum();
        let max = density.iter().copied().max().unwrap_or(0);
        println!(
            "reordered density: {} interval(s), {:.2} reordered/interval avg, {max} max",
            density.len(),
            total as f64 / density.len() as f64
        );
    }

    match map_err.or(decode_err) {
        None => {
            println!("integrity: ok");
            0
        }
        Some(e) => {
            println!("integrity: DAMAGED — {e}");
            1
        }
    }
}

fn stat_run_dir(run_dir: &Path) -> u8 {
    let manifest_path = run_dir.join("manifest.txt");
    let manifest = match std::fs::read_to_string(&manifest_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!(
                "{}: {e} (expected a run directory saved by --save-logs)",
                manifest_path.display()
            );
            return 1;
        }
    };
    let mut lines = manifest.lines();
    let Some(cores) = lines
        .next()
        .and_then(|l| l.strip_prefix("cores "))
        .and_then(|n| n.parse::<usize>().ok())
    else {
        eprintln!("{}: manifest missing cores line", manifest_path.display());
        return 1;
    };
    println!("{}: {cores} core(s)", run_dir.display());

    let mut code = 0u8;
    let mut t = Table::new(
        "variants",
        &["variant", "core", "bytes", "chunks", "entries", "crc"],
    );
    for label in lines.filter(|l| !l.is_empty()) {
        for k in 0..cores {
            let path = run_dir.join(label).join(format!("core{k}.rrlog"));
            let row = match std::fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|b| {
                    chunk_map(&b)
                        .map(|(_, chunks, err)| (b.len(), chunks, err))
                        .map_err(|e| e.to_string())
                }) {
                Ok((bytes, chunks, err)) => {
                    if err.is_some() {
                        code = 1;
                    }
                    vec![
                        label.to_string(),
                        format!("{k}"),
                        format!("{bytes}"),
                        format!("{}", chunks.len()),
                        format!("{}", chunks.iter().map(|c| c.entries).sum::<usize>()),
                        match err {
                            None => "ok".to_string(),
                            Some(e) => format!("DAMAGED ({e})"),
                        },
                    ]
                }
                Err(e) => {
                    code = 1;
                    vec![
                        label.to_string(),
                        format!("{k}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("ERROR ({e})"),
                    ]
                }
            };
            t.row(row);
        }
    }
    t.print();
    for sidecar in ["truth.bin", "trace.jsonl", "trace.json"] {
        let p = run_dir.join(sidecar);
        if let Ok(meta) = std::fs::metadata(&p) {
            println!("{sidecar}: {} bytes", meta.len());
        }
    }
    code
}

// ---------------------------------------------------------------------------
// dump
// ---------------------------------------------------------------------------

fn cmd_dump(args: &[String]) -> u8 {
    let path = match one_path(args, "dump") {
        Ok(p) => p,
        Err(c) => return c,
    };
    let mut limit = usize::MAX;
    let mut rest = args[1..].iter();
    while let Some(a) = rest.next() {
        if a == "--limit" {
            if let Some(n) = rest.next().and_then(|v| v.parse().ok()) {
                limit = n;
            }
        } else if let Some(n) = a.strip_prefix("--limit=").and_then(|v| v.parse().ok()) {
            limit = n;
        }
    }
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return 1;
        }
    };
    let (log, err) = decode_chunked_recover(&bytes);
    println!(
        "{}: core {}, {} entr{}",
        path.display(),
        log.core.index(),
        log.entries.len(),
        if log.entries.len() == 1 { "y" } else { "ies" }
    );
    for (i, e) in log.entries.iter().take(limit).enumerate() {
        let text = match e {
            LogEntry::InorderBlock { instrs } => format!("InorderBlock    instrs={instrs}"),
            LogEntry::ReorderedLoad { value } => format!("ReorderedLoad   value={value:#x}"),
            LogEntry::ReorderedStore {
                addr,
                value,
                offset,
            } => format!("ReorderedStore  addr={addr:#x} value={value:#x} offset={offset}"),
            LogEntry::ReorderedRmw {
                loaded,
                addr,
                stored,
                offset,
            } => match stored {
                Some(s) => format!(
                    "ReorderedRmw    addr={addr:#x} loaded={loaded:#x} stored={s:#x} offset={offset}"
                ),
                None => format!(
                    "ReorderedRmw    addr={addr:#x} loaded={loaded:#x} (failed) offset={offset}"
                ),
            },
            LogEntry::IntervalFrame { cisn, timestamp } => {
                format!("IntervalFrame   cisn={cisn} timestamp={timestamp}")
            }
        };
        println!("{i:>8}  {text}");
    }
    if log.entries.len() > limit {
        println!("... ({} more)", log.entries.len() - limit);
    }
    match err {
        None => 0,
        Some(e) => {
            eprintln!("stream damaged after the entries above: {e}");
            1
        }
    }
}

// ---------------------------------------------------------------------------
// check
// ---------------------------------------------------------------------------

fn cmd_check(args: &[String]) -> u8 {
    let path = match one_path(args, "check") {
        Ok(p) => p,
        Err(c) => return c,
    };
    if !path.is_dir() {
        return match std::fs::read(&path) {
            Ok(bytes) => match relaxreplay::wire::decode_chunked(&bytes) {
                Ok(log) => {
                    println!(
                        "{}: ok (core {}, {} entries)",
                        path.display(),
                        log.core.index(),
                        log.entries.len()
                    );
                    0
                }
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    1
                }
            },
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                1
            }
        };
    }
    // A run directory, or a --save-logs root full of them.
    let (root, names) = match resolve_runs(&path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let mut code = 0u8;
    for name in &names {
        match rr_sim::load_run(&root, name) {
            Ok(run) => {
                let logs: usize = run.variants.iter().map(|v| v.logs.len()).sum();
                println!(
                    "{name}: ok ({} variant(s), {logs} .rrlog file(s), truth verified)",
                    run.variants.len()
                );
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                code = 1;
            }
        }
    }
    code
}

/// Resolves a path to `(root, run names)`: a single run directory (it
/// contains `manifest.txt`) yields itself; anything else is treated as a
/// `--save-logs` root and enumerated.
fn resolve_runs(path: &Path) -> Result<(PathBuf, Vec<String>), u8> {
    if path.join("manifest.txt").is_file() {
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => {
                eprintln!("{}: unusable directory name", path.display());
                return Err(1);
            }
        };
        let root = path.parent().unwrap_or(Path::new(".")).to_path_buf();
        Ok((root, vec![name]))
    } else {
        match rr_sim::list_runs(path) {
            Ok(names) if !names.is_empty() => Ok((path.to_path_buf(), names)),
            Ok(_) => {
                eprintln!("{}: no saved runs found", path.display());
                Err(1)
            }
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                Err(1)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// dag
// ---------------------------------------------------------------------------

fn cmd_dag(args: &[String]) -> u8 {
    let path = match one_path(args, "dag") {
        Ok(p) => p,
        Err(c) => return c,
    };
    if !path.is_dir() {
        eprintln!(
            "rr-inspect dag: {} is not a directory (expected a run saved by --save-logs)",
            path.display()
        );
        return 1;
    }
    let mut dot_dir: Option<PathBuf> = None;
    let mut rest = args[1..].iter();
    while let Some(a) = rest.next() {
        if a == "--dot" {
            dot_dir = rest.next().map(PathBuf::from);
            if dot_dir.is_none() {
                eprintln!("rr-inspect dag: --dot needs an output directory\n{USAGE}");
                return 2;
            }
        } else if let Some(d) = a.strip_prefix("--dot=") {
            dot_dir = Some(PathBuf::from(d));
        }
    }
    let (root, names) = match resolve_runs(&path) {
        Ok(t) => t,
        Err(c) => return c,
    };
    if let Some(dir) = &dot_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("{}: {e}", dir.display());
            return 1;
        }
    }
    let mut code = 0u8;
    for name in &names {
        let run = match rr_sim::load_run(&root, name) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("{name}: {e}");
                code = 1;
                continue;
            }
        };
        let mut t = Table::new(
            &format!("{name}: interval DAG"),
            &[
                "variant",
                "order",
                "nodes",
                "edges",
                "crit path",
                "max width",
                "ideal x",
            ],
        );
        for v in &run.variants {
            let cores = v.logs.len();
            let patched: Result<Vec<_>, _> = v.logs.iter().map(rr_replay::patch).collect();
            let patched = match patched {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{name}/{}: patch failed: {e}", v.label);
                    code = 1;
                    continue;
                }
            };
            let (dag, order) = match &v.ordering {
                Some(ord) => match rr_replay::IntervalDag::partial_order(cores, &patched, ord) {
                    Ok(d) => (d, "partial"),
                    Err(e) => {
                        eprintln!("{name}/{}: DAG build failed: {e}", v.label);
                        code = 1;
                        continue;
                    }
                },
                None => match rr_replay::IntervalDag::total_order(cores, &patched) {
                    Ok(d) => (d, "total"),
                    Err(e) => {
                        eprintln!("{name}/{}: DAG build failed: {e}", v.label);
                        code = 1;
                        continue;
                    }
                },
            };
            let s = dag.stats();
            t.row(vec![
                v.label.clone(),
                order.to_string(),
                format!("{}", s.nodes),
                format!("{}", s.edges),
                format!("{}", s.critical_path),
                format!("{}", s.max_width),
                format!("{:.2}", s.ideal_speedup()),
            ]);
            if let Some(dir) = &dot_dir {
                let file = dir.join(format!("{name}-{}.dot", v.label));
                let dot = dag.to_dot(&format!("{name}/{}", v.label));
                if let Err(e) = std::fs::write(&file, dot) {
                    eprintln!("{}: {e}", file.display());
                    code = 1;
                } else {
                    println!("wrote {}", file.display());
                }
            }
        }
        t.print();
    }
    code
}

// ---------------------------------------------------------------------------
// trace
// ---------------------------------------------------------------------------

fn cmd_trace(args: &[String]) -> u8 {
    let path = match one_path(args, "trace") {
        Ok(p) => p,
        Err(c) => return c,
    };
    let mut out_path: Option<PathBuf> = None;
    let mut rest = args[1..].iter();
    while let Some(a) = rest.next() {
        if a == "-o" || a == "--out" {
            out_path = rest.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix("--out=") {
            out_path = Some(PathBuf::from(p));
        }
    }
    let out_path = out_path.unwrap_or_else(|| path.with_extension("json"));
    let input = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return 1;
        }
    };
    let chrome = match relaxreplay::trace::chrome_trace_from_jsonl(&input) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return 1;
        }
    };
    if let Err(e) = std::fs::write(&out_path, &chrome) {
        eprintln!("{}: {e}", out_path.display());
        return 1;
    }
    match relaxreplay::trace::validate_chrome_trace(&chrome) {
        Ok(stats) => {
            println!(
                "{} -> {} ({} events, {} track(s)) — load it in Perfetto or chrome://tracing",
                path.display(),
                out_path.display(),
                stats.events,
                stats.tracks
            );
            0
        }
        Err(e) => {
            eprintln!("internal error: produced an invalid Chrome trace: {e}");
            1
        }
    }
}
