//! The unified error surface of the record/replay pipeline.
//!
//! Every layer below `rr-sim` has its own typed error — `WireError` for
//! the codec, `PatchError`/`ReplayError`/`VerifyError` for the replay
//! pipeline, `SimError` for the machine, `SweepError`/`IngestError` for
//! the parallel engines, `LogDirError` for saved runs. Before this type
//! existed they crossed crate boundaries ad hoc: experiments binaries
//! stringified them, `rr-check` panicked, and `replay_and_verify` returned
//! `String`. [`enum@Error`] is the one type the binaries and the session
//! API speak: each underlying error converts with `From`, keeps its source
//! chain (`std::error::Error::source`), and can be wrapped with
//! human-readable context via [`Error::context`].

use core::fmt;

use relaxreplay::WireError;
use rr_replay::{IngestError, PatchError, ReplayError, VerifyError};

use crate::logdir::LogDirError;
use crate::machine::SimError;
use crate::store::StoreError;
use crate::sweep::SweepError;

/// Any failure of the record/replay pipeline, from the wire codec up to
/// the sweep engine.
#[derive(Clone, Debug)]
pub enum Error {
    /// The simulated machine failed (deadlock, too many threads).
    Sim(SimError),
    /// An `.rrlog` stream failed to encode or decode.
    Wire(WireError),
    /// A saved-run directory was missing, malformed, or undecodable.
    LogDir(LogDirError),
    /// A run store (local directory or remote rr-serve backend) failed.
    Store(StoreError),
    /// Parallel `.rrlog` ingest failed.
    Ingest(IngestError),
    /// A sweep job failed.
    Sweep(SweepError),
    /// The patching step rejected a log.
    Patch(PatchError),
    /// Deterministic replay failed.
    Replay(ReplayError),
    /// Replay verification failed — determinism was broken.
    Verify(VerifyError),
    /// A filesystem operation outside the typed layers failed.
    Io(String),
    /// A failure wrapped with human-readable context; the underlying
    /// error is preserved as the source.
    Context {
        /// What was being attempted.
        context: String,
        /// The underlying failure.
        source: Box<Error>,
    },
    /// A free-form failure (argument parsing, broken invariants).
    Msg(String),
}

impl Error {
    /// Wraps this error with context, preserving it as the source:
    /// `err.context("patch failed")` displays as `patch failed: <err>`.
    #[must_use]
    pub fn context(self, context: impl Into<String>) -> Self {
        Error::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }

    /// A free-form error from a message.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        Error::Msg(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sim(e) => write!(f, "{e}"),
            Error::Wire(e) => write!(f, "{e}"),
            Error::LogDir(e) => write!(f, "{e}"),
            Error::Store(e) => write!(f, "{e}"),
            Error::Ingest(e) => write!(f, "{e}"),
            Error::Sweep(e) => write!(f, "{e}"),
            Error::Patch(e) => write!(f, "{e}"),
            Error::Replay(e) => write!(f, "{e}"),
            Error::Verify(e) => write!(f, "{e}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
            Error::Context { context, source } => write!(f, "{context}: {source}"),
            Error::Msg(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sim(e) => Some(e),
            Error::Wire(e) => Some(e),
            Error::LogDir(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Ingest(e) => Some(e),
            Error::Sweep(e) => Some(e),
            Error::Patch(e) => Some(e),
            Error::Replay(e) => Some(e),
            Error::Verify(e) => Some(e),
            Error::Context { source, .. } => Some(source),
            Error::Io(_) | Error::Msg(_) => None,
        }
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::Wire(e)
    }
}

impl From<LogDirError> for Error {
    fn from(e: LogDirError) -> Self {
        Error::LogDir(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

impl From<IngestError> for Error {
    fn from(e: IngestError) -> Self {
        Error::Ingest(e)
    }
}

impl From<SweepError> for Error {
    fn from(e: SweepError) -> Self {
        Error::Sweep(e)
    }
}

impl From<PatchError> for Error {
    fn from(e: PatchError) -> Self {
        Error::Patch(e)
    }
}

impl From<ReplayError> for Error {
    fn from(e: ReplayError) -> Self {
        Error::Replay(e)
    }
}

impl From<VerifyError> for Error {
    fn from(e: VerifyError) -> Self {
        Error::Verify(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_chains_and_displays() {
        let base: Error = WireError::BadMagic.into();
        let wrapped = base.context("loading core0.rrlog");
        assert_eq!(
            wrapped.to_string(),
            "loading core0.rrlog: not an .rrlog stream (bad magic)"
        );
        let source = std::error::Error::source(&wrapped).expect("has source");
        assert!(source.to_string().contains("bad magic"));
        // The inner WireError is reachable through the chain.
        let inner = std::error::Error::source(source).expect("wire source");
        assert!(inner.downcast_ref::<WireError>().is_some());
    }

    #[test]
    fn io_and_msg_are_terminal() {
        let e = Error::msg("bad flag");
        assert!(std::error::Error::source(&e).is_none());
        let io: Error = std::io::Error::other("disk on fire").into();
        assert!(io.to_string().contains("disk on fire"));
    }
}
