//! Per-run metrics and observability: counter/histogram registries,
//! phase wall-clock timings, and JSONL export.
//!
//! Every figure of the paper is a reduction over run statistics, and every
//! performance PR needs a baseline to measure against; this module gives
//! both a uniform shape. A [`MetricsRegistry`] collects named counters and
//! histograms from all three stat sources (`rr-cpu` [`CoreStats`],
//! `rr-mem` [`MemStats`], `relaxreplay` [`RecorderStats`]), a
//! [`PhaseNanos`] records where wall-clock time went
//! (record / patch / replay / verify), and [`MetricsRegistry::to_json`] /
//! [`jsonl_object`] render a machine-readable line the experiment binaries
//! drop next to their CSVs.
//!
//! **Determinism contract:** everything in the registry is derived from
//! simulation state, so two runs of the same job produce identical
//! registries regardless of host load or worker count. Wall-clock phase
//! timings are *not* part of the registry for exactly that reason — they
//! live in [`PhaseNanos`] and are excluded from determinism comparisons.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::machine::RunResult;

/// A fixed-bucket histogram (linear bins of `bin_width`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Width of each bin in observation units.
    pub bin_width: u64,
    /// `counts[i]` observations fell in `[i * bin_width, (i+1) * bin_width)`.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram from pre-binned counts (e.g. the recorder's TRAQ
    /// occupancy bins).
    #[must_use]
    pub fn from_bins(bin_width: u64, counts: Vec<u64>) -> Self {
        Histogram { bin_width, counts }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        if self.bin_width == 0 {
            self.bin_width = 1;
        }
        let bin = (value / self.bin_width) as usize;
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `p`-th percentile (0–100) of the observed distribution, as the
    /// inclusive upper edge of the bin containing that rank — exact for
    /// `bin_width == 1`, conservative (never under-reports) otherwise.
    ///
    /// Returns `None` for an empty histogram or `p` outside `[0, 100]`
    /// rather than a misleading 0; a one-sample histogram returns that
    /// sample's bin for every valid `p`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if !(0.0..=100.0).contains(&p) {
            return None;
        }
        let total = self.total();
        if total == 0 {
            return None;
        }
        // Nearest-rank definition: the smallest value with at least
        // ceil(p/100 * total) observations at or below it.
        let rank = ((p / 100.0 * total as f64).ceil() as u64).max(1);
        let width = self.bin_width.max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((i as u64 + 1) * width - 1);
            }
        }
        None
    }

    /// Adds another histogram's counts into this one (bin widths must
    /// match).
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.is_empty() {
            self.bin_width = other.bin_width;
        }
        assert_eq!(
            self.bin_width, other.bin_width,
            "merging histograms with different bin widths"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// A named registry of counters and histograms describing one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to the named counter (creating it at zero).
    pub fn add(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// Sets the named counter, replacing any previous value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// The named counter's value, or 0 if absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::from_bins(1, Vec::new()))
            .observe(value);
    }

    /// Merges a pre-binned histogram into the named one.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// The named histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds every counter and histogram of `other` into `self`.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.merge_histogram(k, h);
        }
    }

    /// Renders the registry as one JSON object:
    /// `{"counters":{..},"histograms":{"name":{"bin_width":w,"counts":[..]}}}`.
    ///
    /// Emission order is deterministic — keys appear in sorted (BTreeMap)
    /// order regardless of insertion or merge order — so JSONL sidecars
    /// diff cleanly across runs. Pinned by
    /// `to_json_is_sorted_and_insertion_order_independent`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(k));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"bin_width\":{},\"counts\":[",
                json_string(k),
                h.bin_width
            );
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Wall-clock nanoseconds spent in each phase of one job.
///
/// Host-dependent by nature; kept separate from [`MetricsRegistry`] so
/// determinism comparisons can ignore it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Recording (the cycle-stepped simulation).
    pub record: u64,
    /// Log patching (moving reordered stores back, §3.3.2).
    pub patch: u64,
    /// Replay proper.
    pub replay: u64,
    /// Determinism verification against the recorded execution.
    pub verify: u64,
}

impl PhaseNanos {
    /// Total nanoseconds across all phases.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.record + self.patch + self.replay + self.verify
    }

    /// Renders as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"record_ns\":{},\"patch_ns\":{},\"replay_ns\":{},\"verify_ns\":{}}}",
            self.record, self.patch, self.replay, self.verify
        )
    }
}

/// Escapes a string as a JSON string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builds the complete metrics registry for a recorded run: aggregated
/// core, memory and per-variant recorder counters plus the TRAQ occupancy
/// histograms.
#[must_use]
pub fn run_metrics(run: &RunResult) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    m.set("sim.cycles", run.cycles);
    m.set("sim.cores", run.core_stats.len() as u64);
    for cs in &run.core_stats {
        for (name, v) in cs.counter_pairs() {
            m.add(&format!("cpu.{name}"), v);
        }
    }
    for (name, v) in run.mem_stats.counter_pairs() {
        m.add(&format!("mem.{name}"), v);
    }
    for variant in &run.variants {
        let label = variant.spec.label();
        for rs in &variant.stats {
            for (name, v) in rs.counter_pairs() {
                m.add(&format!("rec.{label}.{name}"), v);
            }
            m.merge_histogram(
                &format!("rec.{label}.traq_occupancy"),
                &Histogram::from_bins(10, rs.traq_hist.clone()),
            );
        }
        m.set(&format!("rec.{label}.log_bits"), variant.log_bits());
        m.set(
            &format!("rec.{label}.inorder_blocks"),
            variant.inorder_blocks(),
        );
        let mut flat_bytes = 0u64;
        let mut wire_bytes = 0u64;
        for log in &variant.logs {
            m.observe(
                &format!("rec.{label}.intervals_per_core"),
                log.intervals() as u64,
            );
            flat_bytes += log.encode_flat().len() as u64;
            wire_bytes += log.encode().len() as u64;
        }
        m.set(&format!("rec.{label}.flat_bytes"), flat_bytes);
        m.set(&format!("rec.{label}.wire_bytes"), wire_bytes);
        // Chunked-vs-flat size as parts per thousand (smaller = better).
        if let Some(permille) = (wire_bytes * 1000).checked_div(flat_bytes) {
            m.set(&format!("rec.{label}.wire_compression_permille"), permille);
        }
    }
    m
}

/// Renders one JSONL object for a named run: identity fields, determinism-
/// safe metrics, and the host-dependent phase timings.
#[must_use]
pub fn jsonl_object(
    name: &str,
    job: usize,
    metrics: &MetricsRegistry,
    phases: &PhaseNanos,
) -> String {
    format!(
        "{{\"name\":{},\"job\":{job},\"metrics\":{},\"phases\":{}}}",
        json_string(name),
        metrics.to_json(),
        phases.to_json()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let mut m = MetricsRegistry::new();
        m.add("a", 1);
        m.add("a", 2);
        m.set("b", 7);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("missing"), 0);
        let json = m.to_json();
        assert!(json.starts_with('{'), "{json}");
        assert!(json.contains("\"a\":3"), "{json}");
        assert!(json.contains("\"b\":7"), "{json}");
    }

    #[test]
    fn to_json_is_sorted_and_insertion_order_independent() {
        let mut fwd = MetricsRegistry::new();
        for k in ["alpha", "mid", "zeta"] {
            fwd.add(k, 1);
            fwd.observe(&format!("h_{k}"), 5);
        }
        let mut rev = MetricsRegistry::new();
        for k in ["zeta", "mid", "alpha"] {
            rev.observe(&format!("h_{k}"), 5);
            rev.add(k, 1);
        }
        let json = fwd.to_json();
        assert_eq!(
            json,
            rev.to_json(),
            "emission must not depend on insertion order"
        );
        let a = json.find("\"alpha\"").expect("alpha present");
        let m = json.find("\"mid\"").expect("mid present");
        let z = json.find("\"zeta\"").expect("zeta present");
        assert!(a < m && m < z, "counters sorted: {json}");
        let ha = json.find("\"h_alpha\"").expect("h_alpha present");
        let hz = json.find("\"h_zeta\"").expect("h_zeta present");
        assert!(ha < hz, "histograms sorted: {json}");
    }

    #[test]
    fn histograms_bin_and_merge() {
        let mut m = MetricsRegistry::new();
        m.observe("h", 0);
        m.observe("h", 5);
        m.observe("h", 5);
        let h = m.histogram("h").expect("exists");
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[5], 2);
        assert_eq!(h.total(), 3);

        let mut a = Histogram::from_bins(10, vec![1, 2]);
        a.merge(&Histogram::from_bins(10, vec![0, 1, 4]));
        assert_eq!(a.counts, vec![1, 3, 4]);
    }

    #[test]
    fn percentile_handles_degenerate_histograms() {
        // Empty: no rank exists — None, not a misleading 0.
        let empty = Histogram::from_bins(1, vec![]);
        assert_eq!(empty.percentile(50.0), None);
        assert_eq!(empty.percentile(0.0), None);

        // One sample at value 7 (bin width 1): every valid percentile is
        // exactly 7.
        let mut one = Histogram::default();
        one.observe(7);
        for p in [0.0, 1.0, 50.0, 99.9, 100.0] {
            assert_eq!(one.percentile(p), Some(7), "p={p}");
        }

        // Out-of-range p.
        assert_eq!(one.percentile(-1.0), None);
        assert_eq!(one.percentile(100.1), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        // Values 1..=10, bin width 1.
        let mut h = Histogram::default();
        for v in 1..=10 {
            h.observe(v);
        }
        assert_eq!(h.percentile(10.0), Some(1));
        assert_eq!(h.percentile(50.0), Some(5));
        assert_eq!(h.percentile(90.0), Some(9));
        assert_eq!(h.percentile(100.0), Some(10));

        // Wider bins report the containing bin's inclusive upper edge.
        let wide = Histogram::from_bins(10, vec![5, 5]);
        assert_eq!(wide.percentile(50.0), Some(9));
        assert_eq!(wide.percentile(100.0), Some(19));
    }

    #[test]
    fn merge_folds_registries() {
        let mut a = MetricsRegistry::new();
        a.add("x", 1);
        let mut b = MetricsRegistry::new();
        b.add("x", 2);
        b.add("y", 5);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn phase_json_shape() {
        let p = PhaseNanos {
            record: 1,
            patch: 2,
            replay: 3,
            verify: 4,
        };
        assert_eq!(p.total(), 10);
        assert_eq!(
            p.to_json(),
            "{\"record_ns\":1,\"patch_ns\":2,\"replay_ns\":3,\"verify_ns\":4}"
        );
    }
}
