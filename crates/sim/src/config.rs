use relaxreplay::{Design, RecorderConfig, TraceConfig};
use rr_cpu::CpuConfig;
use rr_mem::{CoherenceMode, MemConfig};

/// Configuration of the whole simulated machine (paper Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Number of cores (the paper evaluates 4, 8 — default — and 16).
    pub num_cores: usize,
    /// Core parameters.
    pub cpu: CpuConfig,
    /// Memory-system parameters.
    pub mem: MemConfig,
    /// Clock frequency in GHz (Table 1: 2 GHz), used to convert log
    /// bits/cycle into MB/s.
    pub clock_ghz: f64,
    /// Check the SWMR coherence invariant every this many cycles
    /// (0 = never; keep 0 for performance runs).
    pub invariant_check_period: u64,
    /// Abort if the machine has not finished after this many cycles.
    pub max_cycles: u64,
    /// Event tracing (off by default). When enabled, the first recorder
    /// variant's per-core timelines plus machine-level coherence traffic
    /// are captured into [`crate::RunResult::trace`].
    pub trace: TraceConfig,
}

impl MachineConfig {
    /// The paper's default machine with `num_cores` cores.
    #[must_use]
    pub fn splash_default(num_cores: usize) -> Self {
        MachineConfig {
            num_cores,
            cpu: CpuConfig::splash_default(),
            mem: MemConfig::splash_default(num_cores),
            clock_ghz: 2.0,
            invariant_check_period: 0,
            max_cycles: 2_000_000_000,
            trace: TraceConfig::off(),
        }
    }

    /// Same machine with event tracing enabled under `trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Same machine with directory-style coherence filtering (paper §4.3).
    #[must_use]
    pub fn with_directory(mut self) -> Self {
        self.mem.mode = CoherenceMode::Directory;
        self
    }

    /// Same machine under a different memory consistency model — the
    /// recorder must work unchanged for any of them (the paper's central
    /// claim).
    #[must_use]
    pub fn with_consistency(mut self, model: rr_cpu::ConsistencyModel) -> Self {
        self.cpu.consistency = model;
        self
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::splash_default(8)
    }
}

/// A recorder variant to attach to the execution. Several variants can be
/// attached to one run: recorders are pure observers, so a single execution
/// yields logs for every design × interval-size combination at once
/// (exactly what Figures 9–13 need).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecorderSpec {
    /// Base or Opt.
    pub design: Design,
    /// Maximum interval size in instructions (`None` = the paper's INF).
    pub max_interval: Option<u32>,
}

impl RecorderSpec {
    /// The four configurations the paper evaluates.
    #[must_use]
    pub fn paper_matrix() -> Vec<RecorderSpec> {
        vec![
            RecorderSpec {
                design: Design::Base,
                max_interval: Some(4096),
            },
            RecorderSpec {
                design: Design::Opt,
                max_interval: Some(4096),
            },
            RecorderSpec {
                design: Design::Base,
                max_interval: None,
            },
            RecorderSpec {
                design: Design::Opt,
                max_interval: None,
            },
        ]
    }

    /// A short human-readable label like `Base-4K` or `Opt-INF`.
    #[must_use]
    pub fn label(&self) -> String {
        let interval = match self.max_interval {
            Some(4096) => "4K".to_string(),
            Some(n) => format!("{n}"),
            None => "INF".to_string(),
        };
        format!("{}-{interval}", self.design)
    }

    /// The recorder configuration for this variant.
    #[must_use]
    pub fn recorder_config(&self) -> RecorderConfig {
        RecorderConfig::splash_default(self.design, self.max_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        let m = RecorderSpec::paper_matrix();
        let labels: Vec<String> = m.iter().map(RecorderSpec::label).collect();
        assert_eq!(labels, vec!["Base-4K", "Opt-4K", "Base-INF", "Opt-INF"]);
    }

    #[test]
    fn directory_variant() {
        let cfg = MachineConfig::splash_default(4).with_directory();
        assert_eq!(cfg.mem.mode, CoherenceMode::Directory);
    }
}
