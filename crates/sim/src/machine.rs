use core::fmt;

use relaxreplay::trace::TraceEvent;
use relaxreplay::{IntervalLog, Recorder, RecorderStats, RunTrace, TraceConfig, TraceRing};
use rr_cpu::{Core, CoreObserver, CoreStats, FanoutObserver};
use rr_isa::{MemImage, Program};
use rr_mem::{CoherenceMode, CoreId, MemStats, MemorySystem};
use rr_replay::{patch, CostModel, RecordedExecution, ReplayEngine, ReplayOutcome};

use crate::config::{MachineConfig, RecorderSpec};
use crate::tracer::TraceCollector;

/// Everything a recorder variant produced during one recorded run.
#[derive(Clone, Debug)]
pub struct VariantResult {
    /// The variant's configuration.
    pub spec: RecorderSpec,
    /// Per-core interval logs.
    pub logs: Vec<IntervalLog>,
    /// Per-core recorder statistics.
    pub stats: Vec<RecorderStats>,
    /// Per-core interval partial order (parallel replay, paper §3.6).
    pub ordering: Vec<relaxreplay::IntervalOrdering>,
}

impl VariantResult {
    /// Total log size in bits across all cores.
    #[must_use]
    pub fn log_bits(&self) -> u64 {
        self.logs.iter().map(IntervalLog::bits).sum()
    }

    /// Aggregated recorder stats across cores.
    #[must_use]
    pub fn reordered(&self) -> u64 {
        self.stats.iter().map(RecorderStats::reordered).sum()
    }

    /// Total memory accesses counted across cores.
    #[must_use]
    pub fn counted_mem(&self) -> u64 {
        self.stats.iter().map(RecorderStats::counted_mem).sum()
    }

    /// Fraction of memory accesses logged as reordered (Figure 9).
    #[must_use]
    pub fn reordered_fraction(&self) -> f64 {
        let mem = self.counted_mem();
        if mem == 0 {
            return 0.0;
        }
        self.reordered() as f64 / mem as f64
    }

    /// Number of `InorderBlock` entries across cores (Figure 10).
    #[must_use]
    pub fn inorder_blocks(&self) -> u64 {
        self.logs.iter().map(|l| l.inorder_blocks() as u64).sum()
    }

    /// Log bits per 1000 instructions (Figure 11's metric).
    #[must_use]
    pub fn bits_per_kilo_instr(&self) -> f64 {
        let instrs: u64 = self.stats.iter().map(|s| s.counted_instrs).sum();
        if instrs == 0 {
            return 0.0;
        }
        self.log_bits() as f64 * 1000.0 / instrs as f64
    }
}

/// The result of recording one parallel execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Cycles until every thread finished and all buffers drained.
    pub cycles: u64,
    /// Per-core execution statistics.
    pub core_stats: Vec<CoreStats>,
    /// Memory-system statistics.
    pub mem_stats: MemStats,
    /// Ground truth for replay verification: final memory and per-thread
    /// load-value traces.
    pub recorded: RecordedExecution,
    /// One entry per attached recorder variant.
    pub variants: Vec<VariantResult>,
    /// Clock frequency used for bandwidth conversions.
    pub clock_ghz: f64,
    /// Event timelines captured during the run, when
    /// [`MachineConfig::trace`](crate::MachineConfig) was enabled. The
    /// per-core rings reflect the **first** recorder variant's interval
    /// structure (variants share perform/coherence events but close
    /// intervals at different points); the coherence ring is machine-wide.
    pub trace: Option<RunTrace>,
}

impl RunResult {
    /// Aggregate fraction of memory accesses performed out of program
    /// order (Figure 1's metric).
    #[must_use]
    pub fn ooo_fraction(&self) -> f64 {
        let mem: u64 = self.core_stats.iter().map(CoreStats::mem_instrs).sum();
        let ooo: u64 = self
            .core_stats
            .iter()
            .map(|s| s.ooo_loads + s.ooo_stores)
            .sum();
        if mem == 0 {
            return 0.0;
        }
        ooo as f64 / mem as f64
    }

    /// Log generation rate of a variant in MB/s at the configured clock
    /// (Figures 11 and 14(b)). Returns `None` if `variant` is out of
    /// range.
    #[must_use]
    pub fn log_rate_mbps(&self, variant: usize) -> Option<f64> {
        let v = self.variants.get(variant)?;
        if self.cycles == 0 {
            return Some(0.0);
        }
        let bits = v.log_bits() as f64;
        let seconds = self.cycles as f64 / (self.clock_ghz * 1e9);
        Some(bits / 8.0 / 1e6 / seconds)
    }

    /// Total instructions retired across all cores.
    #[must_use]
    pub fn total_instrs(&self) -> u64 {
        self.core_stats.iter().map(|s| s.retired).sum()
    }
}

/// Errors from [`record`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The machine did not finish within `max_cycles`.
    Deadlock {
        /// The cycle at which the run was aborted.
        at: u64,
    },
    /// More programs than the machine has cores.
    TooManyThreads {
        /// Threads requested.
        threads: usize,
        /// Cores available.
        cores: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at } => write!(f, "simulation did not finish by cycle {at}"),
            SimError::TooManyThreads { threads, cores } => {
                write!(f, "{threads} threads but only {cores} cores")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// How the per-cycle core schedule is perturbed — the `rr-check`
/// schedule-exploration knob. Every strategy is a pure function of its
/// parameters and the cycle count: the same strategy always produces the
/// same execution, regardless of host, worker count, or wall clock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum ScheduleStrategy {
    /// The untouched baseline order: core 0 ticks first, every core ticks
    /// every cycle. [`record_custom`] is exactly this.
    #[default]
    Baseline,
    /// Seeded stalls: each cycle, each core skips its pipeline tick with
    /// probability `stall_permille`/1000 (never more than
    /// `max_consecutive` skips in a row), decided by hashing
    /// (seed, cycle, core). Stalling a core is always legal — it is
    /// indistinguishable from a structural hazard — so every stall
    /// schedule is a valid execution the recorder must handle.
    SeededStall {
        /// Hash seed; different seeds give unrelated stall patterns.
        seed: u64,
        /// Per-core per-cycle stall probability in 1/1000ths.
        stall_permille: u16,
        /// Upper bound on consecutive stalls of one core (forward
        /// progress guarantee).
        max_consecutive: u32,
    },
    /// Rotate which core ticks first every `period` cycles, reordering
    /// same-cycle memory-system arrivals between cores.
    RotatePriority {
        /// Cycles between rotations (0 is treated as 1).
        period: u64,
    },
}

/// SplitMix64 finalizer — the stateless hash behind
/// [`ScheduleStrategy::SeededStall`].
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-run schedule state: the tick order for the current cycle and the
/// consecutive-stall counters enforcing forward progress.
struct SchedulePlanner {
    strategy: ScheduleStrategy,
    consecutive: Vec<u32>,
}

impl SchedulePlanner {
    fn new(strategy: &ScheduleStrategy, n: usize) -> Self {
        SchedulePlanner {
            strategy: strategy.clone(),
            consecutive: vec![0; n],
        }
    }

    /// Writes this cycle's core tick order (a rotation of `0..n`) into
    /// `order`.
    fn fill_order(&self, cycle: u64, order: &mut [usize]) {
        let n = order.len();
        let start = match self.strategy {
            ScheduleStrategy::RotatePriority { period } if n > 0 => {
                ((cycle / period.max(1)) % n as u64) as usize
            }
            _ => 0,
        };
        for (k, slot) in order.iter_mut().enumerate() {
            *slot = (start + k) % n.max(1);
        }
    }

    /// Whether `core` skips its pipeline tick this cycle.
    fn stalls(&mut self, cycle: u64, core: usize) -> bool {
        let ScheduleStrategy::SeededStall {
            seed,
            stall_permille,
            max_consecutive,
        } = self.strategy
        else {
            return false;
        };
        let h = mix64(seed ^ mix64(cycle ^ mix64(core as u64)));
        if h % 1000 < u64::from(stall_permille) && self.consecutive[core] < max_consecutive {
            self.consecutive[core] += 1;
            true
        } else {
            self.consecutive[core] = 0;
            false
        }
    }
}

/// Targeted recorder stress applied during a run — the `rr-check`
/// pressure modes. Pressure perturbs only the *recorders* (which are pure
/// observers), never the cores or the memory system, so the sequential
/// ground truth of the execution is untouched and every pressured log
/// must still replay to it exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PressureSpec {
    /// Force-close every recorder's current interval every `period`
    /// cycles (`Some(0)` is treated as every cycle’s guard, i.e. never),
    /// exercising the `Forced` termination path and pathologically small
    /// intervals.
    pub force_close_period: Option<u64>,
    /// Advance every recorder's interval counter by this many empty
    /// intervals before the first cycle, pushing the 16-bit CISN toward
    /// and across its wrap point (65 500 puts the wrap mid-run).
    pub preadvance_intervals: u64,
    /// Attach a *shadow* copy of the first recorder variant whose log
    /// streams into a sink that fails after accepting this many entries.
    /// The shadow observes the identical execution, so its poisoning and
    /// retention behavior can be audited byte-for-byte against the real
    /// variant's log (see [`SinkFaultReport`]).
    pub sink_fail_after: Option<usize>,
}

impl PressureSpec {
    /// True when no pressure is configured.
    #[must_use]
    pub fn is_none(&self) -> bool {
        *self == PressureSpec::default()
    }
}

/// Options for [`record_with`]: a schedule strategy plus recorder
/// pressure. The default is byte-identical to [`record_custom`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Per-cycle core schedule perturbation.
    pub schedule: ScheduleStrategy,
    /// Recorder stress injection.
    pub pressure: PressureSpec,
}

/// What the injected pressure actually did — the contract `rr-check`
/// audits after each run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PressureReport {
    /// Empty intervals pre-advanced per recorder.
    pub preadvanced: u64,
    /// `force_terminate` calls issued across all cores and variants.
    pub forced_closes: u64,
    /// Core pipeline ticks skipped by the schedule strategy.
    pub stalled_ticks: u64,
    /// Audit of the failing-sink shadow recorder, when one was attached.
    pub sink: Option<SinkFaultReport>,
}

/// Per-core audit of the failing-sink shadow recorder: what survived the
/// injected mid-record sink fault, checked against the fault-free first
/// variant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SinkFaultReport {
    /// Whether each shadow recorder latched its poisoned flag.
    pub poisoned: Vec<bool>,
    /// Entries each shadow streamed successfully before the fault.
    pub streamed: Vec<u64>,
    /// Entries still buffered in each shadow after `finish` — retained,
    /// not dropped.
    pub retained: Vec<usize>,
    /// First sink error per core (empty string = no fault hit).
    pub errors: Vec<String>,
    /// Whether on every core the accepted entries plus the retained
    /// buffer reproduce the fault-free variant's log exactly — nothing
    /// lost, nothing duplicated, nothing reordered.
    pub prefix_intact: bool,
}

/// The recording engine behind [`crate::RecordSession`]: one parallel execution of `programs`
/// against `initial_mem` with every recorder variant attached, under the
/// given schedule/pressure options.
pub(crate) fn run_machine(
    programs: &[Program],
    initial_mem: &MemImage,
    cfg: &MachineConfig,
    configs: &[relaxreplay::RecorderConfig],
    options: &RunOptions,
) -> Result<(RunResult, PressureReport), SimError> {
    if programs.len() > cfg.num_cores {
        return Err(SimError::TooManyThreads {
            threads: programs.len(),
            cores: cfg.num_cores,
        });
    }
    let specs: Vec<RecorderSpec> = configs
        .iter()
        .map(|c| RecorderSpec {
            design: c.design,
            max_interval: c.max_interval_instrs,
        })
        .collect();
    let n = programs.len();
    let mut img = initial_mem.clone();
    let mut mem = MemorySystem::new(cfg.mem.clone());
    let mut cores: Vec<Core> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| Core::new(CoreId::new(i as u8), cfg.cpu.clone(), p))
        .collect();
    // variant-major storage: recorders[v][core].
    let mut recorders: Vec<Vec<Recorder>> = configs
        .iter()
        .map(|c| {
            (0..n)
                .map(|i| Recorder::new(CoreId::new(i as u8), c.clone()))
                .collect()
        })
        .collect();
    let mut report = PressureReport {
        preadvanced: options.pressure.preadvance_intervals,
        ..PressureReport::default()
    };
    // Failing-sink pressure: a shadow copy of the first variant, streaming
    // into sinks that fault mid-record. It rides along as an extra
    // recorder "variant" (observing the identical event stream) and is
    // popped before results are collected, so it can be audited against
    // the fault-free first variant without disturbing it.
    let mut sink_handles: Vec<std::sync::Arc<std::sync::Mutex<Vec<relaxreplay::LogEntry>>>> =
        Vec::new();
    if let Some(fail_after) = options.pressure.sink_fail_after {
        if let Some(first) = configs.first() {
            let shadow: Vec<Recorder> = (0..n)
                .map(|i| {
                    let mut rec = Recorder::new(CoreId::new(i as u8), first.clone());
                    let sink = relaxreplay::FailingSink::new(fail_after);
                    sink_handles.push(sink.handle());
                    rec.set_sink(Box::new(sink));
                    rec
                })
                .collect();
            recorders.push(shadow);
        }
    }
    let has_shadow = !sink_handles.is_empty();
    // CISN-wrap pressure: burn through empty intervals before the first
    // instruction so the interesting part of the run records with its
    // interval counters near (and past) the 16-bit wrap point.
    if options.pressure.preadvance_intervals > 0 {
        for variant in &mut recorders {
            for rec in variant.iter_mut() {
                rec.pre_advance_intervals(options.pressure.preadvance_intervals, 0);
            }
        }
    }
    let mut planner = SchedulePlanner::new(&options.schedule, n);
    let mut tick_order: Vec<usize> = (0..n).collect();
    let mut tracers: Vec<TraceCollector> = (0..n).map(|_| TraceCollector::new()).collect();
    // Event tracing: attach per-core rings to the first recorder variant
    // (its interval structure becomes the timeline) and keep a machine-
    // level ring for coherence traffic. Capture never feeds back into the
    // recorders, so enabling it cannot perturb the recorded logs.
    let mut event_trace = if cfg.trace.enabled() && !configs.is_empty() {
        for (i, rec) in recorders[0].iter_mut().enumerate() {
            rec.set_tracer(TraceRing::new(CoreId::new(i as u8), &cfg.trace));
        }
        Some(RunTrace::new(n, &cfg.trace))
    } else {
        None
    };
    let directory = cfg.mem.mode == CoherenceMode::Directory;

    let mut cycle = 0u64;
    let final_cycle = loop {
        let out = mem.tick(cycle);
        for c in &out.completions {
            cores[c.core.index()].push_completion(c.req);
        }
        for snoop in &out.snoops {
            if let Some(t) = &mut event_trace {
                t.coherence.push(
                    cycle,
                    TraceEvent::Coherence {
                        from: snoop.from.index() as u8,
                        line: snoop.line.line_number(),
                        is_write: snoop.is_write,
                    },
                );
            }
            for variant in &mut recorders {
                // Observers process the snoop, then "reply" with ordering
                // information for the requester's current interval — the
                // Cyrus-style piggyback the paper's §3.6 pairing implies.
                let mut edges: Vec<(CoreId, u64)> = Vec::new();
                for (i, rec) in variant.iter_mut().enumerate() {
                    let core = CoreId::new(i as u8);
                    if snoop.scope.observes(core) {
                        rec.on_snoop(snoop.line, snoop.is_write, cycle);
                        if let Some(ord) = rec.intervals_completed().checked_sub(1) {
                            edges.push((core, ord));
                        }
                    }
                }
                if snoop.from.index() < n {
                    let requester = &mut variant[snoop.from.index()];
                    for (core, ord) in edges {
                        requester.on_predecessor(core, ord);
                    }
                }
            }
        }
        if directory {
            for &(core, line) in &out.dirty_evictions {
                if core.index() < n {
                    for variant in &mut recorders {
                        variant[core.index()].on_dirty_eviction(line, cycle);
                    }
                }
            }
        }
        planner.fill_order(cycle, &mut tick_order);
        for &i in &tick_order {
            let stalled = planner.stalls(cycle, i);
            let mut observers: Vec<&mut dyn CoreObserver> = recorders
                .iter_mut()
                .map(|v| &mut v[i] as &mut dyn CoreObserver)
                .collect();
            observers.push(&mut tracers[i]);
            let mut fanout = FanoutObserver::new(observers);
            if stalled {
                // A stalled pipeline still performs accesses whose
                // completions arrive this cycle (the memory system's
                // perform-at-delivery contract): otherwise a remote
                // conflicting snoop can land between completion and
                // perform and the recorder never sees the conflict.
                report.stalled_ticks += 1;
                cores[i].drain_completions(cycle, &mut img, &mut fanout);
            } else {
                cores[i].tick(cycle, &mut img, &mut mem, &mut fanout);
            }
        }
        if let Some(period) = options.pressure.force_close_period {
            if period > 0 && cycle > 0 && cycle.is_multiple_of(period) {
                for variant in &mut recorders {
                    for rec in variant.iter_mut() {
                        rec.force_terminate(cycle);
                        report.forced_closes += 1;
                    }
                }
            }
        }
        for variant in &mut recorders {
            for rec in variant.iter_mut() {
                rec.tick(cycle);
            }
        }
        if cfg.invariant_check_period > 0 && cycle.is_multiple_of(cfg.invariant_check_period) {
            rr_mem::invariants::assert_swmr(&mem);
        }
        if cores.iter().all(Core::is_done) && mem.quiescent() {
            break cycle;
        }
        cycle += 1;
        if cycle >= cfg.max_cycles {
            return Err(SimError::Deadlock { at: cycle });
        }
    };

    let shadow_recs = if has_shadow { recorders.pop() } else { None };
    let mut variants = Vec::with_capacity(specs.len());
    for (vi, (spec, mut recs)) in specs.iter().zip(recorders).enumerate() {
        for r in &mut recs {
            r.finish(final_cycle);
        }
        if vi == 0 {
            if let Some(t) = &mut event_trace {
                for (i, r) in recs.iter_mut().enumerate() {
                    if let Some(ring) = r.take_tracer() {
                        t.cores[i] = ring;
                    }
                }
            }
        }
        let stats = recs.iter().map(|r| r.stats().clone()).collect();
        let ordering = recs.iter().map(|r| r.ordering().clone()).collect();
        let logs = recs.into_iter().map(Recorder::into_log).collect();
        variants.push(VariantResult {
            spec: spec.clone(),
            logs,
            stats,
            ordering,
        });
    }

    // Audit the failing-sink shadow against the (fault-free) first
    // variant's final log: accepted prefix + retained buffer must
    // reproduce it exactly on every core.
    if let Some(mut shadow) = shadow_recs {
        for r in &mut shadow {
            r.finish(final_cycle);
        }
        let mut sink_report = SinkFaultReport {
            prefix_intact: true,
            ..SinkFaultReport::default()
        };
        for r in &shadow {
            sink_report.poisoned.push(r.is_poisoned());
            sink_report.streamed.push(r.streamed_entries());
            sink_report
                .errors
                .push(r.sink_error().map(ToString::to_string).unwrap_or_default());
        }
        for (i, r) in shadow.into_iter().enumerate() {
            let buffered = r.into_log().entries;
            sink_report.retained.push(buffered.len());
            let mut combined = sink_handles[i]
                .lock()
                .expect("sink handle poisoned")
                .clone();
            combined.extend(buffered);
            if variants
                .first()
                .is_none_or(|v| v.logs[i].entries != combined)
            {
                sink_report.prefix_intact = false;
            }
        }
        report.sink = Some(sink_report);
    }

    Ok((
        RunResult {
            cycles: final_cycle,
            core_stats: cores.iter().map(|c| c.stats().clone()).collect(),
            mem_stats: mem.stats().clone(),
            recorded: RecordedExecution {
                final_mem: img,
                load_traces: tracers
                    .into_iter()
                    .map(TraceCollector::into_trace)
                    .collect(),
            },
            variants,
            clock_ghz: cfg.clock_ghz,
            trace: event_trace,
        },
        report,
    ))
}

/// Patches and replays one variant's logs on the sequential engine,
/// verifying the replay against the recorded execution. Returns the replay
/// outcome (with its cost-model cycle estimates) on success.
///
/// # Errors
///
/// Returns the first patch, replay or verification failure as a typed
/// [`crate::Error`] — any of which means determinism was broken — or an
/// out-of-range `variant` index.
pub fn replay_and_verify(
    programs: &[Program],
    initial_mem: &MemImage,
    result: &RunResult,
    variant: usize,
    cost: &CostModel,
) -> Result<ReplayOutcome, crate::Error> {
    replay_and_verify_with(
        programs,
        initial_mem,
        result,
        variant,
        cost,
        ReplayEngine::Sequential,
    )
}

/// Like [`replay_and_verify`], but on the chosen [`ReplayEngine`]. A
/// threaded engine replays the variant's recorded partial order
/// ([`VariantResult::ordering`]) on a worker pool; the verification step is
/// identical, so a divergence at any worker count fails the same way.
///
/// # Errors
///
/// Same as [`replay_and_verify`], plus the DAG validation errors on
/// corrupted ordering data.
pub fn replay_and_verify_with(
    programs: &[Program],
    initial_mem: &MemImage,
    result: &RunResult,
    variant: usize,
    cost: &CostModel,
    engine: ReplayEngine,
) -> Result<ReplayOutcome, crate::Error> {
    let v = result.variants.get(variant).ok_or_else(|| {
        crate::Error::msg(format!(
            "variant index {variant} out of range ({} recorded)",
            result.variants.len()
        ))
    })?;
    let patched: Vec<_> = v
        .logs
        .iter()
        .map(patch)
        .collect::<Result<_, _>>()
        .map_err(|e| crate::Error::from(e).context("patch failed"))?;
    let ordering = (!v.ordering.is_empty()).then_some(v.ordering.as_slice());
    let outcome = rr_replay::replay_with(
        programs,
        &patched,
        ordering,
        initial_mem.clone(),
        cost,
        engine,
    )
    .map_err(|e| crate::Error::from(e).context(format!("replay failed [{}]", engine.label())))?;
    rr_replay::verify(&result.recorded, &outcome).map_err(|e| {
        crate::Error::from(e).context(format!(
            "verification failed [{} {}]",
            v.spec.label(),
            engine.label()
        ))
    })?;
    Ok(outcome)
}

/// Like [`replay_and_verify`], but with divergence forensics: the replay
/// and verification steps are traced, and if verification fails **and**
/// the run was recorded with tracing enabled, a `divergence.md` report —
/// both timelines' event windows around the divergent instruction — is
/// written into `report_dir` and its path included in the error message.
///
/// # Errors
///
/// Same as [`replay_and_verify`]; a forensic report failure (I/O) is
/// appended to the verification error's context rather than masking it.
pub fn replay_and_verify_forensic(
    programs: &[Program],
    initial_mem: &MemImage,
    result: &RunResult,
    variant: usize,
    cost: &CostModel,
    report_dir: &std::path::Path,
) -> Result<ReplayOutcome, crate::Error> {
    replay_and_verify_forensic_with(
        programs,
        initial_mem,
        result,
        variant,
        cost,
        report_dir,
        ReplayEngine::Sequential,
    )
}

/// Like [`replay_and_verify_forensic`], but on the chosen
/// [`ReplayEngine`]. The forensic tracer is inherently sequential, so a
/// threaded replay that diverges is re-run on the sequential engine to
/// localize the fault: if the sequential replay *also* diverges its
/// forensic report is returned, and if it verifies the error reports an
/// engine-specific divergence (a threaded-executor bug, not a bad log).
///
/// # Errors
///
/// Same as [`replay_and_verify_forensic`].
pub fn replay_and_verify_forensic_with(
    programs: &[Program],
    initial_mem: &MemImage,
    result: &RunResult,
    variant: usize,
    cost: &CostModel,
    report_dir: &std::path::Path,
    engine: ReplayEngine,
) -> Result<ReplayOutcome, crate::Error> {
    if let ReplayEngine::Threaded { .. } = engine {
        return match replay_and_verify_with(programs, initial_mem, result, variant, cost, engine) {
            Ok(outcome) => Ok(outcome),
            Err(err) => {
                match replay_and_verify_forensic_with(
                    programs,
                    initial_mem,
                    result,
                    variant,
                    cost,
                    report_dir,
                    ReplayEngine::Sequential,
                ) {
                    // Sequential replay verifies: the log is good and the
                    // threaded engine itself diverged.
                    Ok(_) => Err(err.context(format!(
                        "threaded replay ({} workers) diverged but the sequential \
                         replay verifies — engine-specific divergence",
                        engine.resolved_workers()
                    ))),
                    Err(seq_err) => Err(seq_err),
                }
            }
        };
    }
    let v = result.variants.get(variant).ok_or_else(|| {
        crate::Error::msg(format!(
            "variant index {variant} out of range ({} recorded)",
            result.variants.len()
        ))
    })?;
    let patched: Vec<_> = v
        .logs
        .iter()
        .map(patch)
        .collect::<Result<_, _>>()
        .map_err(|e| crate::Error::from(e).context("patch failed"))?;
    // The replay/verify ring is always captured here (the whole point of
    // this entry is forensics); it lives outside the simulated machine, so
    // it cannot perturb anything.
    let mut replay_ring = TraceRing::new(CoreId::new(u8::MAX), &TraceConfig::full());
    let outcome = rr_replay::replay_traced(
        programs,
        &patched,
        initial_mem.clone(),
        cost,
        Some(&mut replay_ring),
    )
    .map_err(|e| crate::Error::from(e).context("replay failed"))?;
    match rr_replay::verify_traced(&result.recorded, &outcome, Some(&mut replay_ring)) {
        Ok(()) => Ok(outcome),
        Err(err) => {
            let label = v.spec.label();
            let Some(record_trace) = &result.trace else {
                return Err(crate::Error::from(err).context(format!(
                    "verification failed [{label}] (record the run with \
                     tracing enabled to get a divergence report)"
                )));
            };
            let report = rr_replay::divergence_report(
                &err,
                &result.recorded,
                &outcome,
                record_trace,
                &replay_ring,
                rr_replay::forensics::DEFAULT_WINDOW,
            );
            let path = report_dir.join("divergence.md");
            match std::fs::create_dir_all(report_dir).and_then(|()| std::fs::write(&path, report)) {
                Ok(()) => Err(crate::Error::from(err).context(format!(
                    "verification failed [{label}] (forensic report: {})",
                    path.display()
                ))),
                Err(io) => Err(crate::Error::from(err).context(format!(
                    "verification failed [{label}] (report write failed: {io})"
                ))),
            }
        }
    }
}
