//! Durable on-disk run artifacts: save a recorded run's per-core `.rrlog`
//! files plus the replay-verification ground truth, and load them back in
//! a separate invocation — record once, replay many.
//!
//! Layout under the root directory passed to `--save-logs`:
//!
//! ```text
//! <dir>/<run-name>/
//!     manifest.txt            # lines: "cores <n>" then one variant label per line
//!     truth.bin               # RecordedExecution sidecar (CRC32-protected)
//!     <variant-label>/core<k>.rrlog
//!     <variant-label>/ordering.bin   # interval partial order (optional, CRC32)
//! ```
//!
//! The `ordering.bin` sidecar carries the recorded interval partial order
//! ([`IntervalOrdering`]) that enables parallel replay; runs saved without
//! it load fine and replay in the recorded total order.
//!
//! Run and variant names become path components verbatim, so they must not
//! contain separators; [`save_run`] rejects names that do.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use relaxreplay::wire::{crc32, read_varint, write_rrlog, write_varint};
use relaxreplay::{IntervalLog, IntervalOrdering, WireError};
use rr_isa::MemImage;
use rr_mem::CoreId;
use rr_replay::{read_rrlogs_parallel, IngestError, RecordedExecution};

use crate::machine::RunResult;

/// Magic tag opening a `truth.bin` ground-truth sidecar.
const TRUTH_MAGIC: &[u8; 4] = b"RRTR";
/// Sidecar format version.
const TRUTH_VERSION: u16 = 1;
/// Magic tag opening an `ordering.bin` interval-order sidecar.
const ORDER_MAGIC: &[u8; 4] = b"RROD";
/// Ordering sidecar format version.
const ORDER_VERSION: u16 = 1;

/// Errors from saving or loading a run directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogDirError {
    /// Filesystem failure (path included in the message).
    Io(String),
    /// An `.rrlog` file failed to decode.
    Wire(WireError),
    /// The manifest or ground-truth sidecar is malformed.
    Malformed(&'static str),
    /// A run or variant name is unusable as a path component.
    BadName(String),
}

impl fmt::Display for LogDirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogDirError::Io(m) => write!(f, "log dir I/O failed: {m}"),
            LogDirError::Wire(e) => write!(f, "log file failed to decode: {e}"),
            LogDirError::Malformed(d) => write!(f, "run directory malformed: {d}"),
            LogDirError::BadName(n) => {
                write!(f, "name {n:?} cannot be used as a path component")
            }
        }
    }
}

impl std::error::Error for LogDirError {}

impl From<WireError> for LogDirError {
    fn from(e: WireError) -> Self {
        LogDirError::Wire(e)
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> LogDirError {
    LogDirError::Io(format!("{}: {e}", path.display()))
}

/// Lowers a parallel-ingest failure to the log-dir error surface,
/// preserving the failing path in I/O messages.
fn ingest_err(e: IngestError) -> LogDirError {
    match e.source {
        WireError::Io(m) => LogDirError::Io(match e.path {
            Some(p) => format!("{}: {m}", p.display()),
            None => m,
        }),
        other => LogDirError::Wire(other),
    }
}

/// Validates a run or variant name as a safe path component (non-empty,
/// ASCII alphanumerics plus `- _ . @`, not `.`/`..`). The same rule
/// applies to local run directories and to remote store keys, so a run
/// saved locally can always be streamed to an `rr-serve` backend and back.
///
/// # Errors
///
/// Returns [`LogDirError::BadName`] when the name is unusable.
pub fn check_name(name: &str) -> Result<(), LogDirError> {
    let ok = !name.is_empty()
        && name != "."
        && name != ".."
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '@'));
    if ok {
        Ok(())
    } else {
        Err(LogDirError::BadName(name.to_string()))
    }
}

/// One recorder variant loaded back from disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SavedVariant {
    /// The variant's label (e.g. `Opt-4K`), as recorded in the manifest.
    pub label: String,
    /// Per-core interval logs, index = core id.
    pub logs: Vec<IntervalLog>,
    /// Per-core interval partial order, when the run was saved with an
    /// `ordering.bin` sidecar. `None` for runs saved by older versions —
    /// they replay in the recorded total order.
    pub ordering: Option<Vec<IntervalOrdering>>,
}

/// A complete recorded run loaded back from disk.
#[derive(Clone, Debug)]
pub struct SavedRun {
    /// The run's name (its subdirectory).
    pub name: String,
    /// Every saved recorder variant, in recording order.
    pub variants: Vec<SavedVariant>,
    /// Ground truth for replay verification.
    pub recorded: RecordedExecution,
}

impl SavedRun {
    /// The variant with the given label, if present.
    #[must_use]
    pub fn variant(&self, label: &str) -> Option<&SavedVariant> {
        self.variants.iter().find(|v| v.label == label)
    }
}

/// Saves one recorded run under `dir/name`: per-variant `.rrlog` files,
/// the ground-truth sidecar, and a manifest. Returns the total bytes
/// written to `.rrlog` files.
///
/// # Errors
///
/// Returns [`LogDirError`] on filesystem failure or unusable names.
#[deprecated(
    since = "0.2.0",
    note = "use `LocalStore::new(dir)` and the `RunStore` trait instead"
)]
pub fn save_run(dir: &Path, name: &str, result: &RunResult) -> Result<u64, LogDirError> {
    save_run_impl(dir, name, result)
}

pub(crate) fn save_run_impl(
    dir: &Path,
    name: &str,
    result: &RunResult,
) -> Result<u64, LogDirError> {
    check_name(name)?;
    let run_dir = dir.join(name);
    fs::create_dir_all(&run_dir).map_err(|e| io_err(&run_dir, &e))?;

    let cores = result.recorded.load_traces.len();
    let mut manifest = format!("cores {cores}\n");
    let mut log_bytes = 0u64;
    for variant in &result.variants {
        let label = variant.spec.label();
        check_name(&label)?;
        let vdir = run_dir.join(&label);
        fs::create_dir_all(&vdir).map_err(|e| io_err(&vdir, &e))?;
        for log in &variant.logs {
            let path = vdir.join(format!("core{}.rrlog", log.core.index()));
            write_rrlog(&path, log)?;
            log_bytes += fs::metadata(&path).map_err(|e| io_err(&path, &e))?.len();
        }
        if !variant.ordering.is_empty() {
            let opath = vdir.join("ordering.bin");
            fs::write(&opath, encode_ordering(&variant.ordering))
                .map_err(|e| io_err(&opath, &e))?;
        }
        manifest.push_str(&label);
        manifest.push('\n');
    }

    let truth_path = run_dir.join("truth.bin");
    fs::write(&truth_path, encode_truth(&result.recorded)).map_err(|e| io_err(&truth_path, &e))?;

    // Trace sidecars ride along when the run was recorded with tracing on:
    // the raw timeline as JSONL plus a Perfetto-loadable Chrome trace.
    if let Some(trace) = &result.trace {
        let jsonl_path = run_dir.join("trace.jsonl");
        fs::write(&jsonl_path, trace.to_jsonl(name)).map_err(|e| io_err(&jsonl_path, &e))?;
        let chrome_path = run_dir.join("trace.json");
        let chrome = relaxreplay::trace::chrome_trace(&[(name.to_string(), trace)]);
        fs::write(&chrome_path, chrome).map_err(|e| io_err(&chrome_path, &e))?;
    }

    let manifest_path = run_dir.join("manifest.txt");
    let mut f = fs::File::create(&manifest_path).map_err(|e| io_err(&manifest_path, &e))?;
    f.write_all(manifest.as_bytes())
        .map_err(|e| io_err(&manifest_path, &e))?;
    Ok(log_bytes)
}

/// Loads a run previously written by [`save_run`] from `dir/name`,
/// decoding the per-core `.rrlog` files on the default-width ingest pool
/// (see [`load_run_with`]).
///
/// # Errors
///
/// Returns [`LogDirError`] if the directory is missing, the manifest or
/// sidecar is malformed, or any `.rrlog` fails to decode (truncation and
/// corruption surface as typed [`WireError`]s, never panics).
#[deprecated(
    since = "0.2.0",
    note = "use `LocalStore::new(dir)` and the `RunStore` trait instead"
)]
pub fn load_run(dir: &Path, name: &str) -> Result<SavedRun, LogDirError> {
    load_run_impl(dir, name, 0)
}

/// As [`load_run`] with an explicit ingest worker count (0 = the host's
/// available parallelism). Every core's log of every variant is an
/// independent stream, so the whole run's `.rrlog` set is decoded in one
/// parallel batch before the variants are assembled; the result is
/// identical for any worker count.
///
/// # Errors
///
/// As [`load_run`].
#[deprecated(
    since = "0.2.0",
    note = "use `LocalStore::new(dir)` and the `RunStore` trait instead"
)]
pub fn load_run_with(dir: &Path, name: &str, workers: usize) -> Result<SavedRun, LogDirError> {
    load_run_impl(dir, name, workers)
}

pub(crate) fn load_run_impl(
    dir: &Path,
    name: &str,
    workers: usize,
) -> Result<SavedRun, LogDirError> {
    check_name(name)?;
    let run_dir = dir.join(name);
    let manifest_path = run_dir.join("manifest.txt");
    let manifest = fs::read_to_string(&manifest_path).map_err(|e| io_err(&manifest_path, &e))?;
    let mut lines = manifest.lines();
    let cores: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("cores "))
        .and_then(|n| n.parse().ok())
        .ok_or(LogDirError::Malformed("manifest missing cores line"))?;

    let labels: Vec<&str> = lines.filter(|l| !l.is_empty()).collect();
    let mut paths = Vec::with_capacity(labels.len() * cores);
    for label in &labels {
        check_name(label)?;
        let vdir = run_dir.join(label);
        for k in 0..cores {
            paths.push(vdir.join(format!("core{k}.rrlog")));
        }
    }
    let logs = read_rrlogs_parallel(&paths, workers).map_err(ingest_err)?;

    let mut variants = Vec::new();
    let mut it = logs.into_iter();
    for label in labels {
        let logs: Vec<IntervalLog> = it.by_ref().take(cores).collect();
        for (k, log) in logs.iter().enumerate() {
            if log.core.index() != k {
                return Err(LogDirError::Malformed("core id does not match file name"));
            }
        }
        let opath = run_dir.join(label).join("ordering.bin");
        let ordering = match fs::read(&opath) {
            Ok(bytes) => {
                let ord = decode_ordering(&bytes)?;
                if ord.len() != cores {
                    return Err(LogDirError::Malformed(
                        "ordering sidecar core count != manifest cores",
                    ));
                }
                Some(ord)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err(&opath, &e)),
        };
        variants.push(SavedVariant {
            label: label.to_string(),
            logs,
            ordering,
        });
    }

    let truth_path = run_dir.join("truth.bin");
    let truth_bytes = fs::read(&truth_path).map_err(|e| io_err(&truth_path, &e))?;
    let recorded = decode_truth(&truth_bytes)?;
    if recorded.load_traces.len() != cores {
        return Err(LogDirError::Malformed(
            "truth trace count != manifest cores",
        ));
    }

    Ok(SavedRun {
        name: name.to_string(),
        variants,
        recorded,
    })
}

/// Names of every run saved under `dir`, sorted for determinism.
///
/// # Errors
///
/// Returns [`LogDirError::Io`] if the directory cannot be read.
#[deprecated(
    since = "0.2.0",
    note = "use `LocalStore::new(dir)` and the `RunStore` trait instead"
)]
pub fn list_runs(dir: &Path) -> Result<Vec<String>, LogDirError> {
    list_runs_impl(dir)
}

pub(crate) fn list_runs_impl(dir: &Path) -> Result<Vec<String>, LogDirError> {
    let mut names = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, &e))?;
        let path: PathBuf = entry.path();
        if path.is_dir() && path.join("manifest.txt").is_file() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    Ok(names)
}

/// Serializes the ground truth: magic + version, varint-encoded final
/// memory (sorted address/value pairs) and per-thread load traces, closed
/// with a CRC32 over everything before it.
///
/// Public because remote stores ship the same sidecar bytes over the wire:
/// a run saved through `rr-serve` carries a `truth.bin` byte-identical to
/// the local one.
#[must_use]
pub fn encode_truth(recorded: &RecordedExecution) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(TRUTH_MAGIC);
    out.extend_from_slice(&TRUTH_VERSION.to_le_bytes());

    let mut cells: Vec<(u64, u64)> = recorded.final_mem.iter().collect();
    cells.sort_unstable();
    write_varint(&mut out, cells.len() as u64);
    for (addr, value) in cells {
        write_varint(&mut out, addr);
        write_varint(&mut out, value);
    }
    write_varint(&mut out, recorded.load_traces.len() as u64);
    for trace in &recorded.load_traces {
        write_varint(&mut out, trace.len() as u64);
        for &v in trace {
            write_varint(&mut out, v);
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Serializes the per-core interval partial order: magic + version, core
/// count, then per core the interval count followed by each interval's
/// timestamp, barrier flag and predecessor list; closed with a CRC32.
///
/// Public for the same reason as [`encode_truth`]: the `ordering.bin`
/// sidecar travels verbatim between local run directories and remote
/// stores.
#[must_use]
pub fn encode_ordering(ordering: &[IntervalOrdering]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(ORDER_MAGIC);
    out.extend_from_slice(&ORDER_VERSION.to_le_bytes());
    write_varint(&mut out, ordering.len() as u64);
    for ord in ordering {
        let n = ord.timestamps.len();
        write_varint(&mut out, n as u64);
        for k in 0..n {
            write_varint(&mut out, ord.timestamps[k]);
            out.push(u8::from(ord.barriers.get(k).copied().unwrap_or(false)));
            let empty = Vec::new();
            let preds = ord.preds.get(k).unwrap_or(&empty);
            write_varint(&mut out, preds.len() as u64);
            for &(core, ordinal) in preds {
                write_varint(&mut out, core.index() as u64);
                write_varint(&mut out, ordinal);
            }
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes an `ordering.bin` sidecar produced by [`encode_ordering`].
///
/// # Errors
///
/// Returns [`LogDirError::Malformed`] on any header, CRC, or structural
/// damage — never panics.
pub fn decode_ordering(bytes: &[u8]) -> Result<Vec<IntervalOrdering>, LogDirError> {
    const MALFORMED: LogDirError = LogDirError::Malformed("ordering sidecar truncated");
    if bytes.len() < 10 || &bytes[..4] != ORDER_MAGIC {
        return Err(LogDirError::Malformed("bad ordering sidecar header"));
    }
    if u16::from_le_bytes([bytes[4], bytes[5]]) != ORDER_VERSION {
        return Err(LogDirError::Malformed(
            "unsupported ordering sidecar version",
        ));
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(LogDirError::Malformed("ordering sidecar CRC mismatch"));
    }

    let mut pos = 6usize;
    let varint = |pos: &mut usize| read_varint(body, pos).ok_or(MALFORMED);
    let cores = varint(&mut pos)?;
    let mut ordering = Vec::new();
    for _ in 0..cores {
        let n = varint(&mut pos)?;
        let mut ord = IntervalOrdering::default();
        for _ in 0..n {
            ord.timestamps.push(varint(&mut pos)?);
            let flag = *body.get(pos).ok_or(MALFORMED)?;
            pos += 1;
            if flag > 1 {
                return Err(LogDirError::Malformed("ordering barrier flag not 0/1"));
            }
            ord.barriers.push(flag == 1);
            let np = varint(&mut pos)?;
            let mut preds = Vec::new();
            for _ in 0..np {
                let core = varint(&mut pos)?;
                let ordinal = varint(&mut pos)?;
                if core > u64::from(u8::MAX) {
                    return Err(LogDirError::Malformed("ordering predecessor core > 255"));
                }
                preds.push((CoreId::new(core as u8), ordinal));
            }
            ord.preds.push(preds);
        }
        ordering.push(ord);
    }
    if pos != body.len() {
        return Err(LogDirError::Malformed(
            "ordering sidecar has trailing bytes",
        ));
    }
    Ok(ordering)
}

/// Decodes a `truth.bin` sidecar produced by [`encode_truth`].
///
/// # Errors
///
/// Returns [`LogDirError::Malformed`] on any header, CRC, or structural
/// damage — never panics.
pub fn decode_truth(bytes: &[u8]) -> Result<RecordedExecution, LogDirError> {
    const MALFORMED: LogDirError = LogDirError::Malformed("truth sidecar truncated");
    if bytes.len() < 10 || &bytes[..4] != TRUTH_MAGIC {
        return Err(LogDirError::Malformed("bad truth sidecar header"));
    }
    if u16::from_le_bytes([bytes[4], bytes[5]]) != TRUTH_VERSION {
        return Err(LogDirError::Malformed("unsupported truth sidecar version"));
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(LogDirError::Malformed("truth sidecar CRC mismatch"));
    }

    let mut pos = 6usize;
    let varint = |pos: &mut usize| read_varint(body, pos).ok_or(MALFORMED);
    let cells = varint(&mut pos)?;
    let mut final_mem = MemImage::new();
    for _ in 0..cells {
        let addr = varint(&mut pos)?;
        let value = varint(&mut pos)?;
        final_mem.store(addr, value);
    }
    let threads = varint(&mut pos)?;
    let mut load_traces = Vec::new();
    for _ in 0..threads {
        let len = varint(&mut pos)?;
        let mut trace = Vec::new();
        for _ in 0..len {
            trace.push(varint(&mut pos)?);
        }
        load_traces.push(trace);
    }
    if pos != body.len() {
        return Err(LogDirError::Malformed("truth sidecar has trailing bytes"));
    }
    Ok(RecordedExecution {
        final_mem,
        load_traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_truth() -> RecordedExecution {
        let mut mem = MemImage::new();
        mem.store(0x8, 300);
        mem.store(0x1000, u64::MAX);
        RecordedExecution {
            final_mem: mem,
            load_traces: vec![vec![1, 2, 3], vec![], vec![u64::MAX, 0]],
        }
    }

    #[test]
    fn truth_round_trips() {
        let truth = sample_truth();
        let bytes = encode_truth(&truth);
        let back = decode_truth(&bytes).expect("decodes");
        assert!(back.final_mem.contents_eq(&truth.final_mem));
        assert_eq!(back.load_traces, truth.load_traces);
    }

    #[test]
    fn truth_corruption_is_detected() {
        let bytes = encode_truth(&sample_truth());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_truth(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        for cut in 0..bytes.len() {
            assert!(
                decode_truth(&bytes[..cut]).is_err(),
                "truncation at {cut} went undetected"
            );
        }
    }

    fn sample_ordering() -> Vec<IntervalOrdering> {
        vec![
            IntervalOrdering {
                preds: vec![vec![], vec![(CoreId::new(1), 0)]],
                barriers: vec![false, true],
                timestamps: vec![3, 17],
            },
            IntervalOrdering {
                preds: vec![vec![(CoreId::new(0), 0), (CoreId::new(0), 1)]],
                barriers: vec![false],
                timestamps: vec![9],
            },
        ]
    }

    #[test]
    fn ordering_round_trips() {
        let ordering = sample_ordering();
        let bytes = encode_ordering(&ordering);
        let back = decode_ordering(&bytes).expect("decodes");
        assert_eq!(back, ordering);
    }

    #[test]
    fn ordering_corruption_is_detected() {
        let bytes = encode_ordering(&sample_ordering());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_ordering(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        for cut in 0..bytes.len() {
            assert!(
                decode_ordering(&bytes[..cut]).is_err(),
                "truncation at {cut} went undetected"
            );
        }
    }

    #[test]
    fn names_are_validated() {
        assert!(check_name("fft-small").is_ok());
        assert!(check_name("Opt-4K").is_ok());
        assert!(check_name("").is_err());
        assert!(check_name("a/b").is_err());
        assert!(check_name("..").is_err());
    }
}
