//! The [`RunStore`] abstraction: one API for every place a recorded run
//! can live.
//!
//! PR 2 gave the experiments durable run directories (`rr_sim::logdir`);
//! the rr-serve backend adds a second, network-reachable home for the
//! same artifacts. This module is the seam between the two: a
//! [`RunStore`] saves, loads, lists, and stats complete recorded runs,
//! and everything above it — `--save-logs`, `--replay-from`, `rr-check`,
//! `rr-inspect` — speaks the trait, so a plain directory path and an
//! `rr://host:port/run` URL are interchangeable.
//!
//! * [`LocalStore`] wraps the `logdir` run-directory format (the old
//!   `save_run`/`load_run`/`list_runs` free functions survive as thin
//!   deprecated wrappers over it).
//! * `RemoteStore` (in the `rr-serve` crate, which depends on this one)
//!   speaks the RRSP/v1 protocol to a running `rr-serve`.
//! * [`StoreSpec`] is the URL parser: pure string classification with no
//!   networking, so `rr-sim` stays free of any transport dependency.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::logdir::{self, LogDirError, SavedRun};
use crate::machine::RunResult;

/// Where a run store lives, parsed from a CLI argument or environment
/// variable: a filesystem path, or an `rr://host:port[/run]` URL naming
/// an `rr-serve` backend (optionally scoped to one run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreSpec {
    /// A local `--save-logs`-style root directory.
    Local(PathBuf),
    /// A remote `rr-serve` backend at `addr` (`host:port`), optionally
    /// scoped to a single run name.
    Remote {
        /// The `host:port` to connect to.
        addr: String,
        /// A single run within the store, when the URL carried a path
        /// component (`rr://host:port/run-name`).
        run: Option<String>,
    },
}

impl StoreSpec {
    /// Parses a store spec: anything starting with `rr://` is a remote
    /// URL (`rr://host:port` for a whole store, `rr://host:port/name`
    /// for one run); everything else is a local directory path.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadSpec`] for malformed URLs: a missing
    /// `host:port`, an empty or nested run path, or an unusable run name.
    pub fn parse(spec: &str) -> Result<StoreSpec, StoreError> {
        let Some(rest) = spec.strip_prefix("rr://") else {
            if spec.is_empty() {
                return Err(StoreError::BadSpec("empty store spec".to_string()));
            }
            return Ok(StoreSpec::Local(PathBuf::from(spec)));
        };
        let (addr, run) = match rest.split_once('/') {
            Some((addr, run)) => (addr, Some(run)),
            None => (rest, None),
        };
        if addr.is_empty() || !addr.contains(':') {
            return Err(StoreError::BadSpec(format!(
                "{spec:?}: rr:// URLs need host:port"
            )));
        }
        let run = match run {
            None | Some("") => None,
            Some(name) => {
                if name.contains('/') {
                    return Err(StoreError::BadSpec(format!(
                        "{spec:?}: run names cannot be nested paths"
                    )));
                }
                logdir::check_name(name).map_err(|_| {
                    StoreError::BadSpec(format!("{spec:?}: unusable run name {name:?}"))
                })?;
                Some(name.to_string())
            }
        };
        Ok(StoreSpec::Remote {
            addr: addr.to_string(),
            run,
        })
    }

    /// The run name carried by the spec, if any (`rr://host:port/name`).
    /// Local paths never scope to a single run.
    #[must_use]
    pub fn run(&self) -> Option<&str> {
        match self {
            StoreSpec::Local(_) => None,
            StoreSpec::Remote { run, .. } => run.as_deref(),
        }
    }
}

impl fmt::Display for StoreSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreSpec::Local(p) => write!(f, "{}", p.display()),
            StoreSpec::Remote { addr, run: None } => write!(f, "rr://{addr}"),
            StoreSpec::Remote {
                addr,
                run: Some(run),
            } => write!(f, "rr://{addr}/{run}"),
        }
    }
}

/// The category of a remote-store failure, preserved across the wire so
/// callers can distinguish connectivity problems from data corruption
/// without parsing message strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteFault {
    /// The TCP connection could not be established.
    Connect,
    /// The connection died mid-conversation (send/receive failure).
    Io,
    /// A frame failed to parse, its CRC mismatched, or the peer spoke an
    /// unexpected message.
    Protocol,
    /// The peer's RRSP version is not supported.
    UnsupportedVersion,
    /// The named run does not exist in the store.
    UnknownRun,
    /// A run or variant name was rejected by the server.
    BadName,
    /// The request conflicted with the store's state (e.g. sealing a run
    /// that already exists with different contents).
    Conflict,
    /// A content-addressed blob failed its checksum on the server — the
    /// stored data is damaged.
    CorruptBlob,
    /// The run's catalog is missing, malformed, or inconsistent.
    Catalog,
    /// The server reported an internal failure.
    Server,
}

impl RemoteFault {
    /// Stable lowercase name (used in wire frames and error messages).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RemoteFault::Connect => "connect",
            RemoteFault::Io => "io",
            RemoteFault::Protocol => "protocol",
            RemoteFault::UnsupportedVersion => "unsupported-version",
            RemoteFault::UnknownRun => "unknown-run",
            RemoteFault::BadName => "bad-name",
            RemoteFault::Conflict => "conflict",
            RemoteFault::CorruptBlob => "corrupt-blob",
            RemoteFault::Catalog => "catalog",
            RemoteFault::Server => "server",
        }
    }
}

/// Errors from any [`RunStore`] implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// A local run-directory failure.
    Local(LogDirError),
    /// A remote store failure, categorized by [`RemoteFault`].
    Remote {
        /// What kind of failure this is.
        kind: RemoteFault,
        /// Human-readable detail (includes the address or object name).
        detail: String,
    },
    /// The store spec (path or `rr://` URL) was unparseable.
    BadSpec(String),
}

impl StoreError {
    /// Constructs a remote failure.
    #[must_use]
    pub fn remote(kind: RemoteFault, detail: impl Into<String>) -> Self {
        StoreError::Remote {
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Local(e) => write!(f, "{e}"),
            StoreError::Remote { kind, detail } => {
                write!(f, "remote store error ({}): {detail}", kind.name())
            }
            StoreError::BadSpec(d) => write!(f, "bad store spec: {d}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Local(e) => Some(e),
            StoreError::Remote { .. } | StoreError::BadSpec(_) => None,
        }
    }
}

impl From<LogDirError> for StoreError {
    fn from(e: LogDirError) -> Self {
        StoreError::Local(e)
    }
}

/// Per-variant sizing of a stored run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VariantStat {
    /// The variant's label.
    pub label: String,
    /// Chunks across all cores of the variant.
    pub chunks: u64,
    /// `.rrlog` payload-carrying bytes across all cores (headers and
    /// chunk framing included — the size of the materialized files).
    pub log_bytes: u64,
    /// Whether the variant carries an `ordering.bin` partial-order
    /// sidecar (parallel replay).
    pub has_ordering: bool,
}

/// Store-wide dedup accounting, reported by content-addressed backends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DedupStat {
    /// Distinct chunk blobs on disk.
    pub blobs: u64,
    /// Bytes those blobs occupy.
    pub blob_bytes: u64,
    /// Chunk bytes the catalogs reference (what the same runs would
    /// occupy without dedup).
    pub logical_bytes: u64,
}

impl DedupStat {
    /// Logical-over-physical ratio: 1.0 means no sharing, 2.0 means every
    /// blob is referenced twice on average.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.blob_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.blob_bytes as f64
    }
}

/// What a store knows about one run without decoding it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStat {
    /// The run's name.
    pub name: String,
    /// Recorded core count.
    pub cores: usize,
    /// Per-variant sizing, in recording order.
    pub variants: Vec<VariantStat>,
    /// Size of the ground-truth sidecar.
    pub truth_bytes: u64,
    /// Store-wide dedup accounting (content-addressed backends only;
    /// `None` for plain run directories).
    pub dedup: Option<DedupStat>,
}

/// A durable home for recorded runs: save, load, list, stat.
///
/// Implementations must be usable from multiple threads through `&self`
/// (the sweep engine saves from worker threads); hence the `Sync + Send`
/// bounds.
pub trait RunStore: Sync + Send {
    /// A human-readable identity for messages (`results/logs` or
    /// `rr://127.0.0.1:7878`).
    fn describe(&self) -> String;

    /// Saves one recorded run under `name`. Returns the logical `.rrlog`
    /// bytes the run encodes to (before any dedup).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on unusable names, I/O, or transport
    /// failures.
    fn save_run(&self, name: &str, result: &RunResult) -> Result<u64, StoreError>;

    /// Loads a complete run back, decoding on the default-width ingest
    /// pool.
    ///
    /// # Errors
    ///
    /// As [`RunStore::load_run_with`].
    fn load_run(&self, name: &str) -> Result<SavedRun, StoreError> {
        self.load_run_with(name, 0)
    }

    /// As [`RunStore::load_run`] with an explicit ingest worker count
    /// (0 = the host's available parallelism). The result is identical
    /// for any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the run is missing, any log fails to
    /// decode, or the transport fails. Corruption surfaces as a typed
    /// error, never a panic.
    fn load_run_with(&self, name: &str, workers: usize) -> Result<SavedRun, StoreError>;

    /// Names of every sealed run, sorted for determinism.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the store cannot be enumerated.
    fn list_runs(&self) -> Result<Vec<String>, StoreError>;

    /// Sizing and integrity summary for one run. Content-addressed
    /// backends verify the referenced blobs, so a damaged object surfaces
    /// here as [`RemoteFault::CorruptBlob`] rather than at replay time.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on unknown runs, damaged catalogs or blobs,
    /// or transport failures.
    fn stat_run(&self, name: &str) -> Result<RunStat, StoreError>;
}

/// The filesystem-backed [`RunStore`]: a root directory of `logdir` run
/// directories, exactly what `--save-logs <dir>` has always produced.
#[derive(Clone, Debug)]
pub struct LocalStore {
    root: PathBuf,
}

impl LocalStore {
    /// A store rooted at `root`. The directory is created lazily on the
    /// first save.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LocalStore { root: root.into() }
    }

    /// The root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }
}

impl RunStore for LocalStore {
    fn describe(&self) -> String {
        self.root.display().to_string()
    }

    fn save_run(&self, name: &str, result: &RunResult) -> Result<u64, StoreError> {
        Ok(logdir::save_run_impl(&self.root, name, result)?)
    }

    fn load_run_with(&self, name: &str, workers: usize) -> Result<SavedRun, StoreError> {
        Ok(logdir::load_run_impl(&self.root, name, workers)?)
    }

    fn list_runs(&self) -> Result<Vec<String>, StoreError> {
        Ok(logdir::list_runs_impl(&self.root)?)
    }

    fn stat_run(&self, name: &str) -> Result<RunStat, StoreError> {
        logdir::check_name(name)?;
        let run_dir = self.root.join(name);
        let manifest_path = run_dir.join("manifest.txt");
        let manifest = std::fs::read_to_string(&manifest_path)
            .map_err(|e| LogDirError::Io(format!("{}: {e}", manifest_path.display())))?;
        let mut lines = manifest.lines();
        let cores: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("cores "))
            .and_then(|n| n.parse().ok())
            .ok_or(LogDirError::Malformed("manifest missing cores line"))?;
        let mut variants = Vec::new();
        for label in lines.filter(|l| !l.is_empty()) {
            let vdir = run_dir.join(label);
            let mut chunks = 0u64;
            let mut log_bytes = 0u64;
            for k in 0..cores {
                let path = vdir.join(format!("core{k}.rrlog"));
                let bytes = std::fs::read(&path)
                    .map_err(|e| LogDirError::Io(format!("{}: {e}", path.display())))?;
                let (_, _, spans, damage) =
                    relaxreplay::wire::chunk_spans(&bytes).map_err(LogDirError::Wire)?;
                if let Some(e) = damage {
                    return Err(StoreError::Local(LogDirError::Wire(e)));
                }
                chunks += spans.len() as u64;
                log_bytes += bytes.len() as u64;
            }
            variants.push(VariantStat {
                label: label.to_string(),
                chunks,
                log_bytes,
                has_ordering: vdir.join("ordering.bin").is_file(),
            });
        }
        let truth_bytes = std::fs::metadata(run_dir.join("truth.bin"))
            .map(|m| m.len())
            .unwrap_or(0);
        Ok(RunStat {
            name: name.to_string(),
            cores,
            variants,
            truth_bytes,
            dedup: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_local_paths() {
        assert_eq!(
            StoreSpec::parse("results/logs").unwrap(),
            StoreSpec::Local(PathBuf::from("results/logs"))
        );
        assert!(StoreSpec::parse("").is_err());
    }

    #[test]
    fn spec_parses_remote_urls() {
        assert_eq!(
            StoreSpec::parse("rr://127.0.0.1:7878").unwrap(),
            StoreSpec::Remote {
                addr: "127.0.0.1:7878".to_string(),
                run: None,
            }
        );
        assert_eq!(
            StoreSpec::parse("rr://host:1/fft").unwrap(),
            StoreSpec::Remote {
                addr: "host:1".to_string(),
                run: Some("fft".to_string()),
            }
        );
        // A trailing slash scopes to the whole store.
        assert_eq!(StoreSpec::parse("rr://host:1/").unwrap().run(), None);
    }

    #[test]
    fn spec_rejects_malformed_urls() {
        for bad in [
            "rr://",
            "rr://hostonly",
            "rr://host:1/a/b",
            "rr://host:1/..",
            "rr://host:1/bad name",
        ] {
            assert!(
                matches!(StoreSpec::parse(bad), Err(StoreError::BadSpec(_))),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn spec_displays_round_trip() {
        for s in ["results/logs", "rr://h:1", "rr://h:1/fft"] {
            assert_eq!(StoreSpec::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn dedup_ratio_handles_zero() {
        let d = DedupStat {
            blobs: 0,
            blob_bytes: 0,
            logical_bytes: 0,
        };
        assert!((d.ratio() - 1.0).abs() < f64::EPSILON);
        let d = DedupStat {
            blobs: 1,
            blob_bytes: 100,
            logical_bytes: 300,
        };
        assert!((d.ratio() - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn remote_error_displays_kind() {
        let e = StoreError::remote(RemoteFault::CorruptBlob, "object 1234 damaged");
        assert_eq!(
            e.to_string(),
            "remote store error (corrupt-blob): object 1234 damaged"
        );
    }
}
