//! The parallel sweep engine: runs many independent simulations across OS
//! threads and collects results deterministically.
//!
//! The paper's evaluation is a cross-product of
//! {workload × recorder variant × coherence mode × machine config}, and
//! each cell is an independent, deterministic, single-threaded simulation.
//! That shape parallelizes perfectly: [`run_sweep`] spreads a job list
//! over `workers` OS threads via a shared work queue (an atomic cursor —
//! no channels, no external crates), while each [`JobOutput`] lands in the
//! slot keyed by its job index.
//!
//! **Determinism guarantee:** a job's result depends only on the job
//! description — never on which worker ran it, in what order, or how many
//! workers exist. [`SweepReport::outputs`] is always sorted by job index,
//! so the report (interval logs, metrics counters, everything except the
//! wall-clock [`PhaseNanos`]) is bit-identical for any worker count. The
//! `sweep_determinism` integration test pins this down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rr_isa::{MemImage, Program};
use rr_replay::{patch, replay, verify, CostModel, PatchedLog, ReplayOutcome};

use crate::config::{MachineConfig, RecorderSpec};
use crate::logdir::LogDirError;
use crate::machine::{PressureReport, RunOptions, RunResult, SimError};
use crate::metrics::{self, MetricsRegistry, PhaseNanos};
use crate::session::RecordSession;

/// Whether (and how) a sweep job replays what it recorded.
#[derive(Clone, Debug)]
pub enum ReplayPolicy {
    /// Record only.
    Skip,
    /// Replay every variant with this cost model.
    Fixed(CostModel),
    /// Replay every variant, scaling the model's replay IPC to the
    /// recorded execution's per-core IPC times `headroom` (native replay
    /// re-executes with warm caches and no contention, so it is at least
    /// as fast as the recorded cores — the experiment harness's policy).
    AdaptiveIpc {
        /// The baseline cost model (its `replay_ipc` is the floor).
        base: CostModel,
        /// Multiplier over the recorded per-core IPC.
        headroom: f64,
    },
}

/// One independent simulation in a sweep.
#[derive(Clone, Debug)]
pub struct SweepJob {
    /// Human-readable identity (ends up in reports and JSONL sidecars).
    pub name: String,
    /// One program per thread.
    pub programs: Vec<Program>,
    /// Initial shared memory.
    pub initial_mem: MemImage,
    /// The machine to run on.
    pub machine: MachineConfig,
    /// Recorder configurations to attach (the general form; the ablation
    /// studies sweep fields [`RecorderSpec`] cannot express).
    pub recorders: Vec<relaxreplay::RecorderConfig>,
    /// Replay-and-verify policy.
    pub replay: ReplayPolicy,
    /// Schedule perturbation and recorder pressure (default: none — the
    /// plain machine).
    pub options: RunOptions,
}

impl SweepJob {
    /// A job recording under the given paper-matrix variants.
    #[must_use]
    pub fn from_specs(
        name: impl Into<String>,
        programs: Vec<Program>,
        initial_mem: MemImage,
        machine: MachineConfig,
        specs: &[RecorderSpec],
        replay: ReplayPolicy,
    ) -> Self {
        SweepJob {
            name: name.into(),
            programs,
            initial_mem,
            machine,
            recorders: specs.iter().map(RecorderSpec::recorder_config).collect(),
            replay,
            options: RunOptions::default(),
        }
    }
}

/// Everything one job produced.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// Index of the job in the submitted list.
    pub job: usize,
    /// The job's name.
    pub name: String,
    /// The recorded run (per-variant logs, stats, ground truth).
    pub run: RunResult,
    /// Replay outcomes, parallel to `run.variants` (empty under
    /// [`ReplayPolicy::Skip`]).
    pub replays: Vec<ReplayOutcome>,
    /// What the job's injected pressure (if any) actually did.
    pub pressure: PressureReport,
    /// Deterministic counters and histograms for this run.
    pub metrics: MetricsRegistry,
    /// Host wall-clock per phase (not deterministic; excluded from
    /// determinism comparisons).
    pub phases: PhaseNanos,
}

impl JobOutput {
    /// Renders this output as one JSONL line (identity + metrics +
    /// phase timings).
    #[must_use]
    pub fn jsonl_line(&self) -> String {
        metrics::jsonl_object(&self.name, self.job, &self.metrics, &self.phases)
    }
}

/// The result of a whole sweep.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// One output per job, sorted by job index — bit-identical regardless
    /// of worker count (wall-clock fields aside).
    pub outputs: Vec<JobOutput>,
    /// Workers the sweep ran with.
    pub workers: usize,
    /// Wall-clock nanoseconds for the whole sweep.
    pub wall_ns: u64,
}

impl SweepReport {
    /// All outputs rendered as JSONL, one line per job.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for o in &self.outputs {
            out.push_str(&o.jsonl_line());
            out.push('\n');
        }
        out
    }

    /// Saves every job's recorded run under `dir` as `.rrlog` files plus
    /// ground-truth sidecars (see [`crate::logdir`]), keyed by job name.
    /// Returns the total `.rrlog` bytes written.
    ///
    /// # Errors
    ///
    /// Returns [`LogDirError`] on the first job that fails to save.
    pub fn save_logs(&self, dir: &std::path::Path) -> Result<u64, LogDirError> {
        let mut bytes = 0u64;
        for o in &self.outputs {
            bytes += crate::logdir::save_run_impl(dir, &o.name, &o.run)?;
        }
        Ok(bytes)
    }

    /// Saves every job's recorded run into `store` (local directory or
    /// remote rr-serve backend), keyed by job name. Returns the total
    /// logical `.rrlog` bytes encoded.
    ///
    /// # Errors
    ///
    /// Returns [`crate::store::StoreError`] on the first job that fails
    /// to save.
    pub fn save_to(
        &self,
        store: &dyn crate::store::RunStore,
    ) -> Result<u64, crate::store::StoreError> {
        let mut bytes = 0u64;
        for o in &self.outputs {
            bytes += store.save_run(&o.name, &o.run)?;
        }
        Ok(bytes)
    }
}

/// A sweep failure, attributed to the job that caused it.
#[derive(Clone, Debug)]
pub enum SweepError {
    /// The simulation itself failed.
    Sim {
        /// Failing job index.
        job: usize,
        /// Failing job name.
        name: String,
        /// The underlying error.
        err: SimError,
    },
    /// A variant failed to patch, replay, or verify — a determinism bug.
    Replay {
        /// Failing job index.
        job: usize,
        /// Failing job name.
        name: String,
        /// Label of the failing variant.
        variant: String,
        /// Description of the failure.
        msg: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Sim { job, name, err } => {
                write!(f, "job {job} ({name}): {err}")
            }
            SweepError::Replay {
                job,
                name,
                variant,
                msg,
            } => write!(f, "job {job} ({name}) [{variant}]: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// The worker count to use when the caller does not care: the host's
/// available parallelism.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn run_job(job: usize, j: &SweepJob) -> Result<JobOutput, SweepError> {
    let mut phases = PhaseNanos::default();

    let t = Instant::now();
    let (run, pressure) = RecordSession::new(&j.programs, &j.initial_mem)
        .config(&j.machine)
        .recorder_configs(&j.recorders)
        .options(&j.options)
        .run_reported()
        .map_err(|err| SweepError::Sim {
            job,
            name: j.name.clone(),
            err,
        })?;
    phases.record = t.elapsed().as_nanos() as u64;

    let cost = match &j.replay {
        ReplayPolicy::Skip => None,
        ReplayPolicy::Fixed(c) => Some(*c),
        ReplayPolicy::AdaptiveIpc { base, headroom } => {
            let active = run
                .core_stats
                .iter()
                .filter(|s| s.active_cycles > 0)
                .count()
                .max(1);
            let per_core_ipc = run.total_instrs() as f64 / run.cycles.max(1) as f64 / active as f64;
            Some(CostModel {
                replay_ipc: (per_core_ipc * headroom).max(base.replay_ipc),
                ..*base
            })
        }
    };

    let mut replays = Vec::new();
    if let Some(cost) = cost {
        for v in &run.variants {
            let fail = |msg: String| SweepError::Replay {
                job,
                name: j.name.clone(),
                variant: v.spec.label(),
                msg,
            };
            let t = Instant::now();
            let patched: Vec<PatchedLog> = v
                .logs
                .iter()
                .map(patch)
                .collect::<Result<_, _>>()
                .map_err(|e| fail(format!("patch failed: {e}")))?;
            phases.patch += t.elapsed().as_nanos() as u64;

            let t = Instant::now();
            let outcome = replay(&j.programs, &patched, j.initial_mem.clone(), &cost)
                .map_err(|e| fail(format!("replay failed: {e}")))?;
            phases.replay += t.elapsed().as_nanos() as u64;

            let t = Instant::now();
            verify(&run.recorded, &outcome)
                .map_err(|e| fail(format!("verification failed: {e}")))?;
            phases.verify += t.elapsed().as_nanos() as u64;
            replays.push(outcome);
        }
    }

    let metrics = metrics::run_metrics(&run);
    Ok(JobOutput {
        job,
        name: j.name.clone(),
        run,
        replays,
        pressure,
        metrics,
        phases,
    })
}

/// Runs every job, spreading work over `workers` OS threads (clamped to
/// the job count; 0 means [`default_workers`]).
///
/// # Errors
///
/// Returns the failure of the lowest-indexed failing job — deterministic
/// even when several jobs fail under different worker interleavings.
pub fn run_sweep(jobs: &[SweepJob], workers: usize) -> Result<SweepReport, SweepError> {
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    }
    .min(jobs.len().max(1));
    let wall = Instant::now();

    let slots: Vec<Mutex<Option<Result<JobOutput, SweepError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    // A worker panic (e.g. an assert inside the simulator) must name the
    // workload that died, not surface as a bare thread-join error; catch
    // it per job and re-raise the lowest-indexed one after the scope.
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_job(i, &jobs[i])
                })) {
                    Ok(out) => *slots[i].lock().expect("sweep slot poisoned") = Some(out),
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(ToString::to_string)
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        panics.lock().expect("panic list poisoned").push((i, msg));
                    }
                }
            });
        }
    });

    let mut panics = panics.into_inner().expect("panic list poisoned");
    if let Some((i, msg)) = {
        panics.sort_by_key(|&(i, _)| i);
        panics.into_iter().next()
    } {
        panic!("sweep job {i} ({}) panicked: {msg}", jobs[i].name);
    }

    let mut outputs = Vec::with_capacity(jobs.len());
    for slot in slots {
        let out = slot
            .into_inner()
            .expect("sweep slot poisoned")
            .expect("every job index below the cursor was executed");
        outputs.push(out?);
    }
    Ok(SweepReport {
        outputs,
        workers,
        wall_ns: wall.elapsed().as_nanos() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_isa::{ProgramBuilder, Reg};

    fn tiny_job(name: &str, value: i64) -> SweepJob {
        let mut b = ProgramBuilder::new();
        b.load_imm(Reg::new(1), 0x100);
        b.load_imm(Reg::new(2), value);
        b.store(Reg::new(2), Reg::new(1), 0);
        b.halt();
        SweepJob::from_specs(
            name,
            vec![b.build()],
            MemImage::new(),
            MachineConfig::splash_default(1),
            &RecorderSpec::paper_matrix(),
            ReplayPolicy::Fixed(CostModel::splash_default()),
        )
    }

    #[test]
    fn sweep_runs_all_jobs_in_order() {
        let jobs: Vec<SweepJob> = (0..5).map(|i| tiny_job(&format!("j{i}"), i)).collect();
        let report = run_sweep(&jobs, 3).expect("sweep succeeds");
        assert_eq!(report.outputs.len(), 5);
        for (i, o) in report.outputs.iter().enumerate() {
            assert_eq!(o.job, i);
            assert_eq!(o.name, format!("j{i}"));
            assert_eq!(o.replays.len(), o.run.variants.len());
            assert_eq!(
                o.run.recorded.final_mem.load(0x100),
                i as u64,
                "job {i} stored its own index"
            );
        }
    }

    #[test]
    fn zero_workers_means_available_parallelism() {
        let jobs = vec![tiny_job("only", 9)];
        let report = run_sweep(&jobs, 0).expect("sweep succeeds");
        assert_eq!(report.workers, 1, "clamped to the job count");
    }

    #[test]
    fn sweep_errors_name_the_job() {
        let mut bad = tiny_job("bad", 1);
        bad.machine.max_cycles = 1; // guaranteed deadlock
        let jobs = vec![tiny_job("good", 0), bad];
        let err = run_sweep(&jobs, 2).expect_err("deadlocks");
        match err {
            SweepError::Sim { job, name, .. } => {
                assert_eq!(job, 1);
                assert_eq!(name, "bad");
            }
            SweepError::Replay { .. } => panic!("expected a sim error"),
        }
    }

    #[test]
    fn worker_panics_name_the_workload() {
        // Opt with a non-power-of-two Snoop Table size asserts inside
        // SnoopTable::new — a genuine config-bug panic, not an Err.
        let mut broken = tiny_job("broken-config", 1);
        broken.recorders = vec![{
            let mut c =
                relaxreplay::RecorderConfig::splash_default(relaxreplay::Design::Opt, Some(4096));
            c.snoop_entries = 3;
            c
        }];
        let jobs = vec![tiny_job("fine", 0), broken];
        let err = std::panic::catch_unwind(|| run_sweep(&jobs, 2)).expect_err("must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic message is a String");
        assert!(
            msg.contains("broken-config"),
            "panic names the workload: {msg}"
        );
        assert!(msg.contains("sweep job 1"), "{msg}");
    }

    #[test]
    fn jsonl_lines_have_identity_and_metrics() {
        let jobs = vec![tiny_job("alpha", 3)];
        let report = run_sweep(&jobs, 1).expect("sweep succeeds");
        let line = report.outputs[0].jsonl_line();
        assert!(line.starts_with("{\"name\":\"alpha\",\"job\":0,"), "{line}");
        assert!(line.contains("\"counters\""), "{line}");
        assert!(line.contains("\"record_ns\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
}
