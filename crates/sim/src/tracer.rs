use std::collections::HashMap;

use rr_cpu::{CoreObserver, PerformRecord};

/// Collects the value obtained by every load/RMW of one thread, in
/// retirement (program) order — the ground truth against which replay is
/// verified (`rr_replay::verify`).
///
/// Values are captured at perform time and committed to the trace at
/// retirement, so squashed speculative loads never pollute it.
#[derive(Clone, Debug, Default)]
pub struct TraceCollector {
    performed: HashMap<u64, u64>,
    trace: Vec<u64>,
}

impl TraceCollector {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-thread load-value trace collected so far.
    #[must_use]
    pub fn trace(&self) -> &[u64] {
        &self.trace
    }

    /// Consumes the collector, returning the trace.
    #[must_use]
    pub fn into_trace(self) -> Vec<u64> {
        self.trace
    }
}

impl CoreObserver for TraceCollector {
    fn on_dispatch(&mut self, _seq: u64, _is_mem: bool) -> bool {
        true
    }

    fn on_perform(&mut self, record: &PerformRecord) {
        if let Some(loaded) = record.loaded {
            self.performed.insert(record.seq, loaded);
        }
    }

    fn on_retire(&mut self, seq: u64, is_mem: bool, _cycle: u64) {
        if is_mem {
            if let Some(v) = self.performed.remove(&seq) {
                self.trace.push(v);
            }
        }
    }

    fn on_squash_after(&mut self, seq: u64, _cycle: u64) {
        self.performed.retain(|&s, _| s <= seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_mem::{AccessKind, LineAddr};

    fn perform(seq: u64, loaded: Option<u64>) -> PerformRecord {
        PerformRecord {
            seq,
            kind: if loaded.is_some() {
                AccessKind::Load
            } else {
                AccessKind::Store
            },
            addr: 0,
            line: LineAddr::containing(0),
            loaded,
            stored: None,
            cycle: 0,
        }
    }

    #[test]
    fn retirement_order_defines_the_trace() {
        let mut t = TraceCollector::new();
        // Loads perform out of order...
        t.on_perform(&perform(2, Some(20)));
        t.on_perform(&perform(1, Some(10)));
        // ...but retire in order.
        t.on_retire(1, true, 0);
        t.on_retire(2, true, 0);
        assert_eq!(t.trace(), &[10, 20]);
    }

    fn perform_rmw(seq: u64, loaded: u64, stored: u64) -> PerformRecord {
        PerformRecord {
            seq,
            kind: AccessKind::Rmw,
            addr: 0x80,
            line: LineAddr::containing(0x80),
            loaded: Some(loaded),
            stored: Some(stored),
            cycle: 0,
        }
    }

    #[test]
    fn squashed_rmw_redispatch_captures_the_new_loaded_value() {
        // An RMW performs with BOTH a loaded and a stored value; only the
        // loaded side belongs in the verification trace. A squash must
        // discard the speculative perform so the re-dispatched RMW (same
        // seq, different loaded value) defines the trace.
        let mut t = TraceCollector::new();
        t.on_perform(&perform(1, Some(10)));
        t.on_perform(&perform_rmw(2, 0xAA, 0xBB)); // speculative, squashed
        t.on_squash_after(1, 0);
        t.on_retire(1, true, 0);
        assert_eq!(t.trace(), &[10], "squashed RMW must not leak its value");
        // Re-dispatched with a different observed value (another core wrote
        // the location in between).
        t.on_perform(&perform_rmw(2, 0xCC, 0xDD));
        t.on_retire(2, true, 1);
        assert_eq!(t.trace(), &[10, 0xCC], "loaded value, never the stored one");
    }

    #[test]
    fn stores_and_squashed_loads_are_excluded() {
        let mut t = TraceCollector::new();
        t.on_perform(&perform(1, None)); // a store
        t.on_perform(&perform(3, Some(30))); // speculative, will squash
        t.on_squash_after(2, 0);
        t.on_retire(1, true, 0);
        assert!(t.trace().is_empty());
        // Re-dispatched seq 3 performs with a different value.
        t.on_perform(&perform(3, Some(31)));
        t.on_retire(3, true, 0);
        assert_eq!(t.trace(), &[31]);
    }
}
