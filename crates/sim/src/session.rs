//! The unified record-session API.
//!
//! [`RecordSession`] replaces the old `record` / `record_custom` /
//! `record_with` trio with one builder: name the workload, then layer on
//! exactly the knobs the run needs — machine config, recorder variants
//! (paper specs or fully custom configs), schedule perturbation, recorder
//! pressure, event tracing — and call [`RecordSession::run`]. Every stage
//! is optional; the defaults reproduce the paper's SPLASH-style machine
//! with the standard recorder matrix, and a builder with no options set is
//! byte-identical to the legacy entry points (pinned by the
//! `session_equivalence` test over the full litmus suite).
//!
//! ```no_run
//! use rr_isa::{MemImage, ProgramBuilder, Reg};
//! use rr_sim::RecordSession;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! b.load_imm(Reg::new(1), 1);
//! b.halt();
//! let programs = vec![b.build()];
//! let initial_mem = MemImage::new();
//! let result = RecordSession::new(&programs, &initial_mem).run()?;
//! assert_eq!(result.variants.len(), rr_sim::RecorderSpec::paper_matrix().len());
//! # Ok(())
//! # }
//! ```

use relaxreplay::{RecorderConfig, TraceConfig};
use rr_isa::{MemImage, Program};

use crate::config::{MachineConfig, RecorderSpec};
use crate::machine::{
    run_machine, PressureReport, PressureSpec, RunOptions, RunResult, ScheduleStrategy, SimError,
};

/// A builder-style recording session: workload → config → recorders →
/// options → trace → run.
#[derive(Clone, Debug)]
pub struct RecordSession<'a> {
    programs: &'a [Program],
    initial_mem: &'a MemImage,
    config: Option<MachineConfig>,
    recorders: Option<Vec<RecorderConfig>>,
    options: RunOptions,
}

impl<'a> RecordSession<'a> {
    /// A session recording `programs` (one thread per core) against
    /// `initial_mem`, with every knob at its default: a
    /// [`MachineConfig::splash_default`] machine sized to the thread
    /// count, the [`RecorderSpec::paper_matrix`] recorder variants, the
    /// baseline schedule, and no pressure or tracing.
    #[must_use]
    pub fn new(programs: &'a [Program], initial_mem: &'a MemImage) -> Self {
        RecordSession {
            programs,
            initial_mem,
            config: None,
            recorders: None,
            options: RunOptions::default(),
        }
    }

    /// Uses `config` for the simulated machine (cores, memory system,
    /// tracing) instead of the sized default.
    #[must_use]
    pub fn config(mut self, config: &MachineConfig) -> Self {
        self.config = Some(config.clone());
        self
    }

    /// Records with one variant per [`RecorderSpec`] (the paper-matrix
    /// level of control: design + interval limit, defaults elsewhere).
    #[must_use]
    pub fn specs(mut self, specs: &[RecorderSpec]) -> Self {
        self.recorders = Some(specs.iter().map(RecorderSpec::recorder_config).collect());
        self
    }

    /// Records with fully custom recorder configurations (ablation-study
    /// level of control: TRAQ depth, signature geometry, …).
    #[must_use]
    pub fn recorder_configs(mut self, configs: &[RecorderConfig]) -> Self {
        self.recorders = Some(configs.to_vec());
        self
    }

    /// Replaces the whole option block (schedule + pressure) at once —
    /// the bridge for callers that already hold a [`RunOptions`], e.g.
    /// the explore specs.
    #[must_use]
    pub fn options(mut self, options: &RunOptions) -> Self {
        self.options = options.clone();
        self
    }

    /// Perturbs the per-cycle core schedule (seeded stalls or priority
    /// rotation) instead of the deterministic baseline.
    #[must_use]
    pub fn schedule(mut self, schedule: ScheduleStrategy) -> Self {
        self.options.schedule = schedule;
        self
    }

    /// Applies recorder pressure (forced interval closes, CISN
    /// pre-advance, injected sink faults).
    #[must_use]
    pub fn pressure(mut self, pressure: PressureSpec) -> Self {
        self.options.pressure = pressure;
        self
    }

    /// Enables event tracing on the machine (overriding the config's
    /// trace setting) so the run carries a forensic timeline.
    #[must_use]
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        let cfg = self
            .config
            .take()
            .unwrap_or_else(|| MachineConfig::splash_default(self.programs.len()));
        self.config = Some(cfg.with_trace(trace));
        self
    }

    /// Records the session, discarding the pressure report (the common
    /// case — no pressure was injected).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the machine exceeds its cycle
    /// budget, or [`SimError::TooManyThreads`].
    pub fn run(self) -> Result<RunResult, SimError> {
        self.run_reported().map(|(run, _)| run)
    }

    /// Records the session and also returns the [`PressureReport`] saying
    /// what any injected pressure actually did.
    ///
    /// # Errors
    ///
    /// As [`RecordSession::run`].
    pub fn run_reported(self) -> Result<(RunResult, PressureReport), SimError> {
        let config = self
            .config
            .unwrap_or_else(|| MachineConfig::splash_default(self.programs.len()));
        let recorders = self.recorders.unwrap_or_else(|| {
            RecorderSpec::paper_matrix()
                .iter()
                .map(RecorderSpec::recorder_config)
                .collect()
        });
        run_machine(
            self.programs,
            self.initial_mem,
            &config,
            &recorders,
            &self.options,
        )
    }
}
