//! # rr-sim — the simulated multicore of the RelaxReplay reproduction
//!
//! A deterministic, cycle-stepped simulator combining:
//!
//! * `rr-cpu` out-of-order cores (release consistency, Table 1 parameters),
//! * the `rr-mem` MESI snoopy-ring (or directory) memory system,
//! * one or more `relaxreplay` recorder variants attached as observers,
//! * a [`TraceCollector`] capturing the ground truth for replay
//!   verification.
//!
//! The headline API is [`record`], which runs one thread per core to
//! completion and returns a [`RunResult`] carrying per-variant interval
//! logs plus every statistic the paper's figures need, and
//! [`replay_and_verify`], which closes the loop: patch → sequential replay
//! → determinism check against the recorded execution.
//!
//! ```no_run
//! use rr_isa::{MemImage, ProgramBuilder, Reg};
//! use rr_replay::CostModel;
//! use rr_sim::{record, replay_and_verify, MachineConfig, RecorderSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! b.load_imm(Reg::new(1), 1);
//! b.halt();
//! let programs = vec![b.build()];
//! let cfg = MachineConfig::splash_default(1);
//! let specs = RecorderSpec::paper_matrix();
//! let result = record(&programs, &MemImage::new(), &cfg, &specs)?;
//! for v in 0..specs.len() {
//!     replay_and_verify(&programs, &MemImage::new(), &result, v, &CostModel::splash_default())?;
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
pub mod explore;
pub mod logdir;
mod machine;
pub mod metrics;
pub mod sweep;
mod tracer;

pub use config::{MachineConfig, RecorderSpec};
pub use explore::{
    explore_one, explore_sweep, minimize_divergence, ExploreOutcome, ExploreReport, ExploreSpec,
    PressureMode,
};
pub use logdir::{list_runs, load_run, save_run, LogDirError, SavedRun, SavedVariant};
pub use machine::{
    record, record_custom, record_with, replay_and_verify, replay_and_verify_forensic,
    PressureReport, PressureSpec, RunOptions, RunResult, ScheduleStrategy, SimError,
    SinkFaultReport, VariantResult,
};
pub use metrics::{MetricsRegistry, PhaseNanos};
pub use sweep::{run_sweep, JobOutput, ReplayPolicy, SweepError, SweepJob, SweepReport};
pub use tracer::TraceCollector;
