//! # rr-sim — the simulated multicore of the RelaxReplay reproduction
//!
//! A deterministic, cycle-stepped simulator combining:
//!
//! * `rr-cpu` out-of-order cores (release consistency, Table 1 parameters),
//! * the `rr-mem` MESI snoopy-ring (or directory) memory system,
//! * one or more `relaxreplay` recorder variants attached as observers,
//! * a [`TraceCollector`] capturing the ground truth for replay
//!   verification.
//!
//! The headline API is [`RecordSession`], a builder that runs one thread
//! per core to completion and returns a [`RunResult`] carrying per-variant
//! interval logs plus every statistic the paper's figures need, and
//! [`replay_and_verify`], which closes the loop: patch → sequential replay
//! → determinism check against the recorded execution.
//!
//! ```no_run
//! use rr_isa::{MemImage, ProgramBuilder, Reg};
//! use rr_replay::CostModel;
//! use rr_sim::{replay_and_verify, RecordSession};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! b.load_imm(Reg::new(1), 1);
//! b.halt();
//! let programs = vec![b.build()];
//! let mem = MemImage::new();
//! let result = RecordSession::new(&programs, &mem).run()?;
//! for v in 0..result.variants.len() {
//!     replay_and_verify(&programs, &mem, &result, v, &CostModel::splash_default())?;
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod error;
pub mod explore;
pub mod logdir;
mod machine;
pub mod metrics;
mod session;
pub mod store;
pub mod sweep;
mod tracer;

pub use config::{MachineConfig, RecorderSpec};
pub use error::Error;
pub use explore::{
    explore_one, explore_one_with, explore_sweep, explore_sweep_with, minimize_divergence,
    ExploreOutcome, ExploreReport, ExploreSpec, PressureMode,
};
#[allow(deprecated)]
pub use logdir::{list_runs, load_run, load_run_with, save_run};
pub use logdir::{LogDirError, SavedRun, SavedVariant};
pub use machine::{
    replay_and_verify, replay_and_verify_forensic, replay_and_verify_forensic_with,
    replay_and_verify_with, PressureReport, PressureSpec, RunOptions, RunResult, ScheduleStrategy,
    SimError, SinkFaultReport, VariantResult,
};
pub use metrics::{MetricsRegistry, PhaseNanos};
pub use rr_replay::ReplayEngine;
pub use session::RecordSession;
pub use store::{
    DedupStat, LocalStore, RemoteFault, RunStat, RunStore, StoreError, StoreSpec, VariantStat,
};
pub use sweep::{run_sweep, JobOutput, ReplayPolicy, SweepError, SweepJob, SweepReport};
pub use tracer::TraceCollector;
