//! Schedule exploration and differential checking — the engine behind
//! `rr-check` (paper §5's "is replay deterministic?" claim, tested
//! adversarially instead of on happy paths).
//!
//! Each [`ExploreSpec`] names one *deterministic* perturbed execution: a
//! seed-derived [`ScheduleStrategy`] (stalls or priority rotation over
//! the machine step loop) plus an optional [`PressureMode`] stressing the
//! recorder where its arithmetic is most fragile (forced interval closes,
//! TRAQ near-overflow, signature aliasing, CISN wraparound, mid-record
//! sink faults). [`explore_sweep`] records every spec under **both**
//! paper designs (Base-4K and Opt-4K) on the parallel sweep engine, then
//! replays each log and runs the differential oracle
//! ([`rr_replay::cross_check`]): every replay must match the sequential
//! ground truth and every other replay, load for load, byte for byte.
//!
//! A divergence is a recorder/replayer bug. [`minimize_divergence`]
//! shrinks the offending spec to a locally minimal still-failing form
//! (fewer stalls, tamer pressure, smaller seed) via
//! [`rr_replay::minimize`], ready for forensic re-recording with tracing
//! enabled.

use rr_isa::{MemImage, Program};
use rr_replay::{cross_check, patch, replay, CostModel, PatchedLog, Shrink};

use crate::config::MachineConfig;
use crate::machine::{PressureSpec, RunOptions, ScheduleStrategy, SimError};
use crate::session::RecordSession;
use crate::sweep::{run_sweep, ReplayPolicy, SweepError, SweepJob, SweepReport};

/// The targeted stress modes `rr-check` can apply on top of a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PressureMode {
    /// No pressure: pure schedule exploration.
    None,
    /// Force-close intervals on a short period — tiny intervals, many
    /// `Forced` terminations, maximal interval-ordering traffic.
    ForceClose,
    /// Shrink the TRAQ to a handful of entries so it runs near overflow
    /// (back-pressuring dispatch) for the whole run.
    Traq,
    /// Shrink the Bloom signatures to one narrow bank so address aliasing
    /// is rampant — conservative conflict closes must stay sound.
    SigAlias,
    /// Pre-advance the interval counters past 65 500 so the 16-bit CISN
    /// wraps mid-run (the PR 4 wraparound-bug regression, end to end).
    CisnWrap,
    /// Stream a shadow recorder into a sink that fails mid-record and
    /// audit poisoning/retention against the fault-free log.
    SinkFault,
}

impl PressureMode {
    /// All modes, in CLI listing order.
    pub const ALL: [PressureMode; 6] = [
        PressureMode::None,
        PressureMode::ForceClose,
        PressureMode::Traq,
        PressureMode::SigAlias,
        PressureMode::CisnWrap,
        PressureMode::SinkFault,
    ];

    /// The CLI name (`--pressure <name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PressureMode::None => "none",
            PressureMode::ForceClose => "force-close",
            PressureMode::Traq => "traq",
            PressureMode::SigAlias => "sig-alias",
            PressureMode::CisnWrap => "cisn-wrap",
            PressureMode::SinkFault => "sink-fault",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        PressureMode::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// One deterministic perturbed execution to check: everything about it is
/// derived from the seed and the pressure mode, so a spec fully names a
/// reproducible case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreSpec {
    /// The exploration seed (0 = the unperturbed baseline schedule).
    pub seed: u64,
    /// Seed-derived schedule perturbation.
    pub schedule: ScheduleStrategy,
    /// Recorder stress to apply.
    pub pressure: PressureMode,
}

impl ExploreSpec {
    /// The spec for one seed: seed 0 keeps the baseline schedule (the
    /// reference point every sweep should include); odd seeds stall,
    /// even seeds rotate priority, with rates/periods varied by the seed
    /// so no two seeds explore the same schedule.
    #[must_use]
    pub fn for_seed(seed: u64, pressure: PressureMode) -> Self {
        let schedule = if seed == 0 {
            ScheduleStrategy::Baseline
        } else if seed % 2 == 1 {
            ScheduleStrategy::SeededStall {
                seed,
                stall_permille: (100 + (seed % 8) * 100) as u16,
                max_consecutive: 2 + (seed % 7) as u32,
            }
        } else {
            ScheduleStrategy::RotatePriority {
                period: 1 + seed % 13,
            }
        };
        ExploreSpec {
            seed,
            schedule,
            pressure,
        }
    }

    /// The run options realizing this spec's schedule + pressure.
    #[must_use]
    pub fn options(&self) -> RunOptions {
        let pressure = match self.pressure {
            PressureMode::None | PressureMode::Traq | PressureMode::SigAlias => {
                PressureSpec::default()
            }
            PressureMode::ForceClose => PressureSpec {
                force_close_period: Some(40 + self.seed % 80),
                ..PressureSpec::default()
            },
            PressureMode::CisnWrap => PressureSpec {
                // Close enough to 2^16 that a moderate run crosses it.
                preadvance_intervals: 65_500,
                ..PressureSpec::default()
            },
            PressureMode::SinkFault => PressureSpec {
                sink_fail_after: Some(1 + (self.seed % 16) as usize),
                ..PressureSpec::default()
            },
        };
        RunOptions {
            schedule: self.schedule.clone(),
            pressure,
        }
    }

    /// The recorder variants to check differentially: the two paper
    /// designs at 4K intervals, with TRAQ/signature pressure applied to
    /// both when the mode asks for it (both designs must survive it —
    /// that is the point of differential checking).
    #[must_use]
    pub fn recorder_configs(&self) -> Vec<relaxreplay::RecorderConfig> {
        [relaxreplay::Design::Base, relaxreplay::Design::Opt]
            .into_iter()
            .map(|design| {
                let mut c = relaxreplay::RecorderConfig::splash_default(design, Some(4096));
                match self.pressure {
                    PressureMode::Traq => {
                        c.traq_entries = 4 + (self.seed % 4) as usize;
                        c.count_per_cycle = 1;
                    }
                    PressureMode::SigAlias => {
                        c.sig_banks = 1;
                        c.sig_bits = 16;
                    }
                    _ => {}
                }
                c
            })
            .collect()
    }

    /// Variant labels, parallel to [`Self::recorder_configs`].
    #[must_use]
    pub fn variant_labels() -> [&'static str; 2] {
        ["Base-4K", "Opt-4K"]
    }

    /// A stable human-readable identity, e.g. `seed3/traq`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("seed{}/{}", self.seed, self.pressure.name())
    }
}

/// Shrinking an [`ExploreSpec`]: drop the pressure first (is the schedule
/// alone enough?), then tame the schedule itself — fewer stalls, slower
/// rotation, finally the baseline schedule.
impl Shrink for ExploreSpec {
    fn candidates(&self) -> Vec<Self> {
        let mut c = Vec::new();
        if self.pressure != PressureMode::None {
            c.push(ExploreSpec {
                pressure: PressureMode::None,
                ..self.clone()
            });
        }
        match self.schedule {
            ScheduleStrategy::Baseline => {}
            ScheduleStrategy::SeededStall {
                seed,
                stall_permille,
                max_consecutive,
            } => {
                c.push(ExploreSpec {
                    schedule: ScheduleStrategy::Baseline,
                    ..self.clone()
                });
                if stall_permille > 1 {
                    c.push(ExploreSpec {
                        schedule: ScheduleStrategy::SeededStall {
                            seed,
                            stall_permille: stall_permille / 2,
                            max_consecutive,
                        },
                        ..self.clone()
                    });
                }
                if max_consecutive > 1 {
                    c.push(ExploreSpec {
                        schedule: ScheduleStrategy::SeededStall {
                            seed,
                            stall_permille,
                            max_consecutive: max_consecutive / 2,
                        },
                        ..self.clone()
                    });
                }
            }
            ScheduleStrategy::RotatePriority { period } => {
                c.push(ExploreSpec {
                    schedule: ScheduleStrategy::Baseline,
                    ..self.clone()
                });
                c.push(ExploreSpec {
                    schedule: ScheduleStrategy::RotatePriority { period: period * 2 },
                    ..self.clone()
                });
            }
        }
        c
    }
}

/// The outcome of checking one spec.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// The spec that was checked.
    pub spec: ExploreSpec,
    /// Its job name in the sweep (`<workload>/<label>` style identity is
    /// the caller's; here it is just [`ExploreSpec::label`]).
    pub name: String,
    /// Cycles the perturbed run took.
    pub cycles: u64,
    /// What the injected pressure actually did.
    pub pressure: crate::machine::PressureReport,
    /// `None` = all variants agreed with ground truth and each other;
    /// `Some(description)` = a divergence (a recorder/replayer bug).
    pub divergence: Option<String>,
}

/// The result of an exploration sweep.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// One outcome per spec, in spec order.
    pub outcomes: Vec<ExploreOutcome>,
    /// The underlying sweep report (metrics/JSONL sidecars, wall clock).
    pub sweep: SweepReport,
}

impl ExploreReport {
    /// Outcomes that diverged.
    #[must_use]
    pub fn divergent(&self) -> Vec<&ExploreOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.divergence.is_some())
            .collect()
    }
}

fn check_run(
    programs: &[Program],
    initial_mem: &MemImage,
    run: &crate::machine::RunResult,
    pressure: &crate::machine::PressureReport,
    cost: &CostModel,
    replay_workers: &[usize],
) -> Option<String> {
    // Replay every variant's log — sequentially, then on the threaded
    // engine at every requested worker count — and cross-check all of the
    // outcomes at once: the zero-divergence gate covers every engine.
    let mut outcomes = Vec::with_capacity(run.variants.len() * (1 + replay_workers.len()));
    for v in &run.variants {
        let patched: Result<Vec<PatchedLog>, _> = v.logs.iter().map(patch).collect();
        let patched = match patched {
            Ok(p) => p,
            Err(e) => return Some(format!("[{}] patch failed: {e}", v.spec.label())),
        };
        match replay(programs, &patched, initial_mem.clone(), cost) {
            Ok(o) => outcomes.push((v.spec.label(), o)),
            Err(e) => return Some(format!("[{}] replay failed: {e}", v.spec.label())),
        }
        let ordering = (!v.ordering.is_empty()).then_some(v.ordering.as_slice());
        for &w in replay_workers {
            let engine = rr_replay::ReplayEngine::Threaded { workers: w };
            match rr_replay::replay_with(
                programs,
                &patched,
                ordering,
                initial_mem.clone(),
                cost,
                engine,
            ) {
                Ok(o) => outcomes.push((format!("{}/w{w}", v.spec.label()), o)),
                Err(e) => {
                    return Some(format!("[{}/w{w}] replay failed: {e}", v.spec.label()));
                }
            }
        }
    }
    let labeled: Vec<(&str, &rr_replay::ReplayOutcome)> = outcomes
        .iter()
        .map(|(label, o)| (label.as_str(), o))
        .collect();
    if let Err(e) = cross_check(&run.recorded, &labeled) {
        return Some(e.to_string());
    }
    // The sink-fault contract is part of the oracle: a faulted shadow
    // must poison, keep an accurate streamed count, and retain every
    // unsent entry.
    if let Some(sink) = &pressure.sink {
        if !sink.prefix_intact {
            return Some(format!(
                "sink-fault shadow lost or corrupted entries \
                 (streamed {:?}, retained {:?})",
                sink.streamed, sink.retained
            ));
        }
    }
    None
}

/// Records, replays, and cross-checks **one** spec. This is the
/// minimizer's probe (and the single-seed path of [`explore_sweep`]).
///
/// # Errors
///
/// Returns [`SimError`] if the perturbed simulation itself fails (e.g. a
/// total-stall schedule deadlocks); divergences are *not* errors — they
/// land in [`ExploreOutcome::divergence`].
pub fn explore_one(
    programs: &[Program],
    initial_mem: &MemImage,
    machine: &MachineConfig,
    spec: &ExploreSpec,
) -> Result<ExploreOutcome, SimError> {
    explore_one_with(programs, initial_mem, machine, spec, &[])
}

/// As [`explore_one`], additionally replaying every variant on the
/// threaded engine at each worker count in `replay_workers` and feeding
/// those outcomes into the same differential cross-check.
///
/// # Errors
///
/// Same as [`explore_one`].
pub fn explore_one_with(
    programs: &[Program],
    initial_mem: &MemImage,
    machine: &MachineConfig,
    spec: &ExploreSpec,
    replay_workers: &[usize],
) -> Result<ExploreOutcome, SimError> {
    let (run, pressure) = RecordSession::new(programs, initial_mem)
        .config(machine)
        .recorder_configs(&spec.recorder_configs())
        .options(&spec.options())
        .run_reported()?;
    let divergence = check_run(
        programs,
        initial_mem,
        &run,
        &pressure,
        &CostModel::splash_default(),
        replay_workers,
    );
    Ok(ExploreOutcome {
        spec: spec.clone(),
        name: spec.label(),
        cycles: run.cycles,
        pressure,
        divergence,
    })
}

/// Records every spec in parallel on the sweep engine, then replays and
/// cross-checks each recording. Divergences are collected, not fatal —
/// `rr-check` wants *all* of them, minimized, not just the first.
///
/// # Errors
///
/// Returns [`SweepError`] only if a simulation itself fails.
pub fn explore_sweep(
    programs: &[Program],
    initial_mem: &MemImage,
    machine: &MachineConfig,
    specs: &[ExploreSpec],
    workers: usize,
) -> Result<ExploreReport, SweepError> {
    explore_sweep_with(programs, initial_mem, machine, specs, workers, &[])
}

/// As [`explore_sweep`], additionally replaying every recording on the
/// threaded engine at each worker count in `replay_workers`; the threaded
/// outcomes enter the same cross-check as the sequential ones (labelled
/// `<variant>/w<n>`), so a divergence at any worker count fails the spec.
///
/// # Errors
///
/// Same as [`explore_sweep`].
pub fn explore_sweep_with(
    programs: &[Program],
    initial_mem: &MemImage,
    machine: &MachineConfig,
    specs: &[ExploreSpec],
    workers: usize,
    replay_workers: &[usize],
) -> Result<ExploreReport, SweepError> {
    let jobs: Vec<SweepJob> = specs
        .iter()
        .map(|spec| SweepJob {
            name: spec.label(),
            programs: programs.to_vec(),
            initial_mem: initial_mem.clone(),
            machine: machine.clone(),
            recorders: spec.recorder_configs(),
            // Replay + differential check happen below, against *all*
            // variants at once; the sweep only records.
            replay: ReplayPolicy::Skip,
            options: spec.options(),
        })
        .collect();
    let sweep = run_sweep(&jobs, workers)?;
    let cost = CostModel::splash_default();
    let outcomes = specs
        .iter()
        .zip(&sweep.outputs)
        .map(|(spec, out)| ExploreOutcome {
            spec: spec.clone(),
            name: out.name.clone(),
            cycles: out.run.cycles,
            pressure: out.pressure.clone(),
            divergence: check_run(
                programs,
                initial_mem,
                &out.run,
                &out.pressure,
                &cost,
                replay_workers,
            ),
        })
        .collect();
    Ok(ExploreReport { outcomes, sweep })
}

/// Shrinks a divergent spec to a locally minimal still-diverging form by
/// re-running [`explore_one`] on each candidate. Simulation errors during
/// probing count as "not failing" (the candidate is rejected), keeping
/// the minimizer total.
#[must_use]
pub fn minimize_divergence(
    programs: &[Program],
    initial_mem: &MemImage,
    machine: &MachineConfig,
    seed_spec: ExploreSpec,
) -> ExploreSpec {
    rr_replay::minimize(seed_spec, |cand| {
        explore_one(programs, initial_mem, machine, cand)
            .map(|o| o.divergence.is_some())
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_isa::{ProgramBuilder, Reg};

    fn racy_pair() -> (Vec<Program>, MemImage) {
        // Two threads hammering the same two lines: enough contention
        // that schedule perturbation actually changes interleavings.
        let mut programs = Vec::new();
        for t in 0..2u8 {
            let mut b = ProgramBuilder::new();
            b.load_imm(Reg::new(1), 0x100);
            b.load_imm(Reg::new(2), 0x140);
            for k in 0..12 {
                b.load_imm(Reg::new(3), i64::from(t) * 100 + k);
                b.store(Reg::new(3), Reg::new(1), 0);
                b.load(Reg::new(4), Reg::new(2), 0);
                b.store(Reg::new(4), Reg::new(2), 8);
            }
            b.halt();
            programs.push(b.build());
        }
        (programs, MemImage::new())
    }

    #[test]
    fn seed_zero_is_baseline_and_seeds_are_distinct() {
        let s0 = ExploreSpec::for_seed(0, PressureMode::None);
        assert_eq!(s0.schedule, ScheduleStrategy::Baseline);
        let s1 = ExploreSpec::for_seed(1, PressureMode::None);
        let s2 = ExploreSpec::for_seed(2, PressureMode::None);
        assert!(matches!(s1.schedule, ScheduleStrategy::SeededStall { .. }));
        assert!(matches!(
            s2.schedule,
            ScheduleStrategy::RotatePriority { .. }
        ));
    }

    #[test]
    fn pressure_mode_names_round_trip() {
        for m in PressureMode::ALL {
            assert_eq!(PressureMode::parse(m.name()), Some(m));
        }
        assert_eq!(PressureMode::parse("bogus"), None);
    }

    #[test]
    fn explore_one_agrees_on_a_racy_workload() {
        let (programs, mem) = racy_pair();
        let machine = MachineConfig::splash_default(2);
        for seed in 0..4 {
            let spec = ExploreSpec::for_seed(seed, PressureMode::None);
            let out = explore_one(&programs, &mem, &machine, &spec).expect("sim ok");
            assert_eq!(out.divergence, None, "seed {seed} diverged");
        }
    }

    #[test]
    fn perturbed_schedules_change_the_execution() {
        // The explorer is pointless if every seed yields the same run;
        // stalls must actually move cycles around.
        let (programs, mem) = racy_pair();
        let machine = MachineConfig::splash_default(2);
        let base = explore_one(
            &programs,
            &mem,
            &machine,
            &ExploreSpec::for_seed(0, PressureMode::None),
        )
        .expect("sim ok");
        let stalled = explore_one(
            &programs,
            &mem,
            &machine,
            &ExploreSpec::for_seed(1, PressureMode::None),
        )
        .expect("sim ok");
        assert_ne!(base.cycles, stalled.cycles, "stalls changed nothing");
    }

    #[test]
    fn cisn_wrap_pressure_crosses_the_wrap_point() {
        let (programs, mem) = racy_pair();
        let machine = MachineConfig::splash_default(2);
        let spec = ExploreSpec::for_seed(0, PressureMode::CisnWrap);
        let out = explore_one(&programs, &mem, &machine, &spec).expect("sim ok");
        assert_eq!(out.divergence, None);
        assert_eq!(out.pressure.preadvanced, 65_500);
    }

    #[test]
    fn sink_fault_pressure_reports_an_intact_prefix() {
        let (programs, mem) = racy_pair();
        let machine = MachineConfig::splash_default(2);
        let spec = ExploreSpec::for_seed(0, PressureMode::SinkFault);
        let out = explore_one(&programs, &mem, &machine, &spec).expect("sim ok");
        assert_eq!(out.divergence, None);
        let sink = out.pressure.sink.expect("shadow attached");
        assert!(sink.prefix_intact);
        assert!(
            sink.poisoned.iter().any(|&p| p),
            "fail_after=1 must fault on a workload with many entries"
        );
    }

    #[test]
    fn default_options_are_byte_identical_to_plain_run() {
        use crate::machine::PressureReport;
        let (programs, mem) = racy_pair();
        let machine = MachineConfig::splash_default(2);
        let configs = ExploreSpec::for_seed(0, PressureMode::None).recorder_configs();
        let plain = RecordSession::new(&programs, &mem)
            .config(&machine)
            .recorder_configs(&configs)
            .run()
            .expect("sim ok");
        let (with, report) = RecordSession::new(&programs, &mem)
            .config(&machine)
            .recorder_configs(&configs)
            .options(&RunOptions::default())
            .run_reported()
            .expect("sim ok");
        assert_eq!(plain.cycles, with.cycles);
        assert_eq!(report, PressureReport::default());
        for (a, b) in plain.variants.iter().zip(&with.variants) {
            for (la, lb) in a.logs.iter().zip(&b.logs) {
                assert_eq!(la.entries, lb.entries);
            }
        }
    }

    #[test]
    fn exploration_is_deterministic_per_seed() {
        let (programs, mem) = racy_pair();
        let machine = MachineConfig::splash_default(2);
        let spec = ExploreSpec::for_seed(5, PressureMode::ForceClose);
        let mut runs = (0..2).map(|_| {
            RecordSession::new(&programs, &mem)
                .config(&machine)
                .recorder_configs(&spec.recorder_configs())
                .options(&spec.options())
                .run_reported()
                .expect("sim ok")
        });
        let (a, ra) = runs.next().unwrap();
        let (b, rb) = runs.next().unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(ra, rb);
        for (va, vb) in a.variants.iter().zip(&b.variants) {
            for (la, lb) in va.logs.iter().zip(&vb.logs) {
                assert_eq!(la.entries, lb.entries);
            }
        }
    }

    #[test]
    fn minimizer_lands_on_baseline_for_an_always_failing_oracle() {
        // Drive minimize() with a fake oracle (always fails) — it must
        // walk the shrink lattice down to the fully minimal spec.
        let spec = ExploreSpec::for_seed(7, PressureMode::Traq);
        let min = rr_replay::minimize(spec, |_| true);
        assert_eq!(min.schedule, ScheduleStrategy::Baseline);
        assert_eq!(min.pressure, PressureMode::None);
    }
}
