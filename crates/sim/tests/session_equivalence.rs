//! `RecordSession` is a pure re-packaging of the legacy `record` /
//! `record_custom` / `record_with` entry points: for every litmus shape,
//! the builder must produce **byte-identical** `.rrlog` streams (and the
//! same cycle count and pressure report) as each deprecated function it
//! replaces. This is the compatibility contract that lets the trio be
//! deleted in a later release.
#![allow(deprecated)]

use relaxreplay::wire::encode_chunked;
use relaxreplay::RecorderConfig;
use rr_sim::{
    record, record_custom, record_with, MachineConfig, PressureSpec, RecordSession, RecorderSpec,
    RunOptions, RunResult, ScheduleStrategy,
};
use rr_workloads::litmus_suite;

/// Every recorded `.rrlog`, encoded, across all variants — the strongest
/// equality two runs can have.
fn wire_bytes(run: &RunResult) -> Vec<Vec<u8>> {
    run.variants
        .iter()
        .flat_map(|v| v.logs.iter().map(encode_chunked))
        .collect()
}

fn assert_same(name: &str, legacy: &RunResult, builder: &RunResult) {
    assert_eq!(legacy.cycles, builder.cycles, "{name}: cycle count");
    assert_eq!(
        legacy.variants.len(),
        builder.variants.len(),
        "{name}: variant count"
    );
    assert_eq!(
        wire_bytes(legacy),
        wire_bytes(builder),
        "{name}: .rrlog bytes differ"
    );
}

#[test]
fn builder_matches_record_on_the_litmus_suite() {
    let specs = RecorderSpec::paper_matrix();
    for w in litmus_suite() {
        let cfg = MachineConfig::splash_default(w.programs.len());
        let legacy = record(&w.programs, &w.initial_mem, &cfg, &specs)
            .unwrap_or_else(|e| panic!("{}: legacy record: {e}", w.name));
        let builder = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{}: builder: {e}", w.name));
        assert_same(w.name, &legacy, &builder);

        // The sized default config must also match an explicit
        // splash_default — i.e. a bare builder equals the common legacy
        // call shape.
        let bare = RecordSession::new(&w.programs, &w.initial_mem)
            .run()
            .unwrap_or_else(|e| panic!("{}: bare builder: {e}", w.name));
        assert_same(w.name, &legacy, &bare);
    }
}

#[test]
fn builder_matches_record_custom_on_the_litmus_suite() {
    let configs: Vec<RecorderConfig> = RecorderSpec::paper_matrix()
        .iter()
        .map(RecorderSpec::recorder_config)
        .collect();
    for w in litmus_suite() {
        let cfg = MachineConfig::splash_default(w.programs.len());
        let legacy = record_custom(&w.programs, &w.initial_mem, &cfg, &configs)
            .unwrap_or_else(|e| panic!("{}: legacy record_custom: {e}", w.name));
        let builder = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .recorder_configs(&configs)
            .run()
            .unwrap_or_else(|e| panic!("{}: builder: {e}", w.name));
        assert_same(w.name, &legacy, &builder);
    }
}

#[test]
fn builder_matches_record_with_under_schedule_and_pressure() {
    let configs: Vec<RecorderConfig> = RecorderSpec::paper_matrix()
        .iter()
        .map(RecorderSpec::recorder_config)
        .collect();
    let options = RunOptions {
        schedule: ScheduleStrategy::SeededStall {
            seed: 7,
            stall_permille: 250,
            max_consecutive: 3,
        },
        pressure: PressureSpec {
            force_close_period: Some(64),
            ..PressureSpec::default()
        },
    };
    for w in litmus_suite() {
        let cfg = MachineConfig::splash_default(w.programs.len());
        let (legacy, legacy_report) =
            record_with(&w.programs, &w.initial_mem, &cfg, &configs, &options)
                .unwrap_or_else(|e| panic!("{}: legacy record_with: {e}", w.name));
        let (builder, builder_report) = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .recorder_configs(&configs)
            .options(&options)
            .run_reported()
            .unwrap_or_else(|e| panic!("{}: builder: {e}", w.name));
        assert_same(w.name, &legacy, &builder);
        assert_eq!(legacy_report, builder_report, "{}: pressure report", w.name);

        // The granular setters compose to the same run as the option
        // block.
        let (granular, granular_report) = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .recorder_configs(&configs)
            .schedule(options.schedule.clone())
            .pressure(options.pressure.clone())
            .run_reported()
            .unwrap_or_else(|e| panic!("{}: granular builder: {e}", w.name));
        assert_same(w.name, &legacy, &granular);
        assert_eq!(legacy_report, granular_report, "{}: report", w.name);
    }
}
