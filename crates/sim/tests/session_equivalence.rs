//! `RecordSession` builder self-consistency: the different ways of
//! expressing the same run (specs vs. explicit recorder configs, bare
//! defaults vs. spelled-out defaults, an options block vs. granular
//! setters, `run` vs. `run_reported`) must produce **byte-identical**
//! `.rrlog` streams and the same cycle counts. This pins the contract the
//! deleted `record` / `record_custom` / `record_with` trio used to
//! guarantee, now entirely within the builder.

use relaxreplay::wire::encode_chunked;
use relaxreplay::RecorderConfig;
use rr_sim::{
    MachineConfig, PressureSpec, RecordSession, RecorderSpec, RunOptions, RunResult,
    ScheduleStrategy,
};
use rr_workloads::litmus_suite;

/// Every recorded `.rrlog`, encoded, across all variants — the strongest
/// equality two runs can have.
fn wire_bytes(run: &RunResult) -> Vec<Vec<u8>> {
    run.variants
        .iter()
        .flat_map(|v| v.logs.iter().map(encode_chunked))
        .collect()
}

fn assert_same(name: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.cycles, b.cycles, "{name}: cycle count");
    assert_eq!(a.variants.len(), b.variants.len(), "{name}: variant count");
    assert_eq!(wire_bytes(a), wire_bytes(b), "{name}: .rrlog bytes differ");
}

#[test]
fn specs_and_recorder_configs_agree_on_the_litmus_suite() {
    let specs = RecorderSpec::paper_matrix();
    let configs: Vec<RecorderConfig> = specs.iter().map(RecorderSpec::recorder_config).collect();
    for w in litmus_suite() {
        let cfg = MachineConfig::splash_default(w.programs.len());
        let via_specs = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{}: specs builder: {e}", w.name));
        let via_configs = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .recorder_configs(&configs)
            .run()
            .unwrap_or_else(|e| panic!("{}: configs builder: {e}", w.name));
        assert_same(w.name, &via_specs, &via_configs);

        // The sized default config must also match an explicit
        // splash_default — a bare builder equals the spelled-out shape.
        let bare = RecordSession::new(&w.programs, &w.initial_mem)
            .run()
            .unwrap_or_else(|e| panic!("{}: bare builder: {e}", w.name));
        let explicit = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .run()
            .unwrap_or_else(|e| panic!("{}: explicit builder: {e}", w.name));
        assert_same(w.name, &bare, &explicit);
    }
}

#[test]
fn run_and_run_reported_agree_under_default_options() {
    let configs: Vec<RecorderConfig> = RecorderSpec::paper_matrix()
        .iter()
        .map(RecorderSpec::recorder_config)
        .collect();
    for w in litmus_suite() {
        let cfg = MachineConfig::splash_default(w.programs.len());
        let plain = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .recorder_configs(&configs)
            .run()
            .unwrap_or_else(|e| panic!("{}: run: {e}", w.name));
        let (reported, report) = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .recorder_configs(&configs)
            .options(&RunOptions::default())
            .run_reported()
            .unwrap_or_else(|e| panic!("{}: run_reported: {e}", w.name));
        assert_same(w.name, &plain, &reported);
        assert_eq!(
            report,
            rr_sim::PressureReport::default(),
            "{}: default options must report no pressure",
            w.name
        );
    }
}

#[test]
fn options_block_matches_granular_setters_under_schedule_and_pressure() {
    let configs: Vec<RecorderConfig> = RecorderSpec::paper_matrix()
        .iter()
        .map(RecorderSpec::recorder_config)
        .collect();
    let options = RunOptions {
        schedule: ScheduleStrategy::SeededStall {
            seed: 7,
            stall_permille: 250,
            max_consecutive: 3,
        },
        pressure: PressureSpec {
            force_close_period: Some(64),
            ..PressureSpec::default()
        },
    };
    for w in litmus_suite() {
        let cfg = MachineConfig::splash_default(w.programs.len());
        let (block, block_report) = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .recorder_configs(&configs)
            .options(&options)
            .run_reported()
            .unwrap_or_else(|e| panic!("{}: options builder: {e}", w.name));
        let (granular, granular_report) = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .recorder_configs(&configs)
            .schedule(options.schedule.clone())
            .pressure(options.pressure.clone())
            .run_reported()
            .unwrap_or_else(|e| panic!("{}: granular builder: {e}", w.name));
        assert_same(w.name, &block, &granular);
        assert_eq!(block_report, granular_report, "{}: report", w.name);

        // The perturbed run must differ from the baseline — otherwise the
        // schedule/pressure plumbing silently became a no-op.
        let baseline = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .recorder_configs(&configs)
            .run()
            .unwrap_or_else(|e| panic!("{}: baseline builder: {e}", w.name));
        assert!(
            baseline.cycles != block.cycles || wire_bytes(&baseline) != wire_bytes(&block),
            "{}: schedule + pressure changed nothing",
            w.name
        );
    }
}
