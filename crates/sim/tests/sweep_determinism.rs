//! The sweep engine's determinism guarantee: the same job list produces
//! bit-identical results at every worker count. Interval logs are compared
//! by their encoded bytes and metrics by their full counter/histogram
//! JSON; only the wall-clock `PhaseNanos` may differ between runs.

use rr_replay::CostModel;
use rr_sim::{run_sweep, MachineConfig, RecorderSpec, ReplayPolicy, SweepJob, SweepReport};
use rr_workloads::suite;

fn jobs() -> Vec<SweepJob> {
    let machine = MachineConfig::splash_default(2);
    let specs = RecorderSpec::paper_matrix();
    suite(2, 1)
        .into_iter()
        .map(|w| {
            SweepJob::from_specs(
                w.name,
                w.programs,
                w.initial_mem,
                machine.clone(),
                &specs,
                ReplayPolicy::Fixed(CostModel::splash_default()),
            )
        })
        .collect()
}

/// Everything deterministic a sweep produced, flattened to bytes/strings.
fn fingerprint(report: &SweepReport) -> (Vec<Vec<u8>>, Vec<String>) {
    let mut logs = Vec::new();
    let mut metrics = Vec::new();
    for o in &report.outputs {
        for v in &o.run.variants {
            for log in &v.logs {
                logs.push(log.encode());
            }
        }
        metrics.push(o.metrics.to_json());
    }
    (logs, metrics)
}

#[test]
fn sweep_output_is_identical_at_1_2_and_8_workers() {
    let reference = run_sweep(&jobs(), 1).expect("sequential sweep succeeds");
    assert_eq!(reference.workers, 1);
    let (ref_logs, ref_metrics) = fingerprint(&reference);
    assert!(!ref_logs.is_empty());

    for workers in [2usize, 8] {
        let report = run_sweep(&jobs(), workers).expect("parallel sweep succeeds");
        let (logs, metrics) = fingerprint(&report);
        assert_eq!(
            logs, ref_logs,
            "interval logs must be byte-identical at {workers} workers"
        );
        assert_eq!(
            metrics, ref_metrics,
            "metrics counters must be identical at {workers} workers"
        );
        // Replay outcomes came from the same logs and were verified inside
        // the sweep; check their count survived too.
        for (o, r) in report.outputs.iter().zip(&reference.outputs) {
            assert_eq!(o.name, r.name);
            assert_eq!(o.replays.len(), r.replays.len());
        }
    }
}

#[test]
fn job_names_and_order_are_stable() {
    let names: Vec<String> = run_sweep(&jobs(), 3)
        .expect("sweep succeeds")
        .outputs
        .into_iter()
        .map(|o| o.name)
        .collect();
    let expected: Vec<String> = suite(2, 1).iter().map(|w| w.name.to_string()).collect();
    assert_eq!(names, expected);
}
