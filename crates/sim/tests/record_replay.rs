#![allow(clippy::needless_range_loop)] // variant index addresses parallel arrays
//! End-to-end record → patch → replay → verify tests: the core correctness
//! property of the whole system. Every recorder variant must reproduce the
//! exact load values and final memory of racy multi-threaded executions.

use rr_isa::{BranchCond, FenceKind, MemImage, Program, ProgramBuilder, Reg};
use rr_replay::CostModel;
use rr_sim::{replay_and_verify, MachineConfig, RecordSession, RecorderSpec};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

fn check_all_variants(programs: &[Program], initial: &MemImage, cores: usize) {
    let cfg = MachineConfig::splash_default(cores);
    let specs = RecorderSpec::paper_matrix();
    let result = RecordSession::new(programs, initial)
        .config(&cfg)
        .specs(&specs)
        .run()
        .expect("recording finishes");
    assert!(result.total_instrs() > 0);
    for v in 0..specs.len() {
        replay_and_verify(programs, initial, &result, v, &CostModel::splash_default())
            .unwrap_or_else(|e| panic!("variant {}: {e}", specs[v].label()));
    }
}

#[test]
fn single_thread_compute_replays() {
    let mut b = ProgramBuilder::new();
    let (i, acc, limit, base) = (r(1), r(2), r(3), r(4));
    b.load_imm(i, 0)
        .load_imm(acc, 0)
        .load_imm(limit, 200)
        .load_imm(base, 0x1000);
    let top = b.bind_new();
    b.op_imm(rr_isa::AluOp::Shl, r(5), i, 3);
    b.add(r(6), base, r(5));
    b.store(i, r(6), 0);
    b.load(r(7), r(6), 0);
    b.add(acc, acc, r(7));
    b.add_imm(i, i, 1);
    b.branch(BranchCond::Lt, i, limit, top);
    b.store(acc, base, -8);
    b.halt();
    check_all_variants(&[b.build()], &MemImage::new(), 1);
}

/// Two threads hammer disjoint words of the *same* cache lines (false
/// sharing): heavy coherence traffic, heavy interval termination.
#[test]
fn false_sharing_replays() {
    let make = |offset: i64| {
        let mut b = ProgramBuilder::new();
        let (i, limit, base) = (r(1), r(2), r(3));
        b.load_imm(i, 0).load_imm(limit, 150).load_imm(base, 0x2000);
        let top = b.bind_new();
        b.op_imm(rr_isa::AluOp::Shl, r(4), i, 5); // line stride
        b.add(r(5), base, r(4));
        b.store(i, r(5), offset);
        b.load(r(6), r(5), offset);
        b.add_imm(i, i, 1);
        b.branch(BranchCond::Lt, i, limit, top);
        b.halt();
        b.build()
    };
    // Thread 0 writes word 0 of each line, thread 1 writes word 1.
    check_all_variants(&[make(0), make(8)], &MemImage::new(), 2);
}

/// Unsynchronized racy counter increments: genuinely racy loads/stores
/// whose interleaving the recorder must capture exactly.
#[test]
fn racy_counter_replays() {
    let make = || {
        let mut b = ProgramBuilder::new();
        let (i, limit, addr, tmp) = (r(1), r(2), r(3), r(4));
        b.load_imm(i, 0).load_imm(limit, 100).load_imm(addr, 0x3000);
        let top = b.bind_new();
        b.load(tmp, addr, 0);
        b.add_imm(tmp, tmp, 1);
        b.store(tmp, addr, 0);
        b.add_imm(i, i, 1);
        b.branch(BranchCond::Lt, i, limit, top);
        b.halt();
        b.build()
    };
    check_all_variants(&[make(), make(), make(), make()], &MemImage::new(), 4);
}

#[test]
fn message_passing_replays() {
    let mut producer = ProgramBuilder::new();
    producer.load_imm(r(1), 0x100);
    producer.load_imm(r(2), 777);
    producer.store(r(2), r(1), 0);
    producer.fence(FenceKind::Release);
    producer.load_imm(r(3), 0x200);
    producer.load_imm(r(4), 1);
    producer.store(r(4), r(3), 0);
    producer.halt();

    let mut consumer = ProgramBuilder::new();
    consumer.load_imm(r(1), 0x200);
    consumer.load_imm(r(2), 1);
    let spin = consumer.bind_new();
    consumer.load(r(3), r(1), 0);
    consumer.branch(BranchCond::Ne, r(3), r(2), spin);
    consumer.fence(FenceKind::Acquire);
    consumer.load_imm(r(4), 0x100);
    consumer.load(r(5), r(4), 0);
    consumer.halt();

    check_all_variants(&[producer.build(), consumer.build()], &MemImage::new(), 2);
}

#[test]
fn spinlock_critical_sections_replay() {
    let make = || {
        let mut b = ProgramBuilder::new();
        let (laddr, caddr, zero, one, i, n, tmp) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
        b.load_imm(laddr, 0x5000)
            .load_imm(caddr, 0x5100)
            .load_imm(zero, 0)
            .load_imm(one, 1)
            .load_imm(i, 0)
            .load_imm(n, 30);
        let top = b.bind_new();
        let acquire = b.bind_new();
        b.cas(r(8), laddr, zero, one);
        b.branch(BranchCond::Ne, r(8), zero, acquire);
        b.load(tmp, caddr, 0);
        b.add_imm(tmp, tmp, 1);
        b.store(tmp, caddr, 0);
        b.fence(FenceKind::Release);
        b.store(zero, laddr, 0);
        b.add_imm(i, i, 1);
        b.branch(BranchCond::Lt, i, n, top);
        b.halt();
        b.build()
    };
    let programs = vec![make(), make(), make()];
    let cfg = MachineConfig::splash_default(4);
    let specs = RecorderSpec::paper_matrix();
    let result = RecordSession::new(&programs, &MemImage::new())
        .config(&cfg)
        .specs(&specs)
        .run()
        .expect("records");
    // Functional sanity: the lock worked.
    assert_eq!(result.recorded.final_mem.load(0x5100), 90);
    for v in 0..specs.len() {
        replay_and_verify(
            &programs,
            &MemImage::new(),
            &result,
            v,
            &CostModel::splash_default(),
        )
        .unwrap_or_else(|e| panic!("variant {}: {e}", specs[v].label()));
    }
}

#[test]
fn atomics_and_initial_memory_replay() {
    // Threads fetch-add slots of a shared array selected by data in the
    // *initial* memory image.
    let mut initial = MemImage::new();
    for i in 0..16u64 {
        initial.store(0x8000 + i * 8, (i % 4) * 64);
    }
    let make = |tid: i64| {
        let mut b = ProgramBuilder::new();
        let (i, n, tbl, one) = (r(1), r(2), r(3), r(4));
        b.load_imm(i, 0)
            .load_imm(n, 16)
            .load_imm(tbl, 0x8000)
            .load_imm(one, tid + 1);
        let top = b.bind_new();
        b.op_imm(rr_isa::AluOp::Shl, r(5), i, 3);
        b.add(r(6), tbl, r(5));
        b.load(r(7), r(6), 0); // slot offset from initial memory
        b.load_imm(r(8), 0x9000);
        b.add(r(9), r(8), r(7));
        b.fetch_add(r(10), r(9), one);
        b.add_imm(i, i, 1);
        b.branch(BranchCond::Lt, i, n, top);
        b.halt();
        b.build()
    };
    check_all_variants(&[make(0), make(1)], &initial, 2);
}

#[test]
fn directory_mode_replays() {
    let make = || {
        let mut b = ProgramBuilder::new();
        let (i, limit, addr, tmp) = (r(1), r(2), r(3), r(4));
        b.load_imm(i, 0).load_imm(limit, 80).load_imm(addr, 0x3000);
        let top = b.bind_new();
        b.load(tmp, addr, 0);
        b.add_imm(tmp, tmp, 1);
        b.store(tmp, addr, 0);
        b.add_imm(i, i, 1);
        b.branch(BranchCond::Lt, i, limit, top);
        b.halt();
        b.build()
    };
    let programs = vec![make(), make()];
    let cfg = MachineConfig::splash_default(2).with_directory();
    let specs = RecorderSpec::paper_matrix();
    let initial = MemImage::new();
    let result = RecordSession::new(&programs, &initial)
        .config(&cfg)
        .specs(&specs)
        .run()
        .expect("records");
    for v in 0..specs.len() {
        replay_and_verify(
            &programs,
            &initial,
            &result,
            v,
            &CostModel::splash_default(),
        )
        .unwrap_or_else(|e| panic!("variant {}: {e}", specs[v].label()));
    }
}

#[test]
fn recording_is_deterministic() {
    let make = || {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), 0x100).load_imm(r(2), 5);
        b.store(r(2), r(1), 0);
        b.load(r(3), r(1), 0);
        b.halt();
        b.build()
    };
    let programs = vec![make(), make()];
    let cfg = MachineConfig::splash_default(2);
    let specs = RecorderSpec::paper_matrix();
    let a = RecordSession::new(&programs, &MemImage::new())
        .config(&cfg)
        .specs(&specs)
        .run()
        .expect("records");
    let b = RecordSession::new(&programs, &MemImage::new())
        .config(&cfg)
        .specs(&specs)
        .run()
        .expect("records");
    assert_eq!(a.cycles, b.cycles);
    for (va, vb) in a.variants.iter().zip(&b.variants) {
        assert_eq!(va.logs, vb.logs, "logs must be bit-identical");
    }
}

#[test]
fn too_many_threads_is_an_error() {
    let mut b = ProgramBuilder::new();
    b.halt();
    let p = b.build();
    let programs = vec![p.clone(), p];
    let cfg = MachineConfig::splash_default(1);
    assert!(RecordSession::new(&programs, &MemImage::new())
        .config(&cfg)
        .specs(&[])
        .run()
        .is_err());
}
