//! Validates the recorded interval partial order (paper §3.6): replaying
//! every workload's intervals in a *topological* order chosen by the
//! parallel scheduler — generally very different from the timestamp total
//! order — must still reproduce every load value and the final memory.

use rr_replay::{patch, replay_parallel, verify, CostModel};
use rr_sim::{MachineConfig, RecordSession, RecorderSpec, RunResult};
use rr_workloads::{suite, Workload};

fn check_parallel(w: &Workload, result: &RunResult, variant: usize, workers: usize) -> f64 {
    let v = &result.variants[variant];
    let patched: Vec<_> = v.logs.iter().map(|l| patch(l).expect("patches")).collect();
    let outcome = replay_parallel(
        &w.programs,
        &patched,
        &v.ordering,
        w.initial_mem.clone(),
        &CostModel::splash_default(),
        workers,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{} [{}]: parallel replay failed: {e}",
            w.name,
            v.spec.label()
        )
    });
    verify(&result.recorded, &outcome.outcome).unwrap_or_else(|e| {
        panic!(
            "{} [{}]: parallel replay diverged: {e}",
            w.name,
            v.spec.label()
        )
    });
    outcome.speedup()
}

#[test]
fn parallel_replay_reproduces_every_workload_snoopy() {
    let threads = 4;
    let cfg = MachineConfig::splash_default(threads);
    let specs = RecorderSpec::paper_matrix();
    for w in suite(threads, 1) {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .expect("records");
        for v in 0..specs.len() {
            for workers in [1, 4] {
                let s = check_parallel(&w, &result, v, workers);
                assert!(s >= 0.99, "speedup below 1 is impossible: {s}");
            }
        }
    }
}

#[test]
fn parallel_replay_reproduces_every_workload_directory() {
    // Directory mode is where the partial order has real parallelism (few
    // conservative edges) — and where the barrier machinery matters.
    let threads = 4;
    let cfg = MachineConfig::splash_default(threads).with_directory();
    let specs = vec![
        RecorderSpec {
            design: relaxreplay::Design::Opt,
            max_interval: Some(4096),
        },
        RecorderSpec {
            design: relaxreplay::Design::Base,
            max_interval: None,
        },
    ];
    for w in suite(threads, 1) {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .expect("records");
        for v in 0..specs.len() {
            check_parallel(&w, &result, v, threads);
        }
    }
}

#[test]
fn directory_mode_exposes_replay_parallelism() {
    // With directory filtering, independent work should yield measurable
    // parallel speedup on at least the queue-based workloads.
    let threads = 4;
    let cfg = MachineConfig::splash_default(threads).with_directory();
    let specs = vec![RecorderSpec {
        design: relaxreplay::Design::Opt,
        max_interval: Some(4096),
    }];
    let mut best: f64 = 0.0;
    for w in suite(threads, 2) {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .expect("records");
        let s = check_parallel(&w, &result, 0, threads);
        best = best.max(s);
    }
    assert!(
        best > 1.5,
        "expected some workload to show parallel-replay speedup, best was {best:.2}"
    );
}
