//! The durable-artifact differential test: record every workload, save
//! the logs as `.rrlog` files plus the ground-truth sidecar, load them
//! back, and prove the disk round trip is lossless — loaded logs equal
//! the in-memory ones entry-for-entry, and patch → replay → verify passes
//! against the *loaded* ground truth. Also pins corruption robustness of
//! the saved artifacts and the out-of-range-variant hardening.

use std::fs;
use std::path::PathBuf;

use rr_replay::{patch, replay, verify, CostModel};
use rr_sim::{
    replay_and_verify, LocalStore, LogDirError, MachineConfig, RecordSession, RecorderSpec,
    RunStore, StoreError,
};
use rr_workloads::suite;

/// A fresh scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("rr_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn every_workload_round_trips_through_disk() {
    let threads = 2;
    let cfg = MachineConfig::splash_default(threads);
    let specs = RecorderSpec::paper_matrix();
    let scratch = ScratchDir::new("disk_replay");

    let store = LocalStore::new(&scratch.0);
    let workloads = suite(threads, 1);
    let mut results = Vec::new();
    for w in &workloads {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{}: recording failed: {e}", w.name));
        let bytes = store
            .save_run(w.name, &result)
            .unwrap_or_else(|e| panic!("{}: save failed: {e}", w.name));
        assert!(bytes > 0, "{}: no .rrlog bytes written", w.name);
        results.push(result);
    }

    let listed = store.list_runs().expect("list runs");
    let mut expected: Vec<String> = workloads.iter().map(|w| w.name.to_string()).collect();
    expected.sort();
    assert_eq!(listed, expected);

    for (w, result) in workloads.iter().zip(&results) {
        let saved = store
            .load_run(w.name)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));

        // Lossless: every variant's loaded logs equal the in-memory logs
        // entry-for-entry.
        assert_eq!(saved.variants.len(), result.variants.len(), "{}", w.name);
        for (sv, v) in saved.variants.iter().zip(&result.variants) {
            assert_eq!(sv.label, v.spec.label(), "{}", w.name);
            assert_eq!(sv.logs.len(), v.logs.len(), "{}", w.name);
            for (loaded, original) in sv.logs.iter().zip(&v.logs) {
                assert_eq!(
                    loaded, original,
                    "{} [{}]: disk round trip altered the log",
                    w.name, sv.label
                );
            }
        }

        // The loaded ground truth matches what was recorded.
        assert!(saved
            .recorded
            .final_mem
            .contents_eq(&result.recorded.final_mem));
        assert_eq!(saved.recorded.load_traces, result.recorded.load_traces);

        // And the loaded artifacts alone drive a verified replay:
        // patch → replay → verify against the *loaded* truth.
        for sv in &saved.variants {
            let patched: Vec<_> = sv
                .logs
                .iter()
                .map(patch)
                .collect::<Result<_, _>>()
                .unwrap_or_else(|e| panic!("{} [{}]: patch failed: {e}", w.name, sv.label));
            let outcome = replay(
                &w.programs,
                &patched,
                w.initial_mem.clone(),
                &CostModel::splash_default(),
            )
            .unwrap_or_else(|e| panic!("{} [{}]: replay failed: {e}", w.name, sv.label));
            verify(&saved.recorded, &outcome)
                .unwrap_or_else(|e| panic!("{} [{}]: verify failed: {e}", w.name, sv.label));
        }
    }
}

#[test]
fn corrupted_rrlog_fails_with_a_typed_error_not_a_panic() {
    let threads = 2;
    let cfg = MachineConfig::splash_default(threads);
    let specs = RecorderSpec::paper_matrix();
    let scratch = ScratchDir::new("disk_corrupt");
    let store = LocalStore::new(&scratch.0);

    let w = &suite(threads, 1)[0];
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .config(&cfg)
        .specs(&specs)
        .run()
        .expect("records");
    store.save_run(w.name, &result).expect("saves");

    let label = specs[0].label();
    let victim = scratch.0.join(w.name).join(&label).join("core0.rrlog");
    let mut bytes = fs::read(&victim).expect("read rrlog");
    assert!(bytes.len() > 16, "need a non-trivial log to corrupt");

    // Flip a byte inside the first chunk's payload.
    bytes[12] ^= 0xff;
    fs::write(&victim, &bytes).expect("write corrupted rrlog");
    match store.load_run(w.name) {
        Err(StoreError::Local(LogDirError::Wire(e))) => {
            let msg = e.to_string();
            assert!(
                msg.contains("chunk 0"),
                "error should identify the failing chunk: {msg}"
            );
        }
        other => panic!("expected a wire error, got {other:?}"),
    }

    // Truncate mid-stream instead: still a typed error, never a panic.
    fs::write(&victim, &bytes[..bytes.len() - 3]).expect("truncate rrlog");
    assert!(matches!(
        store.load_run(w.name),
        Err(StoreError::Local(LogDirError::Wire(_)))
    ));
}

#[test]
#[allow(deprecated)]
fn deprecated_free_functions_still_work() {
    // Compat shim: the pre-RunStore API must keep behaving identically.
    let threads = 2;
    let cfg = MachineConfig::splash_default(threads);
    let specs = RecorderSpec::paper_matrix();
    let scratch = ScratchDir::new("disk_compat");

    let w = &suite(threads, 1)[0];
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .config(&cfg)
        .specs(&specs)
        .run()
        .expect("records");
    let bytes = rr_sim::save_run(&scratch.0, w.name, &result).expect("saves");
    assert!(bytes > 0);
    assert_eq!(rr_sim::list_runs(&scratch.0).unwrap(), vec![w.name]);
    let via_free = rr_sim::load_run(&scratch.0, w.name).expect("loads");
    let via_store = LocalStore::new(&scratch.0).load_run(w.name).expect("loads");
    assert_eq!(via_free.variants.len(), via_store.variants.len());
    for (a, b) in via_free.variants.iter().zip(&via_store.variants) {
        assert_eq!(a.logs, b.logs);
    }
}

#[test]
fn out_of_range_variant_indexes_are_rejected() {
    let threads = 2;
    let cfg = MachineConfig::splash_default(threads);
    let specs = RecorderSpec::paper_matrix();
    let w = &suite(threads, 1)[0];
    let result = RecordSession::new(&w.programs, &w.initial_mem)
        .config(&cfg)
        .specs(&specs)
        .run()
        .expect("records");

    assert!(result.log_rate_mbps(0).is_some());
    assert!(result.log_rate_mbps(specs.len()).is_none());
    assert!(result.log_rate_mbps(usize::MAX).is_none());

    let err = replay_and_verify(
        &w.programs,
        &w.initial_mem,
        &result,
        specs.len(),
        &CostModel::splash_default(),
    )
    .expect_err("out-of-range variant must not panic");
    assert!(err.to_string().contains("out of range"), "{err}");
}
