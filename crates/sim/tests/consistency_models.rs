#![allow(clippy::needless_range_loop)] // variant index addresses parallel arrays
//! The paper's central claim, tested: the *same* recorder design records
//! and deterministically replays executions under SC, TSO and RC — and the
//! models are genuinely different (litmus outcomes and reordering rates
//! tell them apart).

use rr_cpu::ConsistencyModel;
use rr_isa::{MemImage, Program, ProgramBuilder, Reg};
use rr_replay::CostModel;
use rr_sim::{replay_and_verify, MachineConfig, RecordSession, RecorderSpec, RunResult};
use rr_workloads::{litmus_suite, suite};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

const X: i64 = 0x100;
const Y: i64 = 0x200;
const OUT: i64 = 0x1000;

/// The warmed store-buffering litmus (see tests/litmus.rs).
fn sb_programs() -> Vec<Program> {
    let thread = |my: i64, other: i64, out_slot: i64| {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(1), my);
        b.load_imm(r(3), other);
        b.load(r(6), r(1), 0);
        b.load(r(6), r(3), 0);
        b.nops(600);
        b.load_imm(r(2), 1);
        b.store(r(2), r(1), 0);
        b.load(r(4), r(3), 0);
        b.load_imm(r(5), OUT + out_slot);
        b.store(r(4), r(5), 0);
        b.halt();
        b.build()
    };
    vec![thread(X, Y, 0), thread(Y, X, 8)]
}

fn run_and_verify(programs: &[Program], model: ConsistencyModel) -> RunResult {
    let cfg = MachineConfig::splash_default(programs.len()).with_consistency(model);
    let specs = RecorderSpec::paper_matrix();
    let result = RecordSession::new(programs, &MemImage::new())
        .config(&cfg)
        .specs(&specs)
        .run()
        .expect("records");
    for v in 0..specs.len() {
        replay_and_verify(
            programs,
            &MemImage::new(),
            &result,
            v,
            &CostModel::splash_default(),
        )
        .unwrap_or_else(|e| panic!("{model:?} [{}]: {e}", specs[v].label()));
    }
    result
}

#[test]
fn store_buffering_differentiates_the_models() {
    // SC forbids (0,0); TSO and RC allow (and, with warmed lines, exhibit)
    // it. Every outcome is recorded and replayed exactly either way.
    let programs = sb_programs();
    let outcome = |model| {
        let result = run_and_verify(&programs, model);
        let m = &result.recorded.final_mem;
        (m.load(OUT as u64), m.load(OUT as u64 + 8))
    };
    assert_ne!(
        outcome(ConsistencyModel::Sc),
        (0, 0),
        "SC must forbid the store-buffering outcome"
    );
    assert_eq!(
        outcome(ConsistencyModel::Tso),
        (0, 0),
        "TSO allows loads to bypass buffered stores"
    );
    assert_eq!(
        outcome(ConsistencyModel::Rc),
        (0, 0),
        "RC allows loads to bypass buffered stores"
    );
}

#[test]
fn reordering_rates_order_as_sc_below_tso_below_rc() {
    // Figure-1-style measurement per model on a reordering-rich workload.
    let ooo = |model| {
        let w = rr_workloads::by_name("ocean", 4, 1).expect("known");
        let cfg = MachineConfig::splash_default(4).with_consistency(model);
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&RecorderSpec::paper_matrix())
            .run()
            .expect("records");
        result.ooo_fraction()
    };
    let (sc, tso, rc) = (
        ooo(ConsistencyModel::Sc),
        ooo(ConsistencyModel::Tso),
        ooo(ConsistencyModel::Rc),
    );
    assert!(
        sc < 0.01,
        "SC must perform (essentially) in order, got {sc:.4}"
    );
    assert!(
        sc <= tso && tso < rc,
        "expected SC ≤ TSO < RC: {sc:.4} / {tso:.4} / {rc:.4}"
    );
    assert!(rc > 0.3, "RC should reorder heavily, got {rc:.4}");
}

/// The full litmus suite (SB, MP, LB, IRIW) under SC and TSO: every
/// shape records and replays under all four recorder variants, and the
/// `ReorderedLoad` / `ReorderedStore` logging obeys each model's
/// contract.
///
/// "Reordered" here is the *recorder's* classification — the access
/// performed in an earlier interval than it was counted in (PISN ≠
/// CISN, §3.2) — not ISA-level program-order reordering. Two
/// consequences the assertions pin down:
///
/// - Stores perform at commit under SC and TSO (the TSO store buffer
///   drains in order), so neither model ever logs a `ReorderedStore`.
/// - A conflict can close an interval *between* a load's perform and
///   its count even when the load performed in program order, so
///   communication-heavy shapes (MP's spin loop, IRIW's racing readers)
///   log `ReorderedLoad`s even under SC. What separates the models is
///   the buffering-only shapes: SB and LB log zero reordered accesses
///   under SC, and a nonzero count under TSO, where loads bypass the
///   store buffer.
#[test]
fn litmus_suite_reordered_logging_matches_each_model() {
    let reordered = |model: ConsistencyModel, w: &rr_workloads::Workload| -> (u64, u64) {
        let cfg = MachineConfig::splash_default(w.programs.len()).with_consistency(model);
        let specs = RecorderSpec::paper_matrix();
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{} under {model:?}: {e}", w.name));
        let per_variant: Vec<(u64, u64)> = result
            .variants
            .iter()
            .map(|v| {
                (
                    v.stats.iter().map(|s| s.reordered_loads).sum(),
                    v.stats.iter().map(|s| s.reordered_stores).sum(),
                )
            })
            .collect();
        // Base and Opt (at both interval sizes) classify identically —
        // they differ in how a reordered access is *encoded*, never in
        // whether it is reordered.
        for (v, counts) in per_variant.iter().enumerate() {
            assert_eq!(
                *counts,
                per_variant[0],
                "{} {model:?}: variant {} disagrees on classification",
                w.name,
                specs[v].label()
            );
        }
        for v in 0..specs.len() {
            replay_and_verify(
                &w.programs,
                &w.initial_mem,
                &result,
                v,
                &CostModel::splash_default(),
            )
            .unwrap_or_else(|e| panic!("{} {model:?} [{}]: {e}", w.name, specs[v].label()));
        }
        per_variant[0]
    };

    for w in litmus_suite() {
        let (sc_loads, sc_stores) = reordered(ConsistencyModel::Sc, &w);
        let (tso_loads, tso_stores) = reordered(ConsistencyModel::Tso, &w);

        assert_eq!(sc_stores, 0, "{}: SC must log no ReorderedStore", w.name);
        assert_eq!(tso_stores, 0, "{}: TSO must log no ReorderedStore", w.name);
        assert!(
            tso_loads >= sc_loads,
            "{}: TSO cannot log fewer ReorderedLoads than SC ({tso_loads} < {sc_loads})",
            w.name
        );
        match w.name {
            // Pure store-buffering shapes: in-order SC keeps every load
            // in its counting interval; TSO's load bypass does not.
            "sb" | "lb" => {
                assert_eq!(sc_loads, 0, "{}: SC logs no ReorderedLoad", w.name);
                assert!(
                    tso_loads > 0,
                    "{}: TSO's store-buffer bypass must be logged as reordered",
                    w.name
                );
            }
            // Communication shapes: conflict-driven interval closes
            // land between perform and count even under SC.
            "mp" | "iriw" => {
                assert!(
                    sc_loads > 0,
                    "{}: conflict closes should cross perform/count even under SC",
                    w.name
                );
            }
            other => panic!("unexpected litmus shape {other}"),
        }
    }
}

#[test]
fn the_suite_replays_under_sc_and_tso() {
    // A subset of the workloads under each stricter model: one recorder,
    // any model — record, patch, replay, verify.
    for model in [ConsistencyModel::Sc, ConsistencyModel::Tso] {
        let threads = 2;
        let cfg = MachineConfig::splash_default(threads).with_consistency(model);
        let specs = RecorderSpec::paper_matrix();
        for w in suite(threads, 1).into_iter().take(6) {
            let result = RecordSession::new(&w.programs, &w.initial_mem)
                .config(&cfg)
                .specs(&specs)
                .run()
                .unwrap_or_else(|e| panic!("{} under {model:?}: {e}", w.name));
            for v in 0..specs.len() {
                replay_and_verify(
                    &w.programs,
                    &w.initial_mem,
                    &result,
                    v,
                    &CostModel::splash_default(),
                )
                .unwrap_or_else(|e| panic!("{} {model:?} [{}]: {e}", w.name, specs[v].label()));
            }
        }
    }
}
