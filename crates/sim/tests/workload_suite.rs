#![allow(clippy::needless_range_loop)] // variant index addresses parallel arrays
//! Record → patch → replay → verify over the whole SPLASH-2-like workload
//! suite: every workload, every recorder variant, must replay exactly.

use rr_replay::CostModel;
use rr_sim::{replay_and_verify, MachineConfig, RecordSession, RecorderSpec};
use rr_workloads::suite;

#[test]
fn every_workload_replays_under_every_variant() {
    let threads = 4;
    let cfg = MachineConfig::splash_default(threads);
    let specs = RecorderSpec::paper_matrix();
    for w in suite(threads, 1) {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{}: recording failed: {e}", w.name));
        assert!(
            result.total_instrs() > 1000,
            "{}: suspiciously small run ({} instrs)",
            w.name,
            result.total_instrs()
        );
        for v in 0..specs.len() {
            replay_and_verify(
                &w.programs,
                &w.initial_mem,
                &result,
                v,
                &CostModel::splash_default(),
            )
            .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, specs[v].label()));
        }
    }
}

#[test]
fn two_thread_suite_replays() {
    let threads = 2;
    let cfg = MachineConfig::splash_default(threads);
    let specs = vec![
        RecorderSpec {
            design: relaxreplay::Design::Opt,
            max_interval: Some(4096),
        },
        RecorderSpec {
            design: relaxreplay::Design::Base,
            max_interval: None,
        },
    ];
    for w in suite(threads, 1) {
        let result = RecordSession::new(&w.programs, &w.initial_mem)
            .config(&cfg)
            .specs(&specs)
            .run()
            .unwrap_or_else(|e| panic!("{}: recording failed: {e}", w.name));
        for v in 0..specs.len() {
            replay_and_verify(
                &w.programs,
                &w.initial_mem,
                &result,
                v,
                &CostModel::splash_default(),
            )
            .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, specs[v].label()));
        }
    }
}
