//! Error-path tests of the sequential replayer: malformed logs are
//! reported precisely, never executed past the inconsistency.

use relaxreplay::{IntervalLog, LogEntry};
use rr_isa::{MemImage, ProgramBuilder, Reg};
use rr_mem::CoreId;
use rr_replay::{patch, replay, replay_parallel, CostModel, ReplayError};

fn tiny_program() -> rr_isa::Program {
    let mut b = ProgramBuilder::new();
    b.load_imm(Reg::new(1), 5); // 1 instruction
    b.halt(); // 2nd
    b.build()
}

fn log_of(entries: Vec<LogEntry>) -> IntervalLog {
    IntervalLog {
        core: CoreId::new(0),
        entries,
    }
}

#[test]
fn thread_count_mismatch_is_reported() {
    let p = tiny_program();
    let err = replay(
        std::slice::from_ref(&p),
        &[],
        MemImage::new(),
        &CostModel::splash_default(),
    )
    .expect_err("must fail");
    assert_eq!(
        err,
        ReplayError::ThreadCountMismatch {
            programs: 1,
            logs: 0
        }
    );
}

#[test]
fn block_longer_than_the_program_is_reported() {
    let p = tiny_program();
    let log = log_of(vec![
        LogEntry::InorderBlock { instrs: 99 },
        LogEntry::IntervalFrame {
            cisn: 0,
            timestamp: 1,
        },
    ]);
    let patched = patch(&log).expect("patches");
    let err = replay(
        std::slice::from_ref(&p),
        std::slice::from_ref(&patched),
        MemImage::new(),
        &CostModel::splash_default(),
    )
    .expect_err("must fail");
    assert!(matches!(err, ReplayError::BlockEndedEarly { remaining, .. } if remaining == 97));
}

#[test]
fn injecting_a_load_at_a_non_load_is_reported() {
    let p = tiny_program(); // first instruction is a LoadImm, not a Load
    let log = log_of(vec![
        LogEntry::ReorderedLoad { value: 7 },
        LogEntry::IntervalFrame {
            cisn: 0,
            timestamp: 1,
        },
    ]);
    let patched = patch(&log).expect("patches");
    let err = replay(
        std::slice::from_ref(&p),
        std::slice::from_ref(&patched),
        MemImage::new(),
        &CostModel::splash_default(),
    )
    .expect_err("must fail");
    assert!(matches!(
        err,
        ReplayError::InstructionMismatch {
            expected: "load",
            ..
        }
    ));
}

#[test]
fn log_ending_exactly_at_the_halt_is_accepted() {
    // The log covers only 1 of the program's 2 instructions, but the PC
    // parks on the Halt — a valid thread end by design.
    let p = tiny_program();
    let log = log_of(vec![
        LogEntry::InorderBlock { instrs: 1 },
        LogEntry::IntervalFrame {
            cisn: 0,
            timestamp: 1,
        },
    ]);
    let patched = patch(&log).expect("patches");
    replay(
        std::slice::from_ref(&p),
        std::slice::from_ref(&patched),
        MemImage::new(),
        &CostModel::splash_default(),
    )
    .expect("a PC parked on Halt is a valid end");
}

#[test]
fn longer_program_with_short_log_is_incomplete() {
    let mut b = ProgramBuilder::new();
    b.load_imm(Reg::new(1), 5);
    b.load_imm(Reg::new(2), 6);
    b.load_imm(Reg::new(3), 7);
    b.halt();
    let p = b.build();
    let log = log_of(vec![
        LogEntry::InorderBlock { instrs: 1 },
        LogEntry::IntervalFrame {
            cisn: 0,
            timestamp: 1,
        },
    ]);
    let patched = patch(&log).expect("patches");
    let err = replay(
        std::slice::from_ref(&p),
        std::slice::from_ref(&patched),
        MemImage::new(),
        &CostModel::splash_default(),
    )
    .expect_err("must fail");
    assert!(matches!(err, ReplayError::IncompleteReplay { .. }));
}

/// Regression: a log claiming a core outside the replayed thread set must
/// yield a typed error. Pre-fix, the scheduler indexed
/// `interps[interval.core]` unchecked and panicked out of bounds on a
/// corrupted (or misattributed) log.
#[test]
fn out_of_range_core_is_a_typed_error() {
    let programs = vec![tiny_program(), tiny_program()];
    let log = IntervalLog {
        core: CoreId::new(7), // only threads 0–1 exist
        entries: vec![
            LogEntry::InorderBlock { instrs: 2 },
            LogEntry::IntervalFrame {
                cisn: 0,
                timestamp: 1,
            },
        ],
    };
    let ok = log_of(vec![
        LogEntry::InorderBlock { instrs: 2 },
        LogEntry::IntervalFrame {
            cisn: 0,
            timestamp: 0,
        },
    ]);
    let patched = vec![patch(&ok).expect("patches"), patch(&log).expect("patches")];
    let err = replay(
        &programs,
        &patched,
        MemImage::new(),
        &CostModel::splash_default(),
    )
    .expect_err("must fail");
    assert_eq!(
        err,
        ReplayError::CoreOutOfRange {
            core: 7,
            threads: 2
        }
    );
}

/// The parallel replayer validates both the logs' own core ids and the
/// cores named by recorded predecessor edges.
#[test]
fn parallel_replay_rejects_out_of_range_cores() {
    let p = tiny_program();
    let log = IntervalLog {
        core: CoreId::new(9),
        entries: vec![
            LogEntry::InorderBlock { instrs: 2 },
            LogEntry::IntervalFrame {
                cisn: 0,
                timestamp: 1,
            },
        ],
    };
    let patched = patch(&log).expect("patches");
    let ordering = relaxreplay::IntervalOrdering {
        preds: vec![vec![]],
        barriers: vec![false],
        timestamps: vec![1],
    };
    let err = replay_parallel(
        std::slice::from_ref(&p),
        std::slice::from_ref(&patched),
        std::slice::from_ref(&ordering),
        MemImage::new(),
        &CostModel::splash_default(),
        2,
    )
    .expect_err("must fail");
    assert_eq!(
        err,
        ReplayError::CoreOutOfRange {
            core: 9,
            threads: 1
        }
    );

    // An ordering edge from a phantom core is rejected too.
    let ok = log_of(vec![
        LogEntry::InorderBlock { instrs: 2 },
        LogEntry::IntervalFrame {
            cisn: 0,
            timestamp: 1,
        },
    ]);
    let patched = patch(&ok).expect("patches");
    let ordering = relaxreplay::IntervalOrdering {
        preds: vec![vec![(CoreId::new(5), 0)]],
        barriers: vec![false],
        timestamps: vec![1],
    };
    let err = replay_parallel(
        std::slice::from_ref(&p),
        std::slice::from_ref(&patched),
        std::slice::from_ref(&ordering),
        MemImage::new(),
        &CostModel::splash_default(),
        2,
    )
    .expect_err("must fail");
    assert_eq!(
        err,
        ReplayError::CoreOutOfRange {
            core: 5,
            threads: 1
        }
    );
}

#[test]
fn parallel_replay_rejects_length_mismatch() {
    let p = tiny_program();
    let log = log_of(vec![
        LogEntry::InorderBlock { instrs: 2 },
        LogEntry::IntervalFrame {
            cisn: 0,
            timestamp: 1,
        },
    ]);
    let patched = patch(&log).expect("patches");
    let err = replay_parallel(
        std::slice::from_ref(&p),
        std::slice::from_ref(&patched),
        &[], // no orderings
        MemImage::new(),
        &CostModel::splash_default(),
        2,
    )
    .expect_err("must fail");
    assert!(matches!(err, ReplayError::ThreadCountMismatch { .. }));
}
