//! Property tests of the patching step over arbitrary *well-formed* logs:
//! every reordered store becomes exactly one `ApplyStore` in an earlier
//! interval plus one `SkipStore` dummy, loads stay in place, interval
//! frames are preserved in order, and patching never changes the multiset
//! of store effects.

use proptest::prelude::*;
use relaxreplay::{IntervalLog, LogEntry};
use rr_mem::CoreId;
use rr_replay::{patch, PatchError, ReplayOp};

/// Generates a well-formed log: a sequence of intervals, where reordered
/// entries in interval `i` carry offsets `1..=i` (pointing at an existing
/// earlier interval). Offset 0 never occurs in real logs (reordered means
/// the intervals differ).
fn log_strategy() -> impl Strategy<Value = IntervalLog> {
    let body_entry = |interval: usize| {
        let max_off = interval as u32;
        prop_oneof![
            (1u32..5000).prop_map(|instrs| LogEntry::InorderBlock { instrs }),
            any::<u64>().prop_map(|value| LogEntry::ReorderedLoad { value }),
            (any::<u64>(), any::<u64>(), 0u32..=max_off).prop_map(move |(addr, value, off)| {
                LogEntry::ReorderedStore {
                    addr: addr & !7,
                    value,
                    // offset >= 1 when possible; interval 0 gets loads only
                    // via the filter below.
                    offset: off.max(1).min(max_off.max(1)),
                }
            }),
        ]
    };
    // 1..8 intervals, each with 0..6 body entries + a frame.
    (1usize..8)
        .prop_flat_map(move |n_intervals| {
            let mut interval_strategies = Vec::new();
            for i in 0..n_intervals {
                let entries =
                    proptest::collection::vec(body_entry(i), 0..6).prop_map(move |mut es| {
                        if i == 0 {
                            // Interval 0 cannot host reordered stores (no
                            // earlier interval to patch into).
                            es.retain(|e| !matches!(e, LogEntry::ReorderedStore { .. }));
                        }
                        es
                    });
                interval_strategies.push(entries);
            }
            interval_strategies
        })
        .prop_map(|intervals| {
            let mut entries = Vec::new();
            for (i, body) in intervals.into_iter().enumerate() {
                entries.extend(body);
                entries.push(LogEntry::IntervalFrame {
                    cisn: i as u16,
                    timestamp: (i as u64) * 100,
                });
            }
            IntervalLog {
                core: CoreId::new(0),
                entries,
            }
        })
}

proptest! {
    #[test]
    fn patch_preserves_structure(log in log_strategy()) {
        let patched = patch(&log).expect("well-formed log patches");

        // Frames preserved, in order, with identical timestamps.
        let frames_in: Vec<(u16, u64)> = log.entries.iter().filter_map(|e| match e {
            LogEntry::IntervalFrame { cisn, timestamp } => Some((*cisn, *timestamp)),
            _ => None,
        }).collect();
        let frames_out: Vec<(u16, u64)> = patched.ops.iter().filter_map(|o| match o {
            ReplayOp::EndInterval { cisn, timestamp } => Some((*cisn, *timestamp)),
            _ => None,
        }).collect();
        prop_assert_eq!(frames_in, frames_out);

        // Store multiset preserved: every ReorderedStore becomes exactly
        // one ApplyStore; dummies equal the reordered-store count.
        let mut stores_in: Vec<(u64, u64)> = log.entries.iter().filter_map(|e| match e {
            LogEntry::ReorderedStore { addr, value, .. } => Some((*addr, *value)),
            _ => None,
        }).collect();
        let mut stores_out: Vec<(u64, u64)> = patched.ops.iter().filter_map(|o| match o {
            ReplayOp::ApplyStore { addr, value } => Some((*addr, *value)),
            _ => None,
        }).collect();
        stores_in.sort_unstable();
        stores_out.sort_unstable();
        prop_assert_eq!(&stores_in, &stores_out);
        let dummies = patched.ops.iter().filter(|o| matches!(o, ReplayOp::SkipStore)).count();
        prop_assert_eq!(dummies, stores_in.len());

        // Loads stay in place and in order with their values.
        let loads_in: Vec<u64> = log.entries.iter().filter_map(|e| match e {
            LogEntry::ReorderedLoad { value } => Some(*value),
            _ => None,
        }).collect();
        let loads_out: Vec<u64> = patched.ops.iter().filter_map(|o| match o {
            ReplayOp::InjectLoad { value } => Some(*value),
            _ => None,
        }).collect();
        prop_assert_eq!(loads_in, loads_out);

        // Every ApplyStore lands strictly before the EndInterval of the
        // interval its dummy sits in (it moved backwards).
        // (Checked structurally: ApplyStores appear only at interval ends,
        // i.e. every op after an ApplyStore up to the next frame is another
        // ApplyStore or the frame.)
        let mut saw_apply = false;
        for op in &patched.ops {
            match op {
                ReplayOp::ApplyStore { .. } => saw_apply = true,
                ReplayOp::EndInterval { .. } => saw_apply = false,
                _ => prop_assert!(!saw_apply, "body op after an interval's appendix"),
            }
        }
    }

    #[test]
    fn patch_rejects_malformed_logs(tail_block in any::<u32>()) {
        // Unterminated logs are rejected...
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![LogEntry::InorderBlock { instrs: tail_block }],
        };
        prop_assert_eq!(patch(&log), Err(PatchError::UnterminatedInterval));
        // ...and so are offsets pointing before the log start.
        let log = IntervalLog {
            core: CoreId::new(0),
            entries: vec![
                LogEntry::ReorderedStore { addr: 0, value: 0, offset: 3 },
                LogEntry::IntervalFrame { cisn: 0, timestamp: 0 },
            ],
        };
        let is_offset_err = matches!(patch(&log), Err(PatchError::OffsetOutOfRange { .. }));
        prop_assert!(is_offset_err);
    }
}
