use crate::patch::ReplayOp;

/// Counts of the replay driver's events, from which replay time is
/// estimated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayEvents {
    /// Instructions executed natively inside `RunBlock`s.
    pub user_instrs: u64,
    /// Intervals processed (ordering synchronization + frame handling).
    pub intervals: u64,
    /// `RunBlock`s executed (each arms the instruction counter and ends in
    /// a synchronous interrupt + pipeline flush).
    pub blocks: u64,
    /// Reordered loads whose values were injected.
    pub injected_loads: u64,
    /// Patched stores applied by the OS.
    pub applied_stores: u64,
    /// Dummy entries skipped.
    pub skips: u64,
    /// Reordered RMWs emulated.
    pub injected_rmws: u64,
}

impl ReplayEvents {
    /// The event counts of replaying one interval's ops, `intervals`
    /// already set to 1. Shared by the cost-model scheduler
    /// ([`crate::execute_modeled`]) and critical-path blame
    /// ([`crate::prof`]) so both attribute cycles identically.
    #[must_use]
    pub fn for_interval(ops: &[ReplayOp]) -> Self {
        let mut ev = ReplayEvents {
            intervals: 1,
            ..ReplayEvents::default()
        };
        for op in ops {
            match op {
                ReplayOp::RunBlock { instrs } => {
                    ev.blocks += 1;
                    ev.user_instrs += u64::from(*instrs);
                }
                ReplayOp::InjectLoad { .. } => ev.injected_loads += 1,
                ReplayOp::ApplyStore { .. } => ev.applied_stores += 1,
                ReplayOp::SkipStore => ev.skips += 1,
                ReplayOp::InjectRmw { .. } => ev.injected_rmws += 1,
                ReplayOp::EndInterval { .. } => {}
            }
        }
        ev
    }

    /// Accumulates another event count into this one — used to merge the
    /// threaded engine's per-core counts into a machine-wide total.
    pub fn merge(&mut self, other: &ReplayEvents) {
        self.user_instrs += other.user_instrs;
        self.intervals += other.intervals;
        self.blocks += other.blocks;
        self.injected_loads += other.injected_loads;
        self.applied_stores += other.applied_stores;
        self.skips += other.skips;
        self.injected_rmws += other.injected_rmws;
    }
}

/// Cycle-cost model for sequential replay (paper §3.5, §5.4).
///
/// The paper measures replay by linking a control module with the
/// application and running it on the simulated machine; we reproduce the
/// *shape* of Figure 13 with an analytic model: native execution proceeds
/// at `replay_ipc`, and each OS-level event has a fixed cycle cost. The
/// defaults below are chosen to be plausible for the paper's 2 GHz 4-issue
/// core (an interrupt + context save/restore costs a few hundred cycles)
/// and are swept in the ablation benches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Native replay IPC inside `RunBlock`s (sequential re-execution with
    /// warm caches and no coherence contention).
    pub replay_ipc: f64,
    /// OS cycles per interval: reading the frame, waiting on / signalling
    /// the interval-order synchronization.
    pub os_per_interval: u64,
    /// OS cycles per `RunBlock`: arming the counter, the end-of-block
    /// synchronous interrupt, and the pipeline flush it causes.
    pub os_per_block: u64,
    /// OS cycles per injected load (register-file update in the saved
    /// context + PC advance).
    pub os_per_injected_load: u64,
    /// OS cycles per applied (patched) store.
    pub os_per_applied_store: u64,
    /// OS cycles per dummy skip.
    pub os_per_skip: u64,
    /// OS cycles per emulated RMW.
    pub os_per_injected_rmw: u64,
}

impl CostModel {
    /// Documented defaults (see DESIGN.md §2.3). The experiment harness
    /// overrides `replay_ipc` per workload with 1.2× the recorded per-core
    /// IPC (native replay has warm caches and no contention).
    #[must_use]
    pub fn splash_default() -> Self {
        CostModel {
            replay_ipc: 2.0,
            os_per_interval: 120,
            os_per_block: 60,
            os_per_injected_load: 40,
            os_per_applied_store: 40,
            os_per_skip: 20,
            os_per_injected_rmw: 60,
        }
    }

    /// Estimated user (native execution) cycles.
    #[must_use]
    pub fn user_cycles(&self, ev: &ReplayEvents) -> u64 {
        (ev.user_instrs as f64 / self.replay_ipc).ceil() as u64
    }

    /// Estimated OS (control module) cycles.
    #[must_use]
    pub fn os_cycles(&self, ev: &ReplayEvents) -> u64 {
        ev.intervals * self.os_per_interval
            + ev.blocks * self.os_per_block
            + ev.injected_loads * self.os_per_injected_load
            + ev.applied_stores * self.os_per_applied_store
            + ev.skips * self.os_per_skip
            + ev.injected_rmws * self.os_per_injected_rmw
    }

    /// Total estimated replay cycles.
    #[must_use]
    pub fn total_cycles(&self, ev: &ReplayEvents) -> u64 {
        self.user_cycles(ev) + self.os_cycles(ev)
    }

    /// Modeled cycles to replay one interval's ops — the node weight the
    /// list scheduler and critical-path blame both use. The per-interval
    /// `ceil` in [`CostModel::user_cycles`] makes this slightly
    /// super-additive versus costing merged events; blame works at this
    /// granularity so its per-interval attributions sum exactly to the
    /// modeled makespan.
    #[must_use]
    pub fn interval_cycles(&self, ops: &[ReplayOp]) -> u64 {
        self.total_cycles(&ReplayEvents::for_interval(ops))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::splash_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_cycles_respect_ipc() {
        let m = CostModel {
            replay_ipc: 2.0,
            ..CostModel::splash_default()
        };
        let ev = ReplayEvents {
            user_instrs: 1000,
            ..ReplayEvents::default()
        };
        assert_eq!(m.user_cycles(&ev), 500);
    }

    #[test]
    fn os_cycles_scale_with_entries() {
        let m = CostModel::splash_default();
        let few = ReplayEvents {
            intervals: 1,
            blocks: 1,
            ..ReplayEvents::default()
        };
        let many = ReplayEvents {
            intervals: 10,
            blocks: 100,
            injected_loads: 50,
            ..ReplayEvents::default()
        };
        assert!(m.os_cycles(&many) > 10 * m.os_cycles(&few));
        assert_eq!(
            m.total_cycles(&few),
            m.user_cycles(&few) + m.os_cycles(&few)
        );
    }
}
