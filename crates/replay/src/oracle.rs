//! The differential oracle behind `rr-check` (ISSUE 4): given one
//! recorded execution and the replays of its log under several recorder
//! variants (RelaxReplay_Base, RelaxReplay_Opt, interval-size sweeps …),
//! cross-check every replay against the sequential ground truth **and**
//! against every other replay. Any disagreement is a correctness bug in
//! the recorder or replayer — the paper's claim is that every variant
//! reproduces the same execution exactly.
//!
//! The module also hosts the generic greedy [`minimize`] used to shrink a
//! divergent schedule-exploration case to its smallest still-failing
//! form; `rr-sim`'s explore layer implements [`Shrink`] for its schedule
//! specs.

use core::fmt;

use crate::replayer::ReplayOutcome;
use crate::verify::{verify, RecordedExecution, VerifyError};

/// A failure found by [`cross_check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DifferentialError {
    /// A variant's replay diverged from the recorded ground truth.
    GroundTruth {
        /// Label of the diverging variant (e.g. `"Base-4K"`).
        variant: String,
        /// The first divergence found.
        error: VerifyError,
    },
    /// Two variants both matched nothing obvious individually but
    /// disagree with each other (only reachable when ground truth is not
    /// checked — kept for completeness and for partial oracles).
    CrossVariant {
        /// Label of the reference variant.
        left: String,
        /// Label of the disagreeing variant.
        right: String,
        /// The first divergence found, phrased with `left` as "recorded".
        error: VerifyError,
    },
}

impl fmt::Display for DifferentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DifferentialError::GroundTruth { variant, error } => {
                write!(f, "{variant} diverged from the recorded execution: {error}")
            }
            DifferentialError::CrossVariant { left, right, error } => {
                write!(f, "{left} and {right} replays disagree: {error}")
            }
        }
    }
}

impl std::error::Error for DifferentialError {}

/// Cross-checks every variant's replay against the recorded ground truth
/// and then pairwise against the first variant. Labels identify variants
/// in the error.
///
/// # Errors
///
/// Returns the first [`DifferentialError`] found: ground-truth mismatches
/// are reported before cross-variant ones (they pin the blame to one
/// variant).
pub fn cross_check(
    recorded: &RecordedExecution,
    variants: &[(&str, &ReplayOutcome)],
) -> Result<(), DifferentialError> {
    for (label, outcome) in variants {
        verify(recorded, outcome).map_err(|error| DifferentialError::GroundTruth {
            variant: (*label).to_string(),
            error,
        })?;
    }
    // With ground truth verified this is redundant in theory; in practice
    // it is the oracle's second opinion — it stays cheap and catches any
    // asymmetry `verify` may develop.
    if let Some(((ref_label, reference), rest)) = variants.split_first() {
        let as_recorded = RecordedExecution {
            final_mem: reference.mem.clone(),
            load_traces: reference.load_traces.clone(),
        };
        for (label, outcome) in rest {
            verify(&as_recorded, outcome).map_err(|error| DifferentialError::CrossVariant {
                left: (*ref_label).to_string(),
                right: (*label).to_string(),
                error,
            })?;
        }
    }
    Ok(())
}

/// A failing case that can propose strictly smaller versions of itself.
///
/// Implementors return candidate shrinks in preference order (try the
/// biggest cuts first); [`minimize`] greedily accepts the first candidate
/// that still fails and recurses from there.
pub trait Shrink: Sized {
    /// Smaller candidates to try, best first. An empty vector means the
    /// case is fully minimized.
    fn candidates(&self) -> Vec<Self>;
}

/// Greedy delta-debugging loop: starting from a known-failing `seed`,
/// repeatedly replace it with the first [`Shrink::candidates`] entry for
/// which `still_fails` returns `true`, until no candidate fails. The
/// result is a locally minimal failing case (every single proposed shrink
/// of it passes).
pub fn minimize<T: Shrink>(seed: T, mut still_fails: impl FnMut(&T) -> bool) -> T {
    let mut current = seed;
    'outer: loop {
        for cand in current.candidates() {
            if still_fails(&cand) {
                current = cand;
                continue 'outer;
            }
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_isa::MemImage;

    fn outcome(traces: Vec<Vec<u64>>, mem: MemImage) -> ReplayOutcome {
        ReplayOutcome {
            mem,
            load_traces: traces,
            events: Default::default(),
            user_cycles: 0,
            os_cycles: 0,
        }
    }

    #[test]
    fn agreement_passes() {
        let recorded = RecordedExecution {
            final_mem: MemImage::new(),
            load_traces: vec![vec![1, 2]],
        };
        let a = outcome(vec![vec![1, 2]], MemImage::new());
        let b = outcome(vec![vec![1, 2]], MemImage::new());
        cross_check(&recorded, &[("Base", &a), ("Opt", &b)]).expect("all agree");
    }

    #[test]
    fn ground_truth_divergence_names_the_variant() {
        let recorded = RecordedExecution {
            final_mem: MemImage::new(),
            load_traces: vec![vec![1, 2]],
        };
        let good = outcome(vec![vec![1, 2]], MemImage::new());
        let bad = outcome(vec![vec![1, 9]], MemImage::new());
        let err =
            cross_check(&recorded, &[("Base", &good), ("Opt", &bad)]).expect_err("Opt diverges");
        assert!(matches!(
            err,
            DifferentialError::GroundTruth { ref variant, .. } if variant == "Opt"
        ));
    }

    #[test]
    fn minimize_reaches_a_local_minimum() {
        // A "schedule" is just a number; shrinking proposes n/2 and n-1;
        // failing means n >= 17. Greedy minimization must land on 17.
        struct N(u64);
        impl Shrink for N {
            fn candidates(&self) -> Vec<Self> {
                let mut c = Vec::new();
                if self.0 > 0 {
                    c.push(N(self.0 / 2));
                    c.push(N(self.0 - 1));
                }
                c
            }
        }
        let min = minimize(N(1000), |n| n.0 >= 17);
        assert_eq!(min.0, 17);
    }
}
