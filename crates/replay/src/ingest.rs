//! Parallel per-core `.rrlog` ingest.
//!
//! Each core's log is an independent stream — nothing about decoding core
//! *k* depends on core *j* — so a multi-core recording saved with
//! `--save-logs` can be decoded on a worker pool before the replayers
//! start consuming. The pool mirrors the sweep engine's shape (scoped
//! threads, an atomic work cursor, per-slot results) so outputs come back
//! in input order and the first failure is attributed deterministically
//! regardless of worker interleaving.
//!
//! Decoding is the batched fast path of `relaxreplay::wire`: each worker
//! reads a whole file and decodes it zero-copy, so ingest of an
//! eight-core run costs roughly one core-log's decode time once the pool
//! is wide enough.

use core::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use relaxreplay::wire::decode_chunked;
use relaxreplay::{IntervalLog, WireError};

/// An ingest failure, attributed to the stream that caused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestError {
    /// Index of the failing stream in the input order.
    pub index: usize,
    /// Path of the failing file (`None` for in-memory streams).
    pub path: Option<PathBuf>,
    /// The underlying wire failure.
    pub source: WireError,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path {
            Some(p) => write!(f, "log {} ({}): {}", self.index, p.display(), self.source),
            None => write!(f, "log {}: {}", self.index, self.source),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The ingest worker count to use when the caller does not care: the
/// host's available parallelism.
#[must_use]
pub fn default_ingest_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `job(0..n)` across `workers` scoped threads, returning results in
/// input order; the lowest-indexed failure wins deterministically.
fn ingest_pool<T, F>(n: usize, workers: usize, job: F) -> Result<Vec<T>, IngestError>
where
    T: Send,
    F: Fn(usize) -> Result<T, IngestError> + Sync,
{
    let workers = if workers == 0 {
        default_ingest_workers()
    } else {
        workers
    }
    .min(n.max(1));

    if workers <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }

    let slots: Vec<Mutex<Option<Result<T, IngestError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().expect("ingest slot poisoned") = Some(job(i));
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.push(
            slot.into_inner()
                .expect("ingest slot poisoned")
                .expect("every index below the cursor was executed")?,
        );
    }
    Ok(out)
}

/// Decodes many independent in-memory `.rrlog` streams in parallel,
/// returning the logs in input order (`workers == 0` uses
/// [`default_ingest_workers`]; results are identical for any worker
/// count).
///
/// # Errors
///
/// Returns the lowest-indexed stream's [`WireError`], wrapped with its
/// index.
pub fn decode_logs_parallel(
    streams: &[&[u8]],
    workers: usize,
) -> Result<Vec<IntervalLog>, IngestError> {
    ingest_pool(streams.len(), workers, |i| {
        decode_chunked(streams[i]).map_err(|source| IngestError {
            index: i,
            path: None,
            source,
        })
    })
}

/// Reads and decodes many `.rrlog` files in parallel, returning the logs
/// in input order — the ingest path for `--replay-from` directories and
/// `rr-inspect check` over saved runs.
///
/// # Errors
///
/// Returns the lowest-indexed file's failure (I/O mapped to
/// [`WireError::Io`]), wrapped with its index and path.
pub fn read_rrlogs_parallel(
    paths: &[PathBuf],
    workers: usize,
) -> Result<Vec<IntervalLog>, IngestError> {
    ingest_pool(paths.len(), workers, |i| {
        let wrap = |source| IngestError {
            index: i,
            path: Some(paths[i].clone()),
            source,
        };
        let bytes = std::fs::read(&paths[i]).map_err(|e| wrap(WireError::Io(e.to_string())))?;
        decode_chunked(&bytes).map_err(wrap)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxreplay::wire::encode_chunked_with;
    use relaxreplay::LogEntry;
    use rr_mem::CoreId;

    fn logs(n: usize) -> Vec<IntervalLog> {
        (0..n)
            .map(|k| {
                let mut log = IntervalLog::new(CoreId::new(k as u8));
                for i in 0..200u64 {
                    log.entries.push(LogEntry::InorderBlock {
                        instrs: 1 + (i + k as u64) as u32 % 50,
                    });
                    log.entries.push(LogEntry::IntervalFrame {
                        cisn: i as u16,
                        timestamp: i * 7 + k as u64,
                    });
                }
                log
            })
            .collect()
    }

    #[test]
    fn parallel_decode_matches_serial_for_any_worker_count() {
        let logs = logs(8);
        let encoded: Vec<Vec<u8>> = logs.iter().map(|l| encode_chunked_with(l, 64)).collect();
        let streams: Vec<&[u8]> = encoded.iter().map(Vec::as_slice).collect();
        for workers in [0, 1, 2, 8, 16] {
            let decoded = decode_logs_parallel(&streams, workers).expect("decodes");
            assert_eq!(decoded, logs, "workers={workers}");
        }
    }

    #[test]
    fn first_failing_stream_wins_deterministically() {
        let logs = logs(6);
        let mut encoded: Vec<Vec<u8>> = logs.iter().map(|l| encode_chunked_with(l, 64)).collect();
        // Corrupt streams 2 and 4; index 2 must always be reported.
        let n2 = encoded[2].len();
        encoded[2][n2 - 1] ^= 0x10;
        let n4 = encoded[4].len();
        encoded[4][n4 - 1] ^= 0x10;
        let streams: Vec<&[u8]> = encoded.iter().map(Vec::as_slice).collect();
        for workers in [1, 2, 8] {
            let err = decode_logs_parallel(&streams, workers).expect_err("must fail");
            assert_eq!(err.index, 2, "workers={workers}");
            assert!(matches!(err.source, WireError::CrcMismatch { .. }));
        }
    }

    #[test]
    fn file_ingest_round_trips_and_attributes_errors() {
        let dir = std::env::temp_dir().join("rr_ingest_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let logs = logs(4);
        let mut paths = Vec::new();
        for (k, log) in logs.iter().enumerate() {
            let path = dir.join(format!("core{k}.rrlog"));
            relaxreplay::wire::write_rrlog(&path, log).expect("writes");
            paths.push(path);
        }
        let decoded = read_rrlogs_parallel(&paths, 4).expect("decodes");
        assert_eq!(decoded, logs);

        paths.push(dir.join("missing.rrlog"));
        let err = read_rrlogs_parallel(&paths, 4).expect_err("must fail");
        assert_eq!(err.index, 4);
        assert!(matches!(err.source, WireError::Io(_)));
        assert!(err.to_string().contains("missing.rrlog"));
    }
}
